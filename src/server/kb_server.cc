#include "server/kb_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <exception>

#include "analytics/class_stats.h"
#include "analytics/pagerank.h"
#include "core/entity_card.h"
#include "query/plan.h"
#include "rdf/namespaces.h"
#include "server/protocol.h"
#include "util/logging.h"

namespace kb {
namespace server {

namespace {

std::string ErrorJson(const std::string& error, const std::string& message) {
  Json response = Json::Object();
  response.Set("status", Json::Str("error"));
  response.Set("error", Json::Str(error));
  response.Set("message", Json::Str(message));
  return response.Dump();
}

std::string OverloadedJson(int retry_after_ms) {
  Json response = Json::Object();
  response.Set("status", Json::Str("overloaded"));
  response.Set("error", Json::Str("overloaded"));
  response.Set("retry_after_ms", Json::Number(retry_after_ms));
  return response.Dump();
}

/// Splices a serialized result body ("{...}") into an ok envelope with
/// the cached flag, without re-parsing the body — this is the entire
/// work of a result-cache hit.
std::string OkWithBody(const std::string& body, bool cached) {
  std::string out = "{\"status\":\"ok\",\"cached\":";
  out += cached ? "true" : "false";
  if (body.size() > 2) {
    out += ',';
    out.append(body, 1, body.size() - 1);  // body without its '{'
  } else {
    out += '}';
  }
  return out;
}

}  // namespace

struct KbServer::Metrics {
  Counter& requests;
  Counter& rejected;
  Counter& errors;
  Counter& queries;
  Counter& entity_cards;
  Counter& inserted_facts;
  Counter& analytics;
  Counter& deadline_exceeded;
  Counter& epoll_wakeups;
  Counter& pipelined_frames;
  Counter& idle_closed;
  Gauge& queue_depth;
  Gauge& active_connections;
  Gauge& open_connections;
  Histogram& request_ms;
  Histogram& query_ms;
  Histogram& analytics_ms;

  static Metrics* Get() {
    static Metrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new Metrics{
          r.counter("server.requests"),
          r.counter("server.rejected"),
          r.counter("server.errors"),
          r.counter("server.queries"),
          r.counter("server.entity_cards"),
          r.counter("server.inserted_facts"),
          r.counter("server.analytics"),
          r.counter("server.deadline_exceeded"),
          r.counter("server.epoll_wakeups"),
          r.counter("server.pipelined_frames"),
          r.counter("server.idle_closed"),
          r.gauge("server.queue_depth"),
          r.gauge("server.active_connections"),
          r.gauge("server.open_connections"),
          r.histogram("server.request_ms"),
          r.histogram("server.query_ms"),
          r.histogram("server.analytics_ms"),
      };
    }();
    return m;
  }
};

KbServer::KbServer(core::KnowledgeBase* kb, const Options& options)
    : kb_(kb),
      options_(options),
      result_cache_(options.cache_bytes),
      metrics_(Metrics::Get()) {}

KbServer::~KbServer() { Stop(); }

Status KbServer::Start() {
  return options_.threaded_core ? StartThreaded() : StartEvent();
}

Status KbServer::StartEvent() {
  EventServerOptions ev;
  ev.port = options_.port;
  ev.io_threads = options_.io_threads;
  ev.backlog = options_.backlog;
  // Default cap = the envelope the threaded core could hold (every
  // worker busy + a full queue), so default shedding is unchanged:
  // the N+Q+1'th concurrent connection is refused with the retry hint.
  size_t workers =
      static_cast<size_t>(options_.num_workers > 0 ? options_.num_workers : 1);
  ev.max_connections = options_.max_connections > 0
                           ? options_.max_connections
                           : workers + options_.queue_depth;
  ev.idle_timeout_ms = options_.idle_timeout_ms;
  ev.max_pipeline = options_.max_pipeline;
  ev.open_connections = &metrics_->open_connections;
  ev.epoll_wakeups = &metrics_->epoll_wakeups;
  ev.pipelined_frames = &metrics_->pipelined_frames;
  ev.idle_closed = &metrics_->idle_closed;
  ev.sheds = &metrics_->rejected;

  EventHooks hooks;
  hooks.on_frame = [this](const ConnRef& conn, uint64_t seq,
                          std::string payload) {
    OnFrame(conn, seq, std::move(payload));
  };
  hooks.bad_frame_response = [this](const std::string& message) {
    metrics_->errors.Increment();
    return ErrorJson("bad_frame", message);
  };
  hooks.shed_response = OverloadedJson(options_.retry_after_ms);

  event_server_ = std::make_unique<EventServer>(ev, std::move(hooks));
  Status s = event_server_->Start();
  if (!s.ok()) {
    event_server_.reset();
    return s;
  }
  port_ = event_server_->port();
  started_at_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
    draining_ = false;
  }
  int workers_n = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(static_cast<size_t>(workers_n));
  for (int i = 0; i < workers_n; ++i) {
    workers_.emplace_back([this] { EventWorkerLoop(); });
  }
  return Status::OK();
}

void KbServer::OnFrame(const ConnRef& conn, uint64_t seq,
                       std::string payload) {
  // I/O-thread side of the handoff: admission-check into the bounded
  // request queue and return — never run request logic here.
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && reqs_.size() < options_.queue_depth) {
      reqs_.push_back(PendingRequest{conn, seq, std::move(payload)});
      metrics_->queue_depth.Set(static_cast<int64_t>(reqs_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    work_cv_.notify_one();
    return;
  }
  // Queue full: shed this request with the retry hint and drop the
  // connection, exactly like a shed accept — a pipelining client must
  // not keep a saturated server buffering its backlog.
  metrics_->rejected.Increment();
  conn->Complete(seq, OverloadedJson(options_.retry_after_ms),
                 /*close_after=*/true);
}

void KbServer::EventWorkerLoop() {
  for (;;) {
    PendingRequest work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !reqs_.empty(); });
      if (stopping_) return;  // Stop() drops whatever is still queued
      work = std::move(reqs_.front());
      reqs_.pop_front();
      metrics_->queue_depth.Set(static_cast<int64_t>(reqs_.size()));
    }
    std::string response;
    HandleFrame(work.payload, &response);
    bool close_after;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Draining: each connection closes right after its next flushed
      // response; idle connections ride out the drain timeout.
      close_after = draining_;
    }
    work.conn->Complete(work.seq, std::move(response), close_after);
  }
}

Status KbServer::StartThreaded() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    Status s = Status::IOError("bind: " + std::string(::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_,
               options_.backlog > 0 ? options_.backlog : SOMAXCONN) < 0) {
    Status s = Status::IOError("listen: " + std::string(::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) < 0) {
    Status s = Status::IOError("pipe: " + std::string(::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  started_at_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
    draining_ = false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  int workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void KbServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      stopping_ = true;
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (!options_.threaded_core) {
    // Order matters: joining the I/O threads first means any late
    // worker Complete() is dropped at the loop's post gate instead of
    // racing a dying epoll set.
    if (event_server_) event_server_->Stop();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      reqs_.clear();
      metrics_->queue_depth.Set(0);
    }
    return;
  }
  // Wake the acceptor's poll(), then unblock every worker parked in a
  // read on a live connection.
  if (wake_pipe_[1] >= 0) {
    char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Connections that were admitted but never picked up.
  std::deque<int> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(pending_);
    metrics_->queue_depth.Set(0);
  }
  for (int fd : orphans) UnregisterAndClose(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

void KbServer::Drain(double timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    draining_ = true;
  }
  // From here new connections are shed with the retry hint (a router
  // treats that as unhealthy and fails over), and each established
  // connection closes right after its next flushed response. Idle
  // connections are left alone until the timeout: they hold no worker
  // and owe nobody a response.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double, std::milli>(
                      timeout_ms > 0 ? timeout_ms : 0);
  if (!options_.threaded_core) {
    event_server_->SetDraining(true);
    while (event_server_->open_connections() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    Stop();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait_until(lock, deadline, [this] {
      return active_fds_.empty();
    });
  }
  Stop();
}

void KbServer::RegisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.insert(fd);
}

void KbServer::UnregisterAndClose(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (active_fds_.erase(fd) > 0) ::close(fd);
  conn_cv_.notify_all();
}

void KbServer::WithWriteLock(const std::function<void()>& fn) {
  std::unique_lock<std::shared_mutex> lock(kb_mu_);
  fn();
}

uint64_t KbServer::applied_epoch() const {
  return options_.applied_epoch_fn ? options_.applied_epoch_fn()
                                   : kb_->epoch();
}

void KbServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!stopping_ && !draining_ &&
          pending_.size() < options_.queue_depth) {
        admitted = true;
        pending_.push_back(fd);
        metrics_->queue_depth.Set(static_cast<int64_t>(pending_.size()));
      }
    }
    if (admitted) {
      RegisterConnection(fd);
      work_cv_.notify_one();
      continue;
    }
    // Admission control: the queue is full (or we are stopping), so
    // shed this connection *now* with a retry hint instead of letting
    // the backlog — and every admitted request's tail latency — grow
    // without bound. A short send timeout keeps a stalled client from
    // wedging the acceptor.
    metrics_->rejected.Increment();
    timeval timeout{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    WriteFrame(fd, OverloadedJson(options_.retry_after_ms));
    ::close(fd);
  }
}

void KbServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // Stop() closes whatever is still queued
      fd = pending_.front();
      pending_.pop_front();
      metrics_->queue_depth.Set(static_cast<int64_t>(pending_.size()));
    }
    ServeConnection(fd);
  }
}

void KbServer::ServeConnection(int fd) {
  metrics_->active_connections.Add(1);
  for (;;) {
    std::string payload;
    Status status = ReadFrame(fd, &payload);
    if (status.IsAborted()) break;  // peer closed between requests
    if (!status.ok()) {
      if (status.IsInvalidArgument()) {
        // Oversized length prefix: the stream is unframeable from
        // here, so answer once and drop the connection.
        metrics_->errors.Increment();
        WriteFrame(fd, ErrorJson("bad_frame", status.message()));
      }
      break;
    }
    std::string response;
    bool keep_open = HandleFrame(payload, &response);
    if (!WriteFrame(fd, response).ok()) break;
    if (!keep_open) break;
    bool stopping;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping = stopping_ || draining_;
    }
    if (stopping) break;
  }
  UnregisterAndClose(fd);
  metrics_->active_connections.Add(-1);
}

bool KbServer::HandleFrame(const std::string& payload,
                           std::string* response) {
  ScopedTimer timer(metrics_->request_ms);
  metrics_->requests.Increment();
  auto request = Json::Parse(payload);
  if (!request.ok()) {
    metrics_->errors.Increment();
    *response = ErrorJson("bad_request", request.status().message());
    return true;  // framing is intact; only this request was garbage
  }
  try {
    *response = HandleRequest(*request);
  } catch (const std::exception& e) {
    metrics_->errors.Increment();
    *response = ErrorJson("internal", e.what());
  }
  return true;
}

std::string KbServer::HandleRequest(const Json& request) {
  const std::string op = request.GetString("op");
  if (op == "query") return HandleQuery(request);
  if (op == "entity_card") return HandleEntityCard(request);
  if (op == "insert_facts") return HandleInsertFacts(request);
  if (op == "analytics") return HandleAnalytics(request);
  if (op == "health") return HandleHealth();
  if (op == "metrics") return HandleMetrics();
  metrics_->errors.Increment();
  return ErrorJson("unknown_endpoint", "no such op: " + op);
}

std::string KbServer::CheckMinEpoch(const Json& request) const {
  if (!request["min_epoch"].is_number()) return std::string();
  const uint64_t min_epoch =
      static_cast<uint64_t>(request["min_epoch"].as_number());
  const uint64_t applied = applied_epoch();
  if (applied >= min_epoch) return std::string();
  // Read-your-writes: this replica has not yet applied the epoch the
  // client's own writes reached. The caller (router or retrying
  // client) redirects to the leader or a fresher replica.
  return ErrorJson("stale_replica",
                   "applied epoch " + std::to_string(applied) +
                       " < required " + std::to_string(min_epoch));
}

std::string KbServer::HandleQuery(const Json& request) {
  metrics_->queries.Increment();
  ScopedTimer timer(metrics_->query_ms);
  const std::string sparql = request.GetString("sparql");
  if (sparql.empty()) return ErrorJson("bad_request", "missing sparql");
  if (std::string stale = CheckMinEpoch(request); !stale.empty()) {
    return stale;
  }

  // The epoch is read *before* parse/execute: if a write lands in
  // between, the entry is cached under the older epoch and simply
  // never matches again — the safe direction. (Reading it after could
  // file pre-write rows under the post-write epoch: a stale read.)
  const uint64_t epoch = kb_->epoch();
  // Held across parse, execute and render: the exclusive side
  // (insert_facts, WithWriteLock) must quiesce the whole read path —
  // a background checkpoint move-assigns the KB out from under any
  // reader it has not excluded.
  std::shared_lock<std::shared_mutex> lock(kb_mu_);
  auto parsed = kb_->ParseQuery(sparql);
  if (!parsed.ok()) return ErrorJson("bad_query", parsed.status().ToString());

  query::ExecutionOptions exec;
  double deadline_ms = options_.default_deadline_ms;
  if (request["deadline_ms"].is_number()) {
    deadline_ms = request["deadline_ms"].as_number();
    if (deadline_ms < 0) deadline_ms = 0;  // explicit "no deadline"
    else if (deadline_ms == 0) deadline_ms = 1e-9;  // expire immediately
  }
  if (deadline_ms > 0) {
    exec.exec.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(deadline_ms * 1000));
  }
  size_t max_rows = options_.default_max_rows;
  if (request["max_rows"].is_number() && request["max_rows"].as_number() >= 0) {
    max_rows = static_cast<size_t>(request["max_rows"].as_number());
  }
  exec.exec.max_rows = max_rows;

  const bool use_cache =
      result_cache_.enabled() && !request.GetBool("no_cache", false);
  std::string cache_key;
  if (use_cache) {
    // Normalized shape + constants (the plan-cache key) plus what the
    // plan deliberately leaves out but the result depends on.
    cache_key = query::PlanCacheKey(*parsed, exec.reorder_patterns);
    cache_key += "|limit=" + std::to_string(parsed->limit);
    cache_key += "|cap=" + std::to_string(max_rows);
    // The plan key deliberately omits top-k (the plan is k-agnostic);
    // the result is not.
    cache_key += "|topk=" + std::to_string(parsed->agg.top_k);
    if (auto body = result_cache_.Lookup(cache_key, epoch);
        body != nullptr) {
      return OkWithBody(*body, /*cached=*/true);
    }
  }

  query::QueryStats stats;
  std::vector<query::Binding> rows = kb_->Execute(*parsed, exec, &stats);
  if (stats.deadline_exceeded) {
    // Partial-free by contract: whatever prefix was produced is
    // dropped, the client sees an error it can retry with a longer
    // budget — never silently truncated data.
    metrics_->deadline_exceeded.Increment();
    return ErrorJson("deadline_exceeded",
                     "query missed its deadline after " +
                         std::to_string(stats.rows_streamed) + " rows");
  }

  Json body = Json::Object();
  {
    // Term rendering reads the dictionary, which insert_facts grows
    // under the exclusive side of the lock held above.
    const rdf::Dictionary& dict = kb_->store().dict();
    std::vector<std::string> columns = parsed->projection;
    if (parsed->agg.enabled()) {
      // Aggregate results are [group values..., count]; the count
      // column is a plain number, not a dictionary term.
      columns = parsed->agg.group_by;
      columns.push_back(parsed->agg.out_name.empty() ? "count"
                                                     : parsed->agg.out_name);
    } else if (columns.empty() && !rows.empty()) {
      for (const auto& [var, id] : rows.front()) columns.push_back(var);
    }
    Json columns_json = Json::Array();
    for (const std::string& c : columns) columns_json.Append(Json::Str(c));
    Json rows_json = Json::Array();
    for (const query::Binding& row : rows) {
      Json row_json = Json::Array();
      for (size_t c = 0; c < columns.size(); ++c) {
        auto it = row.find(columns[c]);
        if (it == row.end() || it->second == rdf::kInvalidTermId) {
          row_json.Append(Json::Null());
        } else if (parsed->agg.enabled() && c + 1 == columns.size()) {
          row_json.Append(Json::Number(static_cast<double>(it->second)));
        } else {
          const rdf::Term& term = dict.term(it->second);
          row_json.Append(Json::Str(
              term.is_iri() ? rdf::Abbreviate(term.value()) : term.value()));
        }
      }
      rows_json.Append(std::move(row_json));
    }
    body.Set("columns", std::move(columns_json));
    body.Set("rows", std::move(rows_json));
  }
  body.Set("row_count", Json::Number(static_cast<double>(rows.size())));
  if (stats.max_rows_hit) body.Set("truncated", Json::Bool(true));

  std::string serialized = body.Dump();
  // A row-capped result is a prefix; caching it would serve the
  // truncation to callers with a different tolerance.
  if (use_cache && !stats.max_rows_hit) {
    result_cache_.Insert(cache_key, epoch, serialized);
  }
  return OkWithBody(serialized, /*cached=*/false);
}

std::string KbServer::HandleEntityCard(const Json& request) {
  metrics_->entity_cards.Increment();
  const std::string entity = request.GetString("entity");
  if (entity.empty()) return ErrorJson("bad_request", "missing entity");
  if (std::string stale = CheckMinEpoch(request); !stale.empty()) {
    return stale;
  }
  core::EntityCardOptions card_options;
  if (request["max_facts"].is_number() &&
      request["max_facts"].as_number() > 0) {
    card_options.max_facts =
        static_cast<size_t>(request["max_facts"].as_number());
  }
  StatusOr<core::EntityCard> card = [&] {
    std::shared_lock<std::shared_mutex> lock(kb_mu_);
    return core::BuildEntityCard(*kb_, entity, card_options);
  }();
  if (!card.ok()) {
    if (card.status().IsNotFound()) {
      return ErrorJson("not_found", card.status().message());
    }
    return ErrorJson("internal", card.status().ToString());
  }
  Json response = Json::Object();
  response.Set("status", Json::Str("ok"));
  response.Set("canonical", Json::Str(card->canonical));
  response.Set("display_name", Json::Str(card->display_name));
  Json types = Json::Array();
  for (const std::string& type : card->types) types.Append(Json::Str(type));
  response.Set("types", std::move(types));
  Json facts = Json::Array();
  for (const core::CardFact& fact : card->facts) {
    Json f = Json::Object();
    f.Set("property", Json::Str(fact.property));
    f.Set("value", Json::Str(fact.value));
    f.Set("confidence", Json::Number(fact.confidence));
    f.Set("support", Json::Number(fact.support));
    facts.Append(std::move(f));
  }
  response.Set("facts", std::move(facts));
  Json labels = Json::Array();
  for (const auto& [lang, label] : card->labels) {
    Json l = Json::Object();
    l.Set("lang", Json::Str(lang));
    l.Set("label", Json::Str(label));
    labels.Append(std::move(l));
  }
  response.Set("labels", std::move(labels));
  response.Set("text", Json::Str(core::RenderEntityCard(*card)));
  return response.Dump();
}

std::string KbServer::HandleInsertFacts(const Json& request) {
  if (options_.read_only) {
    return ErrorJson("not_leader",
                     "this replica is read-only; send writes to the leader");
  }
  const Json& facts = request["facts"];
  if (!facts.is_array()) {
    return ErrorJson("bad_request", "facts must be an array");
  }
  // Decode and validate outside the lock; invalid entries are counted
  // and dropped here so the replication log only ever sees facts that
  // will actually be asserted.
  std::vector<WireFact> batch;
  batch.reserve(facts.items().size());
  std::vector<core::FactMeta> metas;
  metas.reserve(facts.items().size());
  size_t skipped = 0;
  for (const Json& fact : facts.items()) {
    WireFact wire;
    wire.s = fact.GetString("s");
    wire.p = fact.GetString("p");
    wire.o = fact.GetString("o");
    wire.has_year = fact["year"].is_number();
    if (wire.has_year) {
      wire.year = static_cast<int32_t>(fact["year"].as_number());
    }
    if (!fact.is_object() || wire.s.empty() || wire.p.empty() ||
        (wire.o.empty() && !wire.has_year)) {
      ++skipped;
      continue;
    }
    wire.confidence = fact.GetNumber("confidence", 1.0);
    wire.support = static_cast<uint32_t>(fact.GetNumber("support", 1));
    core::FactMeta meta;
    meta.confidence = wire.confidence;
    meta.support = wire.support;
    meta.extractor = static_cast<uint32_t>(fact.GetNumber("extractor", 0));
    batch.push_back(std::move(wire));
    metas.push_back(meta);
  }
  size_t inserted = 0, merged = 0;
  {
    std::unique_lock<std::shared_mutex> lock(kb_mu_);
    if (options_.pre_insert_hook && !batch.empty()) {
      // Log before apply: a follower can over-receive (idempotent
      // replay dedups) but must never under-receive relative to the
      // epoch this response publishes.
      Status logged = options_.pre_insert_hook(batch);
      if (!logged.ok()) {
        metrics_->errors.Increment();
        return ErrorJson("internal",
                         "replication log append failed: " +
                             logged.ToString());
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const WireFact& wire = batch[i];
      bool fresh = wire.has_year
                       ? kb_->AssertYearFact(wire.s, wire.p, wire.year,
                                             metas[i])
                       : kb_->AssertFact(wire.s, wire.p, wire.o, metas[i]);
      if (fresh) ++inserted;
      else ++merged;
    }
  }
  metrics_->inserted_facts.Increment(inserted);
  Json response = Json::Object();
  response.Set("status", Json::Str("ok"));
  response.Set("inserted", Json::Number(static_cast<double>(inserted)));
  response.Set("merged", Json::Number(static_cast<double>(merged)));
  response.Set("skipped", Json::Number(static_cast<double>(skipped)));
  response.Set("epoch", Json::Number(static_cast<double>(kb_->epoch())));
  return response.Dump();
}

ThreadPool* KbServer::AnalyticsPool() {
  std::lock_guard<std::mutex> lock(analytics_pool_mu_);
  if (analytics_pool_ == nullptr) {
    int n = options_.analytics_threads > 0
                ? options_.analytics_threads
                : (options_.num_workers > 0 ? options_.num_workers : 1);
    analytics_pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(n));
  }
  return analytics_pool_.get();
}

std::string KbServer::HandleAnalytics(const Json& request) {
  metrics_->analytics.Increment();
  ScopedTimer timer(metrics_->analytics_ms);
  const std::string job = request.GetString("job");
  if (job != "pagerank" && job != "class_stats") {
    return ErrorJson("bad_request", "unknown analytics job: " + job);
  }
  if (std::string stale = CheckMinEpoch(request); !stale.empty()) {
    return stale;
  }

  size_t top_k = 10;
  if (request["top_k"].is_number() && request["top_k"].as_number() > 0) {
    top_k = static_cast<size_t>(request["top_k"].as_number());
  }
  const bool insert = request.GetBool("insert", false);
  if (insert && options_.read_only) {
    return ErrorJson("not_leader",
                     "this replica is read-only; send writes to the leader");
  }
  double damping = request.GetNumber("damping", 0.85);
  int iterations = static_cast<int>(request.GetNumber("iterations", 20));
  const bool rollup = request.GetBool("rollup", true);

  // Same caching discipline as queries: epoch read before the scan, a
  // job-shaped key, every write batch invalidates by construction. An
  // inserting run mutates the KB (and bumps the epoch), so it is never
  // served from — or written to — the cache.
  const uint64_t epoch = kb_->epoch();
  const bool use_cache = result_cache_.enabled() && !insert &&
                         !request.GetBool("no_cache", false);
  std::string cache_key;
  if (use_cache) {
    cache_key = "analytics|" + job + "|k=" + std::to_string(top_k);
    if (job == "pagerank") {
      cache_key += "|d=" + std::to_string(damping) +
                   "|it=" + std::to_string(iterations);
    } else {
      cache_key += rollup ? "|rollup" : "|direct";
    }
    if (auto body = result_cache_.Lookup(cache_key, epoch);
        body != nullptr) {
      return OkWithBody(*body, /*cached=*/true);
    }
  }

  ThreadPool* pool = AnalyticsPool();
  Json body = Json::Object();
  body.Set("job", Json::Str(job));
  analytics::PageRankResult pagerank;
  analytics::ClassStatsResult class_stats;
  {
    // The scans and term rendering read the store and dictionary;
    // shared side for the whole job so writers (and checkpoints)
    // exclude it wholesale.
    std::shared_lock<std::shared_mutex> lock(kb_mu_);
    const rdf::Dictionary& dict = kb_->store().dict();
    auto predicate = [&](std::string_view iri) {
      return dict.Lookup(rdf::Term::Iri(std::string(iri)));
    };
    if (job == "pagerank") {
      analytics::PageRankOptions opt;
      opt.damping = damping;
      opt.max_iterations = iterations;
      opt.iri_objects_only = &dict;
      for (std::string_view iri :
           {rdf::kRdfType, rdf::kRdfsSubClassOf, rdf::kRdfsLabel,
            rdf::kOwlSameAs}) {
        rdf::TermId id = predicate(iri);
        if (id != rdf::kInvalidTermId) opt.exclude_predicates.push_back(id);
      }
      pagerank = analytics::ComputePageRank(kb_->store(), opt, pool);
      body.Set("nodes",
               Json::Number(static_cast<double>(pagerank.nodes.size())));
      body.Set("edges",
               Json::Number(static_cast<double>(pagerank.num_edges)));
      body.Set("iterations", Json::Number(pagerank.iterations));
      body.Set("delta", Json::Number(pagerank.last_delta));
      Json top = Json::Array();
      for (const auto& [node, score] : pagerank.TopK(top_k)) {
        Json entry = Json::Object();
        entry.Set("entity",
                  Json::Str(rdf::Abbreviate(dict.term(node).value())));
        entry.Set("score", Json::Number(score));
        top.Append(std::move(entry));
      }
      body.Set("top", std::move(top));
    } else {
      analytics::ClassStatsOptions opt;
      opt.type_predicate = predicate(rdf::kRdfType);
      opt.subclass_predicate = predicate(rdf::kRdfsSubClassOf);
      opt.rollup = rollup;
      class_stats = analytics::ComputeClassStats(kb_->store(), opt, pool);
      body.Set("entities",
               Json::Number(static_cast<double>(class_stats.num_entities)));
      body.Set("classes",
               Json::Number(static_cast<double>(class_stats.num_classes)));
      Json top = Json::Array();
      size_t emitted = 0;
      for (const auto& [cls, count] : class_stats.counts) {
        if (emitted++ >= top_k) break;
        Json entry = Json::Object();
        entry.Set("class",
                  Json::Str(rdf::Abbreviate(dict.term(cls).value())));
        entry.Set("count", Json::Number(static_cast<double>(count)));
        top.Append(std::move(entry));
      }
      body.Set("top", std::move(top));
    }
  }
  if (insert) {
    const std::string default_property =
        job == "pagerank" ? "pagerankScore" : "entityCount";
    std::string property = request.GetString("property");
    if (property.empty()) property = default_property;
    size_t inserted = 0;
    {
      // Exclusive: the insert helpers intern literal terms through the
      // raw dictionary handle, which requires quiesced readers. The
      // materialized facts are a local, recomputable cache — they do
      // not ride the replication log (followers rerun the job).
      std::unique_lock<std::shared_mutex> lock(kb_mu_);
      inserted = job == "pagerank"
                     ? analytics::InsertPageRankFacts(pagerank, top_k,
                                                      property, kb_)
                     : analytics::InsertClassStatsFacts(class_stats,
                                                        property, kb_);
    }
    metrics_->inserted_facts.Increment(inserted);
    body.Set("inserted", Json::Number(static_cast<double>(inserted)));
  }

  std::string serialized = body.Dump();
  if (use_cache) result_cache_.Insert(cache_key, epoch, serialized);
  return OkWithBody(serialized, /*cached=*/false);
}

std::string KbServer::HandleHealth() const {
  Json response = Json::Object();
  response.Set("status", Json::Str("ok"));
  response.Set("healthy", Json::Bool(true));
  {
    std::shared_lock<std::shared_mutex> lock(kb_mu_);
    response.Set("triples",
                 Json::Number(static_cast<double>(kb_->NumTriples())));
    response.Set("entities",
                 Json::Number(static_cast<double>(kb_->NumEntities())));
  }
  response.Set("epoch", Json::Number(static_cast<double>(kb_->epoch())));
  response.Set("role", Json::Str(options_.read_only ? "follower" : "leader"));
  response.Set("applied_epoch",
               Json::Number(static_cast<double>(applied_epoch())));
  double uptime_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started_at_)
                         .count();
  response.Set("uptime_ms", Json::Number(uptime_ms));
  return response.Dump();
}

std::string KbServer::HandleMetrics() const {
  Json response = Json::Object();
  response.Set("status", Json::Str("ok"));
  response.Set("text",
               Json::Str(MetricsRegistry::Default().Snapshot().ToText()));
  return response.Dump();
}

}  // namespace server
}  // namespace kb
