#ifndef KBFORGE_SERVER_KB_SERVER_H_
#define KBFORGE_SERVER_KB_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/knowledge_base.h"
#include "server/event_loop.h"
#include "server/json.h"
#include "server/result_cache.h"
#include "server/wire_fact.h"
#include "util/metrics_registry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kb {
namespace server {

/// The KB serving layer: an event-driven TCP front door over a
/// KnowledgeBase, speaking length-prefixed JSON (server/protocol.h).
///
/// Endpoints (request field "op"):
///   query        {"op":"query","sparql":...,"deadline_ms"?,"max_rows"?,
///                 "no_cache"?} -> {"status":"ok","cached":bool,
///                 "columns":[...],"rows":[[...]],"row_count":N}
///   entity_card  {"op":"entity_card","entity":canonical,"max_facts"?}
///   insert_facts {"op":"insert_facts","facts":[{"s","p","o"|"year",
///                 "confidence"?,"support"?}]}
///   analytics    {"op":"analytics","job":"pagerank"|"class_stats",
///                 "top_k"?,"damping"?,"iterations"?,"rollup"?,
///                 "insert"?,"property"?,"no_cache"?} -> job summary +
///                 top-k results; with insert=true the results are
///                 also asserted back into the KB as facts
///   health       {"op":"health"}
///   metrics      {"op":"metrics"} -> text snapshot of the PR-1 registry
///
/// Production concerns the in-process library lacks:
///   - An event-driven I/O core (server/event_loop.h): a few epoll
///     threads own every connection fd, so connection count is
///     decoupled from thread count — 10k keep-alive clients cost 10k
///     fds, not 10k stacks. Clients may pipeline: frames on one
///     connection are answered strictly in order however the workers
///     race. The PR-5 thread-per-connection core survives as an
///     ablation (Options::threaded_core) so the benchmark can measure
///     the difference.
///   - A fixed worker pool pulls parsed requests from a bounded queue.
///     When the queue is full, requests are *rejected* immediately
///     with {"status":"overloaded","retry_after_ms":R} instead of
///     queueing unboundedly (admission control: shed load, keep tail
///     latency of admitted work flat); the connection cap sheds
///     excess accepts the same way. `server.rejected` counts both.
///   - Per-request deadlines, threaded into the query executor as
///     query::ExecOptions and enforced cooperatively inside the scan
///     loops. An expired query returns a partial-free
///     "deadline_exceeded" error, never silently truncated rows.
///   - A sharded LRU result cache keyed by the normalized query shape
///     (plan-cache key + LIMIT + row cap) and the KB write epoch, so
///     every write batch invalidates by construction (server/
///     result_cache.h).
///
/// Writes go through the `insert_facts` endpoint under an exclusive
/// lock (reads hold it shared while touching the dictionary), so term
/// rendering never races interning. External code mutating the KB
/// directly while the server runs must take no such license.
class KbServer {
 public:
  struct Options {
    int port = 0;               ///< 0 = ephemeral, see port()
    int num_workers = 4;        ///< request-serving threads
    size_t queue_depth = 16;    ///< pending requests before shedding
    int io_threads = 2;         ///< epoll I/O threads (event core)
    /// listen(2) backlog; <= 0 means SOMAXCONN.
    int backlog = 0;
    /// Open-connection cap: accepts past it are shed with the overload
    /// hint instead of blocking accept. 0 derives num_workers +
    /// queue_depth — the same envelope the thread-per-connection core
    /// could hold, so shedding behavior is unchanged by default; raise
    /// it explicitly (e.g. the concurrency bench) to hold thousands of
    /// keep-alive connections.
    size_t max_connections = 0;
    /// Connections idle (no traffic, nothing in flight) this long are
    /// closed. 0 = never. Event core only.
    double idle_timeout_ms = 0;
    /// Parsed-but-unanswered frames allowed per connection before the
    /// loop stops reading it (pipelining backpressure). Event core
    /// only.
    size_t max_pipeline = 128;
    /// Ablation: run the PR-5 thread-per-connection core instead of
    /// the epoll event core. Kept so bench_e18 can compare the two.
    bool threaded_core = false;
    size_t cache_bytes = 8u << 20;  ///< result cache; 0 disables
    /// Deadline applied when a query request carries none; 0 = none.
    double default_deadline_ms = 0;
    /// Row cap applied when a request carries none; 0 = unlimited.
    size_t default_max_rows = 0;
    /// Hint returned with overload rejections.
    int retry_after_ms = 20;
    /// Follower mode: insert_facts is rejected with "not_leader" (the
    /// router retries against the leader); health reports
    /// role=follower. Replicated writes bypass the endpoint via
    /// WithWriteLock.
    bool read_only = false;
    /// When set, health and min_epoch staleness checks use this
    /// instead of the KB's own epoch. Followers point it at the
    /// replication applied-epoch: their local KB epoch counts replay
    /// progress in *their* numbering, while this is the leader epoch
    /// the replica provably reflects.
    std::function<uint64_t()> applied_epoch_fn;
    /// Leader-side replication hook, called under the exclusive KB
    /// lock with the validated batch *before* any fact is asserted. A
    /// failure aborts the whole insert — the durability order is log
    /// first, KB second, so a published epoch E always means "every
    /// write <= E is in the replication log".
    std::function<Status(const std::vector<WireFact>&)> pre_insert_hook;
    /// Threads in the lazily created analytics pool (PageRank shards,
    /// class-stats shards). 0 derives num_workers.
    int analytics_threads = 0;
  };

  /// The server serves `kb` (borrowed; must outlive the server).
  KbServer(core::KnowledgeBase* kb, const Options& options);
  ~KbServer();

  KbServer(const KbServer&) = delete;
  KbServer& operator=(const KbServer&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads.
  Status Start();

  /// Drains and joins everything. Idempotent.
  void Stop();

  /// Graceful shutdown: immediately stops admitting new connections
  /// (they are shed with the retry hint, so a router fails over), lets
  /// in-flight requests finish for up to `timeout_ms`, then Stop()s.
  /// What kbforge_serve runs on SIGTERM.
  void Drain(double timeout_ms);

  /// The bound port (valid after Start; resolves port 0).
  int port() const { return port_; }

  const core::KnowledgeBase* kb() const { return kb_; }

  /// Runs `fn` under the exclusive KB lock — the same lock the insert
  /// endpoint holds — so out-of-band writers (a follower's replication
  /// replay) serialize against in-flight reads.
  void WithWriteLock(const std::function<void()>& fn);

  /// The epoch this server claims to reflect (see applied_epoch_fn).
  uint64_t applied_epoch() const;

 private:
  struct Metrics;

  /// One parsed frame waiting for (or held by) a worker.
  struct PendingRequest {
    ConnRef conn;
    uint64_t seq = 0;
    std::string payload;
  };

  // Event core.
  Status StartEvent();
  void OnFrame(const ConnRef& conn, uint64_t seq, std::string payload);
  void EventWorkerLoop();

  // Threaded-core ablation (PR-5 behavior).
  Status StartThreaded();
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  /// One request -> one response; false = close the connection.
  bool HandleFrame(const std::string& payload, std::string* response);

  std::string HandleRequest(const Json& request);
  /// Non-empty = the "stale_replica" error response for a request
  /// whose min_epoch this server has not applied yet.
  std::string CheckMinEpoch(const Json& request) const;
  std::string HandleQuery(const Json& request);
  std::string HandleEntityCard(const Json& request);
  std::string HandleInsertFacts(const Json& request);
  std::string HandleAnalytics(const Json& request);
  /// The lazily created shared pool analytics jobs shard across.
  ThreadPool* AnalyticsPool();
  std::string HandleHealth() const;
  std::string HandleMetrics() const;

  void RegisterConnection(int fd);
  void UnregisterAndClose(int fd);

  core::KnowledgeBase* kb_;
  Options options_;
  ResultCache result_cache_;
  Metrics* metrics_;  ///< registry-owned instruments, never freed

  std::unique_ptr<EventServer> event_server_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< unblocks the acceptor's poll()
  int port_ = 0;
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<int> pending_;          ///< threaded core: queued conn fds
  std::deque<PendingRequest> reqs_;  ///< event core: queued requests
  bool stopping_ = false;
  bool draining_ = false;  ///< shed new work, finish in-flight
  bool started_ = false;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;  ///< signaled as connections close
  std::set<int> active_fds_;  ///< every live accepted fd (for Stop)

  /// Reads (query parse/execute/render, entity cards, analytics
  /// scans) hold this shared for their full KB access; the insert
  /// endpoint and WithWriteLock hold it exclusive. Because every read
  /// path is inside the shared side, an exclusive holder has truly
  /// quiesced the KB — which is what lets kbforge_serve run
  /// KbVolume::Checkpoint (a KB move-assign) under WithWriteLock while
  /// serving.
  mutable std::shared_mutex kb_mu_;

  std::mutex analytics_pool_mu_;
  std::unique_ptr<ThreadPool> analytics_pool_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_KB_SERVER_H_
