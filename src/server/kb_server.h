#ifndef KBFORGE_SERVER_KB_SERVER_H_
#define KBFORGE_SERVER_KB_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/knowledge_base.h"
#include "server/json.h"
#include "server/result_cache.h"
#include "util/metrics_registry.h"
#include "util/status.h"

namespace kb {
namespace server {

/// The KB serving layer: a multi-threaded TCP front door over a
/// KnowledgeBase, speaking length-prefixed JSON (server/protocol.h).
///
/// Endpoints (request field "op"):
///   query        {"op":"query","sparql":...,"deadline_ms"?,"max_rows"?,
///                 "no_cache"?} -> {"status":"ok","cached":bool,
///                 "columns":[...],"rows":[[...]],"row_count":N}
///   entity_card  {"op":"entity_card","entity":canonical,"max_facts"?}
///   insert_facts {"op":"insert_facts","facts":[{"s","p","o"|"year",
///                 "confidence"?,"support"?}]}
///   health       {"op":"health"}
///   metrics      {"op":"metrics"} -> text snapshot of the PR-1 registry
///
/// Production concerns the in-process library lacks:
///   - A fixed worker pool pulls accepted connections from a bounded
///     queue. When the queue is full, new connections are *rejected*
///     immediately with {"status":"overloaded","retry_after_ms":R}
///     instead of queueing unboundedly (admission control: shed load,
///     keep tail latency of admitted work flat). `server.rejected`
///     counts the sheds.
///   - Per-request deadlines, threaded into the query executor as
///     query::ExecOptions and enforced cooperatively inside the scan
///     loops. An expired query returns a partial-free
///     "deadline_exceeded" error, never silently truncated rows.
///   - A sharded LRU result cache keyed by the normalized query shape
///     (plan-cache key + LIMIT + row cap) and the KB write epoch, so
///     every write batch invalidates by construction (server/
///     result_cache.h).
///
/// Writes go through the `insert_facts` endpoint under an exclusive
/// lock (reads hold it shared while touching the dictionary), so term
/// rendering never races interning. External code mutating the KB
/// directly while the server runs must take no such license.
class KbServer {
 public:
  struct Options {
    int port = 0;               ///< 0 = ephemeral, see port()
    int num_workers = 4;        ///< request-serving threads
    size_t queue_depth = 16;    ///< pending connections before shedding
    size_t cache_bytes = 8u << 20;  ///< result cache; 0 disables
    /// Deadline applied when a query request carries none; 0 = none.
    double default_deadline_ms = 0;
    /// Row cap applied when a request carries none; 0 = unlimited.
    size_t default_max_rows = 0;
    /// Hint returned with overload rejections.
    int retry_after_ms = 20;
  };

  /// The server serves `kb` (borrowed; must outlive the server).
  KbServer(core::KnowledgeBase* kb, const Options& options);
  ~KbServer();

  KbServer(const KbServer&) = delete;
  KbServer& operator=(const KbServer&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads.
  Status Start();

  /// Drains and joins everything. Idempotent.
  void Stop();

  /// The bound port (valid after Start; resolves port 0).
  int port() const { return port_; }

  const core::KnowledgeBase* kb() const { return kb_; }

 private:
  struct Metrics;

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  /// One request -> one response; false = close the connection.
  bool HandleFrame(const std::string& payload, std::string* response);

  std::string HandleRequest(const Json& request);
  std::string HandleQuery(const Json& request);
  std::string HandleEntityCard(const Json& request);
  std::string HandleInsertFacts(const Json& request);
  std::string HandleHealth() const;
  std::string HandleMetrics() const;

  void RegisterConnection(int fd);
  void UnregisterAndClose(int fd);

  core::KnowledgeBase* kb_;
  Options options_;
  ResultCache result_cache_;
  Metrics* metrics_;  ///< registry-owned instruments, never freed

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< unblocks the acceptor's poll()
  int port_ = 0;
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<int> pending_;  ///< accepted, waiting for a worker
  bool stopping_ = false;
  bool started_ = false;

  std::mutex conn_mu_;
  std::set<int> active_fds_;  ///< every live accepted fd (for Stop)

  /// Reads touching the dictionary/taxonomy hold this shared; the
  /// insert endpoint holds it exclusive.
  mutable std::shared_mutex kb_mu_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_KB_SERVER_H_
