#include "server/protocol.h"

#include <errno.h>
#include <string.h>

#include "util/io_util.h"

namespace kb {
namespace server {

namespace {

std::string Errno() {
  return std::string(::strerror(errno));
}

}  // namespace

Status ReadFrame(int fd, std::string* payload) {
  unsigned char header[4];
  ssize_t got = ReadFully(fd, header, sizeof(header));
  if (got == 0) return Status::Aborted("connection closed");
  if (got < 0) return Status::IOError("read header: " + Errno());
  if (got < static_cast<ssize_t>(sizeof(header))) {
    return Status::IOError("torn frame header");
  }
  uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                    (static_cast<uint32_t>(header[1]) << 16) |
                    (static_cast<uint32_t>(header[2]) << 8) |
                    static_cast<uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " exceeds limit");
  }
  payload->resize(length);
  if (length == 0) return Status::OK();
  got = ReadFully(fd, payload->data(), length);
  if (got < 0) return Status::IOError("read payload: " + Errno());
  if (got < static_cast<ssize_t>(length)) {
    return Status::IOError("torn frame payload");
  }
  return Status::OK();
}

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::IOError("frame too large to send");
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length),
  };
  // Header and payload are written separately; SendFully guarantees
  // each completes, so frames never interleave within one connection
  // (each connection is owned by exactly one worker at a time), and
  // its MSG_NOSIGNAL turns a hung-up peer into EPIPE, not SIGPIPE.
  if (SendFully(fd, header, sizeof(header)) < 0) {
    return Status::IOError("write header: " + Errno());
  }
  if (!payload.empty() &&
      SendFully(fd, payload.data(), payload.size()) < 0) {
    return Status::IOError("write payload: " + Errno());
  }
  return Status::OK();
}

}  // namespace server
}  // namespace kb
