#ifndef KBFORGE_SERVER_PROTOCOL_H_
#define KBFORGE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace kb {
namespace server {

/// Wire framing for the serving protocol: every message is a 4-byte
/// big-endian payload length followed by that many bytes of UTF-8 JSON.
/// The length prefix is bounded (kMaxFrameBytes) so a malicious or
/// corrupt prefix cannot make the receiver allocate gigabytes — an
/// oversized prefix fails the read with InvalidArgument and the
/// connection is dropped.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Reads one frame into `payload`.
///   OK              frame read completely,
///   Aborted         clean EOF before any byte (peer hung up idle),
///   InvalidArgument length prefix exceeds kMaxFrameBytes,
///   IOError         torn frame (EOF mid-message) or socket error.
Status ReadFrame(int fd, std::string* payload);

/// Writes one frame. IOError on any socket failure (incl. payloads
/// over kMaxFrameBytes, which the peer would refuse anyway).
Status WriteFrame(int fd, const std::string& payload);

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_PROTOCOL_H_
