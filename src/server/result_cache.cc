#include "server/result_cache.h"

#include "util/hash.h"
#include "util/metrics_registry.h"

namespace kb {
namespace server {

namespace {

ShardedLruCache::Instruments CacheInstruments() {
  MetricsRegistry& r = MetricsRegistry::Default();
  ShardedLruCache::Instruments instruments;
  instruments.hits = &r.counter("server.result_cache_hits");
  instruments.misses = &r.counter("server.result_cache_misses");
  instruments.evictions = &r.counter("server.result_cache_evictions");
  return instruments;
}

/// Stored blob: 4-byte little-endian key length, the key bytes, the
/// payload bytes. The embedded key makes 64-bit-hash collisions
/// harmless: a colliding entry fails verification and reads as a miss.
std::string PackEntry(const std::string& key, std::string payload) {
  std::string blob;
  blob.reserve(4 + key.size() + payload.size());
  uint32_t n = static_cast<uint32_t>(key.size());
  blob.push_back(static_cast<char>(n));
  blob.push_back(static_cast<char>(n >> 8));
  blob.push_back(static_cast<char>(n >> 16));
  blob.push_back(static_cast<char>(n >> 24));
  blob += key;
  blob += payload;
  return blob;
}

bool UnpackEntry(const std::string& blob, const std::string& key,
                 std::string* payload) {
  if (blob.size() < 4) return false;
  uint32_t n = static_cast<uint32_t>(static_cast<unsigned char>(blob[0])) |
               (static_cast<uint32_t>(static_cast<unsigned char>(blob[1]))
                << 8) |
               (static_cast<uint32_t>(static_cast<unsigned char>(blob[2]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(blob[3]))
                << 24);
  if (n != key.size() || blob.size() < 4 + n) return false;
  if (blob.compare(4, n, key) != 0) return false;
  payload->assign(blob, 4 + n, blob.size() - 4 - n);
  return true;
}

}  // namespace

ResultCache::ResultCache(size_t capacity_bytes) {
  if (capacity_bytes > 0) {
    cache_ = std::make_unique<ShardedLruCache>(capacity_bytes, 16,
                                               CacheInstruments());
  }
}

std::shared_ptr<const std::string> ResultCache::Lookup(const std::string& key,
                                                       uint64_t epoch) {
  if (cache_ == nullptr) return nullptr;
  std::shared_ptr<const std::string> blob =
      cache_->Lookup(Hash64(key), epoch);
  if (blob == nullptr) return nullptr;
  auto payload = std::make_shared<std::string>();
  if (!UnpackEntry(*blob, key, payload.get())) return nullptr;
  return payload;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         std::string payload) {
  if (cache_ == nullptr) return;
  cache_->Insert(Hash64(key), epoch,
                 std::make_shared<const std::string>(
                     PackEntry(key, std::move(payload))));
}

LruCacheStats ResultCache::stats() const {
  if (cache_ == nullptr) return LruCacheStats{};
  return cache_->stats();
}

}  // namespace server
}  // namespace kb
