#ifndef KBFORGE_SERVER_RESULT_CACHE_H_
#define KBFORGE_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/lru_cache.h"

namespace kb {
namespace server {

/// Query-result cache for the serving layer, layered on the same
/// sharded LRU the storage engine uses for blocks. Entries map a
/// normalized query shape (the plan-cache key plus everything the plan
/// deliberately omits: LIMIT and row caps) to the fully serialized
/// response payload, so a hot-query hit skips parsing nothing but
/// execution, serialization and allocation — the expensive parts.
///
/// Invalidation is epoch-based: the KB bumps its write epoch on every
/// mutation, lookups always use the *current* epoch, and entries
/// written under older epochs simply never match again (they age out
/// of the LRU). A read-after-write is therefore never served stale —
/// there is no invalidation broadcast to race with.
///
/// The underlying cache is keyed by a 64-bit hash; to make a hash
/// collision impossible to observe, the stored value embeds the full
/// normalized key and Lookup verifies it before returning the payload.
class ResultCache {
 public:
  /// `capacity_bytes` == 0 disables the cache entirely (every Lookup
  /// misses, Insert is a no-op) — the cache-off ablation.
  explicit ResultCache(size_t capacity_bytes);

  /// Returns the serialized payload cached for (key, epoch), or
  /// nullptr. `hit`/`miss` counters are the server.result_cache_*
  /// metrics, bumped internally.
  std::shared_ptr<const std::string> Lookup(const std::string& key,
                                            uint64_t epoch);

  void Insert(const std::string& key, uint64_t epoch, std::string payload);

  bool enabled() const { return cache_ != nullptr; }
  LruCacheStats stats() const;

 private:
  std::unique_ptr<ShardedLruCache> cache_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_RESULT_CACHE_H_
