// kbforge_serve: stand up a KbServer over a harvested KB.
//
// The KB is built the same way the examples build theirs — synthesize
// a corpus, harvest it — so the binary is self-contained: no data
// files, deterministic content, ready for load generators to point at.
//
// Usage:
//   kbforge_serve [--port=N] [--workers=N] [--queue=N]
//                 [--io-threads=N] [--backlog=N] [--max-connections=N]
//                 [--idle-timeout-ms=MS] [--max-pipeline=N]
//                 [--threaded-core]
//                 [--cache-bytes=N] [--deadline-ms=MS] [--max-rows=N]
//                 [--persons=N] [--seed=N] [--drain-ms=MS]
//                 [--repl-port=N] [--repl-data-dir=PATH]
//                 [--repl-shards=N]
//                 [--snapshot=PATH] [--write-snapshot=PATH]
//                 [--volume=DIR] [--checkpoint-interval-s=N]
//                 [--checkpoint-threshold=N]
//
// The server runs on the epoll event core (DESIGN.md §5f):
// --io-threads epoll loops own every connection fd while --workers
// threads execute requests, so held-open connections cost no worker.
// --max-connections (0 = workers + queue) sheds excess accepts,
// --idle-timeout-ms reaps silent connections, --max-pipeline bounds
// per-connection in-flight requests. --threaded-core selects the old
// thread-per-connection core (ablation/escape hatch).
//
// --snapshot=PATH boots the KB by mapping a FrameStore snapshot file
// instead of harvesting — the instant-start path (milliseconds instead
// of a full corpus build). --write-snapshot=PATH harvests as usual,
// serializes the KB into PATH and exits 0; pair them across runs:
//   kbforge_serve --write-snapshot=kb.kbsnap
//   kbforge_serve --snapshot=kb.kbsnap
//
// --volume=DIR serves out of a KbVolume home directory (snapshot
// generations + deltas): boot takes the newest valid snapshot plus
// delta replay, an empty volume is seeded by the usual harvest, and
// the delta is persisted on clean shutdown. With
// --checkpoint-interval-s=N a background thread wakes every N seconds
// and — once the delta has grown by --checkpoint-threshold triples
// (default 5000) since the last checkpoint — compacts base+delta into
// the next snapshot generation *while serving*: the checkpoint runs
// under the server's exclusive KB lock, which quiesces every in-flight
// read and write for the duration, and the result cache survives
// because the swap preserves the write epoch.
//
// With --repl-port the process runs as a replication *leader*: every
// accepted insert is appended to a WAL-backed replication log before
// the KB applies it, and a WalShipper on that port streams the log to
// kbforge_follower processes.
//
// Prints "listening on 127.0.0.1:<port>" once ready, then blocks until
// SIGINT/SIGTERM. The first signal drains gracefully (stop admitting,
// finish in-flight work, up to --drain-ms); a second signal forces an
// immediate stop.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <chrono>

#include "core/harvester.h"
#include "core/kb_snapshot.h"
#include "replication/repl_log.h"
#include "replication/wal_shipper.h"
#include "server/kb_server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool FlagValue(const char* arg, const char* name, long* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = ::strtol(arg + len + 1, nullptr, 10);
  return true;
}

bool FlagString(const char* arg, const char* name, std::string* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kb;

  // Workers must exceed a fronting router's workers + 1: the router
  // parks one cached data connection per worker plus one persistent
  // health connection on every backend (DESIGN.md §5d).
  long port = 7471, workers = 8, queue = 16;
  long io_threads = 2, backlog = 0, max_connections = 0;
  long idle_timeout_ms = 0, max_pipeline = 128;
  bool threaded_core = false;
  long cache_bytes = 8 << 20, deadline_ms = 0, max_rows = 0;
  long persons = 400, seed = 4242, drain_ms = 2000;
  long repl_port = -1, repl_shards = 4;
  long checkpoint_interval_s = 0, checkpoint_threshold = 5000;
  std::string repl_data_dir = "kbforge-repl-log";
  std::string snapshot_path, write_snapshot_path, volume_dir;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (FlagValue(argv[i], "--port", &v)) port = v;
    else if (FlagValue(argv[i], "--workers", &v)) workers = v;
    else if (FlagValue(argv[i], "--queue", &v)) queue = v;
    else if (FlagValue(argv[i], "--io-threads", &v)) io_threads = v;
    else if (FlagValue(argv[i], "--backlog", &v)) backlog = v;
    else if (FlagValue(argv[i], "--max-connections", &v)) max_connections = v;
    else if (FlagValue(argv[i], "--idle-timeout-ms", &v)) idle_timeout_ms = v;
    else if (FlagValue(argv[i], "--max-pipeline", &v)) max_pipeline = v;
    else if (::strcmp(argv[i], "--threaded-core") == 0) threaded_core = true;
    else if (FlagValue(argv[i], "--cache-bytes", &v)) cache_bytes = v;
    else if (FlagValue(argv[i], "--deadline-ms", &v)) deadline_ms = v;
    else if (FlagValue(argv[i], "--max-rows", &v)) max_rows = v;
    else if (FlagValue(argv[i], "--persons", &v)) persons = v;
    else if (FlagValue(argv[i], "--seed", &v)) seed = v;
    else if (FlagValue(argv[i], "--drain-ms", &v)) drain_ms = v;
    else if (FlagValue(argv[i], "--repl-port", &v)) repl_port = v;
    else if (FlagValue(argv[i], "--repl-shards", &v)) repl_shards = v;
    else if (FlagString(argv[i], "--repl-data-dir", &repl_data_dir)) {
    } else if (FlagString(argv[i], "--snapshot", &snapshot_path)) {
    } else if (FlagString(argv[i], "--write-snapshot", &write_snapshot_path)) {
    } else if (FlagString(argv[i], "--volume", &volume_dir)) {
    } else if (FlagValue(argv[i], "--checkpoint-interval-s", &v)) {
      checkpoint_interval_s = v;
    } else if (FlagValue(argv[i], "--checkpoint-threshold", &v)) {
      checkpoint_threshold = v;
    } else {
      ::fprintf(stderr,
                "usage: %s [--port=N] [--workers=N] [--queue=N] "
                "[--io-threads=N] [--backlog=N] [--max-connections=N] "
                "[--idle-timeout-ms=MS] [--max-pipeline=N] "
                "[--threaded-core] "
                "[--cache-bytes=N] [--deadline-ms=MS] [--max-rows=N] "
                "[--persons=N] [--seed=N] [--drain-ms=MS] [--repl-port=N] "
                "[--repl-data-dir=PATH] [--repl-shards=N] "
                "[--snapshot=PATH] [--write-snapshot=PATH] "
                "[--volume=DIR] [--checkpoint-interval-s=N] "
                "[--checkpoint-threshold=N]\n",
                argv[0]);
      return 2;
    }
  }

  // Signals are trapped before the (slow) harvest so an early SIGTERM
  // still lands in the pipe instead of killing us mid-build.
  if (::pipe(g_signal_pipe) != 0) {
    ::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  core::HarvestResult result;
  std::unique_ptr<core::KbVolume> volume;
  bool booted = false;
  if (!volume_dir.empty()) {
    auto opened = core::KbVolume::Open(nullptr, volume_dir);
    if (!opened.ok()) {
      ::fprintf(stderr, "volume open failed: %s\n",
                opened.status().ToString().c_str());
      return 1;
    }
    volume = std::move(*opened);
    auto loaded = volume->Load();
    if (!loaded.ok()) {
      ::fprintf(stderr, "volume load failed: %s\n",
                loaded.status().ToString().c_str());
      return 1;
    }
    for (const std::string& refused : loaded->refused) {
      ::fprintf(stderr, "volume: refused %s\n", refused.c_str());
    }
    if (loaded->kb->NumTriples() > 0) {
      result.kb = std::move(*loaded->kb);
      booted = true;
      ::printf("loaded volume %s gen %llu: %zu triples, %zu entities\n",
               volume_dir.c_str(),
               static_cast<unsigned long long>(loaded->generation),
               result.kb.NumTriples(), result.kb.NumEntities());
    }
    // An empty volume falls through to the harvest (or --snapshot)
    // boot below and is seeded from whatever that produced.
  }
  if (!booted && !snapshot_path.empty()) {
    // Instant-start: map the snapshot artifact instead of harvesting.
    auto start = std::chrono::steady_clock::now();
    auto snap = core::OpenKbSnapshot(nullptr, snapshot_path);
    if (!snap.ok()) {
      ::fprintf(stderr, "snapshot open failed: %s\n",
                snap.status().ToString().c_str());
      return 1;
    }
    result.kb = std::move(*core::KnowledgeBase::FromSnapshot(std::move(*snap)));
    double boot_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    ::printf("mapped snapshot %s in %.2f ms: %zu triples, %zu entities, "
             "%zu classes\n",
             snapshot_path.c_str(), boot_ms, result.kb.NumTriples(),
             result.kb.NumEntities(), result.kb.NumClasses());
    booted = true;
  }
  if (!booted) {
    corpus::WorldOptions world_options;
    world_options.seed = static_cast<uint64_t>(seed);
    world_options.num_persons = static_cast<size_t>(persons);
    corpus::CorpusOptions corpus_options;
    corpus_options.seed = static_cast<uint64_t>(seed) + 1;
    corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
    core::Harvester harvester;
    result = harvester.Harvest(corpus);
    ::printf("harvested KB: %zu triples, %zu entities, %zu classes\n",
             result.kb.NumTriples(), result.kb.NumEntities(),
             result.kb.NumClasses());
    if (volume != nullptr) {
      // Seed the empty volume so the next boot replays instead of
      // re-harvesting.
      Status seeded = volume->SaveDelta(result.kb);
      if (!seeded.ok()) {
        ::fprintf(stderr, "volume seed failed: %s\n",
                  seeded.ToString().c_str());
        return 1;
      }
    }
  }
  if (!write_snapshot_path.empty()) {
    Status write_status =
        core::WriteKbSnapshot(nullptr, write_snapshot_path, result.kb);
    if (!write_status.ok()) {
      ::fprintf(stderr, "snapshot write failed: %s\n",
                write_status.ToString().c_str());
      return 1;
    }
    ::printf("wrote snapshot %s (%zu triples)\n", write_snapshot_path.c_str(),
             result.kb.NumTriples());
    return 0;
  }

  std::unique_ptr<replication::ReplicationLog> repl_log;
  server::KbServer::Options options;
  options.port = static_cast<int>(port);
  options.num_workers = static_cast<int>(workers);
  options.queue_depth = static_cast<size_t>(queue);
  options.io_threads = static_cast<int>(io_threads);
  options.backlog = static_cast<int>(backlog);
  options.max_connections = static_cast<size_t>(max_connections);
  options.idle_timeout_ms = static_cast<double>(idle_timeout_ms);
  options.max_pipeline = static_cast<size_t>(max_pipeline);
  options.threaded_core = threaded_core;
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  options.default_deadline_ms = static_cast<double>(deadline_ms);
  options.default_max_rows = static_cast<size_t>(max_rows);
  if (repl_port >= 0) {
    replication::ReplicationLog::Options log_options;
    log_options.num_shards = static_cast<int>(repl_shards);
    auto log = replication::ReplicationLog::Open(log_options, repl_data_dir);
    if (!log.ok()) {
      ::fprintf(stderr, "replication log open failed: %s\n",
                log.status().ToString().c_str());
      return 1;
    }
    repl_log = std::move(*log);
    options.pre_insert_hook =
        [&log = *repl_log](const std::vector<server::WireFact>& batch) {
          return log.Append(batch);
        };
  }

  server::KbServer server(&result.kb, options);
  Status status = server.Start();
  if (!status.ok()) {
    ::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ::printf("listening on 127.0.0.1:%d (%s core, %ld workers, queue %ld, "
           "%ld io threads, cache %ld bytes)\n",
           server.port(), threaded_core ? "threaded" : "event", workers,
           queue, io_threads, cache_bytes);

  std::unique_ptr<replication::WalShipper> shipper;
  if (repl_log != nullptr) {
    replication::WalShipper::Options ship_options;
    ship_options.port = static_cast<int>(repl_port);
    const core::KnowledgeBase* kb = server.kb();
    shipper = std::make_unique<replication::WalShipper>(
        repl_log.get(), [kb] { return kb->epoch(); }, ship_options);
    status = shipper->Start();
    if (!status.ok()) {
      ::fprintf(stderr, "shipper start failed: %s\n",
                status.ToString().c_str());
      return 1;
    }
    ::printf("replication on 127.0.0.1:%d (log %s, %ld shards)\n",
             shipper->port(), repl_data_dir.c_str(), repl_shards);
  }

  // Background checkpoint scheduler: every interval, if the delta has
  // grown enough since the last published generation, compact it into
  // the next snapshot under the server's exclusive KB lock (every
  // read/write path takes the shared side, so the KB move-assign
  // inside Checkpoint is quiesced).
  std::atomic<bool> checkpoint_stop{false};
  std::thread checkpointer;
  if (volume != nullptr && checkpoint_interval_s > 0) {
    checkpointer = std::thread([&] {
      size_t last_checkpoint_triples = result.kb.NumTriples();
      auto next_wake = std::chrono::steady_clock::now() +
                       std::chrono::seconds(checkpoint_interval_s);
      while (!checkpoint_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (std::chrono::steady_clock::now() < next_wake) continue;
        next_wake = std::chrono::steady_clock::now() +
                    std::chrono::seconds(checkpoint_interval_s);
        size_t now_triples = result.kb.NumTriples();
        if (now_triples < last_checkpoint_triples +
                              static_cast<size_t>(checkpoint_threshold)) {
          continue;
        }
        server.WithWriteLock([&] {
          auto start = std::chrono::steady_clock::now();
          auto gen = volume->Checkpoint(&result.kb);
          double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
          if (gen.ok()) {
            last_checkpoint_triples = result.kb.NumTriples();
            ::printf("checkpointed gen %llu (%zu triples) in %.1f ms\n",
                     static_cast<unsigned long long>(*gen),
                     last_checkpoint_triples, ms);
          } else {
            ::fprintf(stderr, "checkpoint failed: %s\n",
                      gen.status().ToString().c_str());
          }
          ::fflush(stdout);
        });
      }
    });
    ::printf("checkpointing every %ld s once delta >= %ld triples\n",
             checkpoint_interval_s, checkpoint_threshold);
  }
  ::fflush(stdout);

  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  ::printf("draining (up to %ld ms; signal again to force stop)\n",
           drain_ms);
  ::fflush(stdout);
  // A second signal during the drain forces an immediate stop — Stop()
  // is idempotent and thread-safe, so the racing Drain just finishes
  // early.
  std::thread force([&server] {
    char again;
    while (::read(g_signal_pipe[0], &again, 1) < 0 && errno == EINTR) {
    }
    server.Stop();
  });
  server.Drain(static_cast<double>(drain_ms));
  checkpoint_stop.store(true, std::memory_order_release);
  if (checkpointer.joinable()) checkpointer.join();
  if (shipper != nullptr) shipper->Stop();
  if (volume != nullptr) {
    // Persist writes made since the last checkpoint; the server is
    // stopped, so the KB is quiesced.
    Status saved = volume->SaveDelta(result.kb);
    if (!saved.ok()) {
      ::fprintf(stderr, "delta save failed: %s\n", saved.ToString().c_str());
    }
  }
  // Unblock the force-stop watcher and reap it.
  OnSignal(0);
  force.join();
  ::printf("stopped\n");
  return 0;
}
