// kbforge_serve: stand up a KbServer over a harvested KB.
//
// The KB is built the same way the examples build theirs — synthesize
// a corpus, harvest it — so the binary is self-contained: no data
// files, deterministic content, ready for load generators to point at.
//
// Usage:
//   kbforge_serve [--port=N] [--workers=N] [--queue=N]
//                 [--cache-bytes=N] [--deadline-ms=MS] [--max-rows=N]
//                 [--persons=N] [--seed=N]
//
// Prints "listening on 127.0.0.1:<port>" once ready, then blocks until
// SIGINT/SIGTERM.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harvester.h"
#include "server/kb_server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool FlagValue(const char* arg, const char* name, long* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = ::strtol(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kb;

  long port = 7471, workers = 4, queue = 16;
  long cache_bytes = 8 << 20, deadline_ms = 0, max_rows = 0;
  long persons = 400, seed = 4242;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (FlagValue(argv[i], "--port", &v)) port = v;
    else if (FlagValue(argv[i], "--workers", &v)) workers = v;
    else if (FlagValue(argv[i], "--queue", &v)) queue = v;
    else if (FlagValue(argv[i], "--cache-bytes", &v)) cache_bytes = v;
    else if (FlagValue(argv[i], "--deadline-ms", &v)) deadline_ms = v;
    else if (FlagValue(argv[i], "--max-rows", &v)) max_rows = v;
    else if (FlagValue(argv[i], "--persons", &v)) persons = v;
    else if (FlagValue(argv[i], "--seed", &v)) seed = v;
    else {
      ::fprintf(stderr,
                "usage: %s [--port=N] [--workers=N] [--queue=N] "
                "[--cache-bytes=N] [--deadline-ms=MS] [--max-rows=N] "
                "[--persons=N] [--seed=N]\n",
                argv[0]);
      return 2;
    }
  }

  corpus::WorldOptions world_options;
  world_options.seed = static_cast<uint64_t>(seed);
  world_options.num_persons = static_cast<size_t>(persons);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = static_cast<uint64_t>(seed) + 1;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult result = harvester.Harvest(corpus);
  ::printf("harvested KB: %zu triples, %zu entities, %zu classes\n",
           result.kb.NumTriples(), result.kb.NumEntities(),
           result.kb.NumClasses());

  server::KbServer::Options options;
  options.port = static_cast<int>(port);
  options.num_workers = static_cast<int>(workers);
  options.queue_depth = static_cast<size_t>(queue);
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  options.default_deadline_ms = static_cast<double>(deadline_ms);
  options.default_max_rows = static_cast<size_t>(max_rows);
  server::KbServer server(&result.kb, options);
  Status status = server.Start();
  if (!status.ok()) {
    ::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ::printf("listening on 127.0.0.1:%d (%ld workers, queue %ld, cache %ld "
           "bytes)\n",
           server.port(), workers, queue, cache_bytes);
  ::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    ::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  ::printf("shutting down\n");
  server.Stop();
  return 0;
}
