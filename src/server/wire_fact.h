#ifndef KBFORGE_SERVER_WIRE_FACT_H_
#define KBFORGE_SERVER_WIRE_FACT_H_

#include <cstdint>
#include <string>

namespace kb {
namespace server {

/// A fact as it crosses the wire protocol. Exactly one of `o` /
/// `has_year` carries the object. Shared by the client (insert_facts
/// requests), the server (validated insert batches handed to the
/// replication pre-insert hook) and the replication log's fact codec.
struct WireFact {
  std::string s, p, o;
  bool has_year = false;
  int32_t year = 0;
  double confidence = 1.0;
  uint32_t support = 1;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_WIRE_FACT_H_
