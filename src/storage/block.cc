#include "storage/block.h"

#include <algorithm>
#include <cassert>

#include "util/varint.h"

namespace kb {
namespace storage {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(std::max(1, restart_interval)) {
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  counter_total_ = 0;
  last_key_.clear();
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(counter_total_ == 0 || Slice(last_key_).compare(key) < 0);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  size_t non_shared = key.size() - shared;
  PutVarint64(&buffer_, shared);
  PutVarint64(&buffer_, non_shared);
  PutVarint64(&buffer_, value.size());
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());
  last_key_.assign(key.data(), key.size());
  ++counter_;
  ++counter_total_;
}

std::string BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  return std::move(buffer_);
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

BlockIterator::BlockIterator(Slice block) {
  if (block.size() < 4) {
    corrupted_ = true;
    return;
  }
  Slice footer(block.data() + block.size() - 4, 4);
  uint32_t num_restarts = 0;
  GetFixed32(&footer, &num_restarts);
  size_t restart_bytes = static_cast<size_t>(num_restarts) * 4 + 4;
  if (num_restarts == 0 || restart_bytes > block.size()) {
    corrupted_ = true;
    return;
  }
  size_t entries_end = block.size() - restart_bytes;
  data_ = Slice(block.data(), entries_end);
  Slice restart_region(block.data() + entries_end, num_restarts * 4);
  restarts_.reserve(num_restarts);
  for (uint32_t i = 0; i < num_restarts; ++i) {
    uint32_t off = 0;
    GetFixed32(&restart_region, &off);
    if (off > entries_end) {
      corrupted_ = true;
      return;
    }
    restarts_.push_back(off);
  }
}

void BlockIterator::SeekToRestart(uint32_t index) {
  current_ = restarts_[index];
  key_.clear();
  valid_ = false;
}

bool BlockIterator::ParseNextEntry() {
  if (current_ >= data_.size()) {
    valid_ = false;
    return false;
  }
  Slice input(data_.data() + current_, data_.size() - current_);
  uint64_t shared = 0, non_shared = 0, value_len = 0;
  if (!GetVarint64(&input, &shared) || !GetVarint64(&input, &non_shared) ||
      !GetVarint64(&input, &value_len) ||
      input.size() < non_shared + value_len || shared > key_.size()) {
    corrupted_ = true;
    valid_ = false;
    return false;
  }
  key_.resize(shared);
  key_.append(input.data(), non_shared);
  value_ = Slice(input.data() + non_shared, value_len);
  current_ = static_cast<size_t>(value_.data() + value_len - data_.data());
  valid_ = true;
  return true;
}

void BlockIterator::SeekToFirst() {
  if (corrupted_ || restarts_.empty()) return;
  SeekToRestart(0);
  ParseNextEntry();
}

void BlockIterator::Seek(const Slice& target) {
  if (corrupted_ || restarts_.empty()) return;
  // Binary search over restart points: find the last restart whose key
  // is < target, then scan linearly.
  uint32_t lo = 0, hi = static_cast<uint32_t>(restarts_.size()) - 1;
  while (lo < hi) {
    uint32_t mid = (lo + hi + 1) / 2;
    SeekToRestart(mid);
    if (!ParseNextEntry()) {
      hi = mid - 1;
      continue;
    }
    if (Slice(key_).compare(target) < 0) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  SeekToRestart(lo);
  while (ParseNextEntry()) {
    if (Slice(key_).compare(target) >= 0) return;
  }
}

void BlockIterator::Next() {
  assert(valid_);
  ParseNextEntry();
}

}  // namespace storage
}  // namespace kb
