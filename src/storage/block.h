#ifndef KBFORGE_STORAGE_BLOCK_H_
#define KBFORGE_STORAGE_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace kb {
namespace storage {

/// Builds a sorted key/value block with leading-prefix compression and
/// periodic restart points, in the LevelDB/RocksDB block-based format:
///
///   entry  := varint shared | varint non_shared | varint value_len
///             | key[shared..] | value
///   block  := entry* | fixed32 restart_offset* | fixed32 num_restarts
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Finalizes and returns the block contents.
  std::string Finish();

  /// Bytes the block would occupy if finished now.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return counter_total_ == 0; }

  void Reset();

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;        // entries since last restart
  int counter_total_ = 0;  // total entries
  std::string last_key_;
};

/// Iterates over a block produced by BlockBuilder. The block bytes must
/// outlive the iterator.
class BlockIterator {
 public:
  explicit BlockIterator(Slice block);

  bool Valid() const { return valid_; }
  void SeekToFirst();
  /// Positions at the first entry with key >= target.
  void Seek(const Slice& target);
  void Next();
  Slice key() const { return Slice(key_); }
  Slice value() const { return value_; }

  /// True if the block footer was malformed.
  bool corrupted() const { return corrupted_; }

 private:
  void SeekToRestart(uint32_t index);
  bool ParseNextEntry();

  Slice data_;                 // entry region (without restart array)
  std::vector<uint32_t> restarts_;
  size_t current_ = 0;         // offset of next entry to parse
  std::string key_;
  Slice value_;
  bool valid_ = false;
  bool corrupted_ = false;
};

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_BLOCK_H_
