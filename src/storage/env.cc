#include "storage/env.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace kb {
namespace storage {

namespace fs = std::filesystem;

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("write: " + path);
  return Status::OK();
}

Status AppendStringToFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("append: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read: " + path);
  return buf.str();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("remove: " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir: " + path + ": " + ec.message());
  return Status::OK();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  std::vector<std::string> names;
  for (auto it = fs::directory_iterator(path, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::IOError("listdir: " + path + ": " + ec.message());
  return names;
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("stat: " + path + ": " + ec.message());
  return size;
}

}  // namespace storage
}  // namespace kb
