#include "storage/env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace kb {
namespace storage {

namespace fs = std::filesystem;

namespace {

std::string ErrnoMessage() { return std::strerror(errno); }

/// Heap-backed region for the portable MapReadOnly default.
class StringRegion : public MappedRegion {
 public:
  explicit StringRegion(std::string bytes) : bytes_(std::move(bytes)) {}
  const char* data() const override { return bytes_.data(); }
  size_t size() const override { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// A real mmap, unmapped on release.
class PosixMappedRegion : public MappedRegion {
 public:
  PosixMappedRegion(void* addr, size_t size) : addr_(addr), size_(size) {}
  ~PosixMappedRegion() override {
    if (addr_ != nullptr && size_ > 0) ::munmap(addr_, size_);
  }
  const char* data() const override {
    return static_cast<const char*>(addr_);
  }
  size_t size() const override { return size_; }

 private:
  void* addr_;
  size_t size_;
};

/// fd-backed appendable file so Sync can reach fsync (std::ofstream
/// exposes no file descriptor).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    if (fd_ < 0) return Status::IOError("append to closed file: " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("write " + path_ + ": " + ErrnoMessage());
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override {
    // Unbuffered writes: nothing held back from the OS.
    return fd_ < 0 ? Status::IOError("flush on closed file: " + path_)
                   : Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync on closed file: " + path_);
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("fsync " + path_ + ": " + ErrnoMessage());
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::IOError("truncate on closed file: " + path_);
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError("ftruncate " + path_ + ": " + ErrnoMessage());
    }
    if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
      return Status::IOError("lseek " + path_ + ": " + ErrnoMessage());
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError("close " + path_ + ": " + ErrnoMessage());
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return Status::IOError("open for append: " + path + ": " +
                             ErrnoMessage());
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Status WriteStringToFile(const std::string& path,
                           const std::string& data) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IOError("open for write: " + path + ": " +
                             ErrnoMessage());
    }
    PosixWritableFile file(fd, path);
    Status s = file.Append(Slice(data));
    // Full-file writes are used for SSTables, whose durability ordering
    // matters (the WAL is deleted only after the table is on disk).
    if (s.ok()) s = file.Sync();
    Status close_status = file.Close();
    return s.ok() ? close_status : s;
  }

  Status AppendStringToFile(const std::string& path,
                            const std::string& data) override {
    auto file = NewWritableFile(path);
    if (!file.ok()) return file.status();
    Status s = (*file)->Append(Slice(data));
    Status close_status = (*file)->Close();
    return s.ok() ? close_status : s;
  }

  StatusOr<std::string> ReadFileToString(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("open for read: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) return Status::IOError("read: " + path);
    return buf.str();
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("remove: " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IOError("rename: " + from + " -> " + to + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
      return Status::IOError("truncate: " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir: " + path + ": " + ec.message());
    return Status::OK();
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    uint64_t size = fs::file_size(path, ec);
    if (ec) return Status::IOError("filesize: " + path + ": " + ec.message());
    return size;
  }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (auto it = fs::directory_iterator(path, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IOError("listdir: " + path + ": " + ec.message());
    return names;
  }

  StatusOr<std::unique_ptr<MappedRegion>> MapReadOnly(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("open for mmap: " + path + ": " +
                             ErrnoMessage());
    }
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      ::close(fd);
      return Status::IOError("lseek: " + path + ": " + ErrnoMessage());
    }
    if (size == 0) {
      ::close(fd);
      return std::unique_ptr<MappedRegion>(new StringRegion(""));
    }
    void* addr = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the inode; the fd is done.
    ::close(fd);
    if (addr == MAP_FAILED) {
      return Status::IOError("mmap: " + path + ": " + ErrnoMessage());
    }
    return std::unique_ptr<MappedRegion>(
        new PosixMappedRegion(addr, static_cast<size_t>(size)));
  }
};

}  // namespace

StatusOr<std::unique_ptr<MappedRegion>> Env::MapReadOnly(
    const std::string& path) {
  StatusOr<std::string> bytes = this->ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return std::unique_ptr<MappedRegion>(
      new StringRegion(std::move(*bytes)));
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace storage
}  // namespace kb
