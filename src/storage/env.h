#ifndef KBFORGE_STORAGE_ENV_H_
#define KBFORGE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace kb {
namespace storage {

/// An append-only file handle produced by Env::NewWritableFile.
///
/// Durability contract: Append/Flush only hand bytes to the OS; data is
/// guaranteed to survive a machine crash only after a successful Sync.
/// Close is idempotent and does NOT imply Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends bytes at the end of the file. On error the file may hold
  /// an arbitrary prefix of `data` (torn write); callers that need
  /// record atomicity must truncate back (see Truncate) before retrying.
  virtual Status Append(const Slice& data) = 0;

  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Makes all appended bytes durable (fsync).
  virtual Status Sync() = 0;

  /// Truncates the file to `size` bytes and repositions the append
  /// cursor there. Used to erase a torn tail before a retried append.
  virtual Status Truncate(uint64_t size) = 0;

  /// Idempotent; safe to call multiple times or never (the destructor
  /// closes, without surfacing errors).
  virtual Status Close() = 0;
};

/// A read-only byte region pinning an open file mapping (or a heap
/// copy of one). Releasing the region unmaps/frees the bytes, so any
/// structure bound to data() must hold the region alive.
class MappedRegion {
 public:
  virtual ~MappedRegion() = default;
  virtual const char* data() const = 0;
  virtual size_t size() const = 0;
};

/// The filesystem seam under the storage engine. Every byte the engine
/// reads or writes goes through one Env, so tests can swap in a
/// FaultInjectionEnv and exercise crash/corruption paths uniformly.
///
/// Implementations must be thread-safe: the engine calls Env methods
/// concurrently from multiple stores.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide PosixEnv singleton.
  static Env* Default();

  /// Opens `path` for appending (creating it if missing).
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomic-enough full-file write: truncate + write + sync.
  virtual Status WriteStringToFile(const std::string& path,
                                   const std::string& data) = 0;
  virtual Status AppendStringToFile(const std::string& path,
                                    const std::string& data) = 0;
  virtual StatusOr<std::string> ReadFileToString(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  /// Maps `path` read-only. The base implementation routes through
  /// ReadFileToString into a heap region — deliberately, so wrappers
  /// like FaultInjectionEnv inject read faults into mappings without
  /// overriding this; PosixEnv overrides with a real mmap.
  virtual StatusOr<std::unique_ptr<MappedRegion>> MapReadOnly(
      const std::string& path);
};

/// Free-function shims over Env::Default(), kept for call sites that do
/// not need an injectable seam (tools, tests, one-shot IO).
inline Status WriteStringToFile(const std::string& path,
                                const std::string& data) {
  return Env::Default()->WriteStringToFile(path, data);
}
inline Status AppendStringToFile(const std::string& path,
                                 const std::string& data) {
  return Env::Default()->AppendStringToFile(path, data);
}
inline StatusOr<std::string> ReadFileToString(const std::string& path) {
  return Env::Default()->ReadFileToString(path);
}
inline bool FileExists(const std::string& path) {
  return Env::Default()->FileExists(path);
}
inline Status RemoveFile(const std::string& path) {
  return Env::Default()->RemoveFile(path);
}
inline Status CreateDirIfMissing(const std::string& path) {
  return Env::Default()->CreateDirIfMissing(path);
}
inline StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  return Env::Default()->ListDir(path);
}
inline StatusOr<uint64_t> FileSize(const std::string& path) {
  return Env::Default()->FileSize(path);
}

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_ENV_H_
