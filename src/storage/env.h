#ifndef KBFORGE_STORAGE_ENV_H_
#define KBFORGE_STORAGE_ENV_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace kb {
namespace storage {

/// Thin filesystem shims used by the storage engine. Kept behind one
/// header so tests can exercise failure paths uniformly.

Status WriteStringToFile(const std::string& path, const std::string& data);
Status AppendStringToFile(const std::string& path, const std::string& data);
StatusOr<std::string> ReadFileToString(const std::string& path);
bool FileExists(const std::string& path);
Status RemoveFile(const std::string& path);
Status CreateDirIfMissing(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);
StatusOr<uint64_t> FileSize(const std::string& path);

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_ENV_H_
