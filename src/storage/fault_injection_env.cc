#include "storage/fault_injection_env.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/metrics_registry.h"

namespace kb {
namespace storage {

namespace {

/// faultenv.* instruments in the default registry.
struct FaultMetrics {
  Counter& ops;
  Counter& injected_errors;
  Counter& torn_writes;
  Counter& crashes;
  Counter& corrupted_reads;
  Counter& dropped_bytes;

  static FaultMetrics& Get() {
    static FaultMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new FaultMetrics{
          r.counter("faultenv.ops"),
          r.counter("faultenv.injected_errors"),
          r.counter("faultenv.torn_writes"),
          r.counter("faultenv.crashes"),
          r.counter("faultenv.corrupted_reads"),
          r.counter("faultenv.dropped_bytes"),
      };
    }();
    return *m;
  }
};

}  // namespace

/// Wrapper declared at namespace scope so the friend declaration in
/// FaultInjectionEnv applies.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    bool crash_now = false;
    Status s = env_->ChargeOp(path_, &crash_now);
    if (!s.ok()) {
      if (crash_now && env_->options_.torn_writes && !data.empty()) {
        size_t keep = env_->TornLength(data.size());
        if (keep > 0 &&
            base_->Append(Slice(data.data(), keep)).ok()) {
          env_->NoteAppended(path_, keep);
          FaultMetrics::Get().torn_writes.Increment();
        }
      }
      return s;
    }
    Status as = base_->Append(data);
    if (as.ok()) env_->NoteAppended(path_, data.size());
    return as;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    bool crash_now = false;
    Status s = env_->ChargeOp(path_, &crash_now);
    if (!s.ok()) return s;
    if (env_->options_.sync_through) {
      Status bs = base_->Sync();
      if (!bs.ok()) return bs;
    }
    env_->NoteSynced(path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    bool crash_now = false;
    Status s = env_->ChargeOp(path_, &crash_now);
    if (!s.ok()) return s;
    Status bs = base_->Truncate(size);
    if (bs.ok()) env_->NoteTruncated(path_, size);
    return bs;
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, Options options)
    : base_(base), options_(options), rng_(options.seed) {}

uint64_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::injected_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_errors_;
}

void FaultInjectionEnv::Reset(Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  rng_ = Rng(options.seed);
  ops_ = 0;
  injected_errors_ = 0;
  crashed_ = false;
  read_corruption_.clear();
}

Status FaultInjectionEnv::DropUnsyncedData() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    FileState& state = it->second;
    if (!base_->FileExists(it->first)) {
      it = files_.erase(it);
      continue;
    }
    if (state.synced < state.size) {
      KB_RETURN_IF_ERROR(base_->TruncateFile(it->first, state.synced));
      FaultMetrics::Get().dropped_bytes.Increment(state.size - state.synced);
      state.size = state.synced;
    }
    ++it;
  }
  return Status::OK();
}

void FaultInjectionEnv::FlipBitOnRead(const std::string& path,
                                      uint64_t offset, int bit) {
  std::lock_guard<std::mutex> lock(mu_);
  read_corruption_.emplace(path, BitFlip{offset, bit});
}

void FaultInjectionEnv::ClearReadCorruption() {
  std::lock_guard<std::mutex> lock(mu_);
  read_corruption_.clear();
}

Status FaultInjectionEnv::ChargeOp(const std::string& path, bool* crash_now) {
  std::lock_guard<std::mutex> lock(mu_);
  *crash_now = false;
  FaultMetrics& metrics = FaultMetrics::Get();
  metrics.ops.Increment();
  if (crashed_) {
    ++injected_errors_;
    metrics.injected_errors.Increment();
    return Status::IOError("injected crash (env down): " + path);
  }
  ++ops_;
  if (options_.fail_at_op != 0 && ops_ >= options_.fail_at_op) {
    crashed_ = true;
    *crash_now = true;
    ++injected_errors_;
    metrics.injected_errors.Increment();
    metrics.crashes.Increment();
    return Status::IOError("injected crash at op " + std::to_string(ops_) +
                           ": " + path);
  }
  if (options_.fail_probability > 0.0 &&
      rng_.Bernoulli(options_.fail_probability)) {
    ++injected_errors_;
    metrics.injected_errors.Increment();
    return Status::IOError("injected transient failure: " + path);
  }
  return Status::OK();
}

size_t FaultInjectionEnv::TornLength(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n == 0) return 0;
  return static_cast<size_t>(rng_.Uniform(n));
}

void FaultInjectionEnv::NoteAppended(const std::string& path, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].size += n;
}

void FaultInjectionEnv::NoteSynced(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  state.synced = state.size;
}

void FaultInjectionEnv::NoteTruncated(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  state.size = size;
  if (state.synced > size) state.synced = size;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      ++injected_errors_;
      FaultMetrics::Get().injected_errors.Increment();
      return Status::IOError("injected crash (env down): " + path);
    }
  }
  auto base_file = base_->NewWritableFile(path);
  if (!base_file.ok()) return base_file.status();
  uint64_t existing = 0;
  auto size = base_->FileSize(path);
  if (size.ok()) existing = *size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& state = files_[path];
    state.size = existing;
    state.synced = existing;  // pre-existing bytes count as durable
  }
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      this, path, std::move(*base_file)));
}

Status FaultInjectionEnv::WriteStringToFile(const std::string& path,
                                            const std::string& data) {
  uint64_t delay;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay = options_.write_delay_micros;
  }
  if (delay > 0) {
    // Outside mu_: the point is to slow the *writer* down, not to
    // block every other env operation with it.
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  bool crash_now = false;
  Status s = ChargeOp(path, &crash_now);
  if (!s.ok()) {
    bool torn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      torn = options_.torn_writes;
    }
    if (crash_now && torn && !data.empty()) {
      size_t keep = TornLength(data.size());
      if (base_->WriteStringToFile(path, data.substr(0, keep)).ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        files_[path] = FileState{keep, keep};
        FaultMetrics::Get().torn_writes.Increment();
      }
    }
    return s;
  }
  KB_RETURN_IF_ERROR(base_->WriteStringToFile(path, data));
  std::lock_guard<std::mutex> lock(mu_);
  // Full-file writes sync internally, so the result counts as durable.
  files_[path] = FileState{data.size(), data.size()};
  return Status::OK();
}

Status FaultInjectionEnv::AppendStringToFile(const std::string& path,
                                             const std::string& data) {
  bool crash_now = false;
  Status s = ChargeOp(path, &crash_now);
  if (!s.ok()) {
    bool torn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      torn = options_.torn_writes;
    }
    if (crash_now && torn && !data.empty()) {
      size_t keep = TornLength(data.size());
      if (keep > 0 &&
          base_->AppendStringToFile(path, data.substr(0, keep)).ok()) {
        NoteAppended(path, keep);
        FaultMetrics::Get().torn_writes.Increment();
      }
    }
    return s;
  }
  KB_RETURN_IF_ERROR(base_->AppendStringToFile(path, data));
  NoteAppended(path, data.size());
  return Status::OK();
}

StatusOr<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  auto contents = base_->ReadFileToString(path);
  if (!contents.ok()) return contents;
  std::lock_guard<std::mutex> lock(mu_);
  auto [begin, end] = read_corruption_.equal_range(path);
  for (auto it = begin; it != end; ++it) {
    if (it->second.offset < contents->size()) {
      (*contents)[it->second.offset] ^=
          static_cast<char>(1u << (it->second.bit & 7));
      FaultMetrics::Get().corrupted_reads.Increment();
    }
  }
  return contents;
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  bool crash_now = false;
  KB_RETURN_IF_ERROR(ChargeOp(path, &crash_now));
  Status s = base_->RemoveFile(path);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(path);
  }
  return s;
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool crash_now = false;
  KB_RETURN_IF_ERROR(ChargeOp(from, &crash_now));
  Status s = base_->RenameFile(from, to);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(from);
    if (it != files_.end()) {
      files_[to] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  bool crash_now = false;
  KB_RETURN_IF_ERROR(ChargeOp(path, &crash_now));
  KB_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  NoteTruncated(path, size);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  bool crash_now = false;
  KB_RETURN_IF_ERROR(ChargeOp(path, &crash_now));
  return base_->CreateDirIfMissing(path);
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

StatusOr<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

}  // namespace storage
}  // namespace kb
