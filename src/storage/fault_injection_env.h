#ifndef KBFORGE_STORAGE_FAULT_INJECTION_ENV_H_
#define KBFORGE_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/random.h"

namespace kb {
namespace storage {

/// An Env wrapper that injects IO faults deterministically, for crash
/// and corruption testing. Thread-safe (one internal mutex).
///
/// Fault model:
///  - fail-at-Nth-op: the Nth mutating operation (1-based) fails and
///    the env enters a permanent "crashed" state in which every further
///    mutating operation returns IOError without touching disk. If the
///    crashing op carried a payload and `torn_writes` is on, a seeded
///    prefix of the payload persists first (torn write).
///  - probabilistic: before the crash point, each mutating op fails
///    with probability `fail_probability` (transient: no side effects,
///    a retry may succeed). Draws come from a seeded RNG.
///  - dropped unsynced data: the env tracks, per appendable file, how
///    many bytes were covered by the last successful Sync.
///    DropUnsyncedData() truncates every tracked file back to its
///    synced length — the state a machine crash would leave behind.
///  - read corruption: FlipBitOnRead(path, offset, bit) makes every
///    ReadFileToString of `path` return contents with that bit flipped.
///
/// Reads are never charged as ops and keep working after a crash, so a
/// test can inspect the "disk" without disturbing the op schedule.
///
/// All injected events are counted in MetricsRegistry::Default() under
/// faultenv.* (ops, injected_errors, torn_writes, crashes,
/// corrupted_reads, dropped_bytes).
class FaultInjectionEnv : public Env {
 public:
  struct Options {
    uint64_t fail_at_op = 0;        ///< 0 disables the crash point
    double fail_probability = 0.0;  ///< transient failure rate per op
    uint64_t seed = 42;             ///< RNG for probability + torn length
    bool torn_writes = true;        ///< crashing writes persist a prefix
    /// Forward WritableFile::Sync to the base env. Off by default:
    /// crash durability is simulated via DropUnsyncedData, so real
    /// fsyncs only slow the test down.
    bool sync_through = false;
    /// Sleep this long inside each WriteStringToFile before touching
    /// disk (outside the env mutex). Concurrency tests use it to hold
    /// background flushes/compactions "in flight" long enough to prove
    /// readers make progress meanwhile.
    uint64_t write_delay_micros = 0;
  };

  explicit FaultInjectionEnv(Env* base) : FaultInjectionEnv(base, Options()) {}
  FaultInjectionEnv(Env* base, Options options);

  // --- control surface -------------------------------------------------
  uint64_t op_count() const;
  bool crashed() const;
  uint64_t injected_errors() const;
  /// Re-arms the env: clears the op counter, crash state and read
  /// corruption, keeping file sync bookkeeping.
  void Reset(Options options);
  /// Truncates every tracked appendable file to its last-synced length,
  /// simulating the data loss of a machine crash. Call after the env
  /// crashed (or any time) and before recovery.
  Status DropUnsyncedData();
  /// Every subsequent read of exactly `path` sees `bit` (0-7) of the
  /// byte at `offset` flipped, if the file is that large.
  void FlipBitOnRead(const std::string& path, uint64_t offset, int bit);
  void ClearReadCorruption();

  // --- Env interface ----------------------------------------------------
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status WriteStringToFile(const std::string& path,
                           const std::string& data) override;
  Status AppendStringToFile(const std::string& path,
                            const std::string& data) override;
  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t size = 0;    ///< bytes written through this env
    uint64_t synced = 0;  ///< bytes covered by the last Sync
  };
  struct BitFlip {
    uint64_t offset;
    int bit;
  };

  /// Charges one mutating op. Returns OK to proceed; IOError when the
  /// op should fail. Sets *crash_now when this op is the crash point
  /// (payload ops then persist a torn prefix before erroring).
  Status ChargeOp(const std::string& path, bool* crash_now);
  /// Seeded torn-write length for a payload of `n` bytes: [0, n).
  size_t TornLength(size_t n);
  void NoteAppended(const std::string& path, uint64_t n);
  void NoteSynced(const std::string& path);
  void NoteTruncated(const std::string& path, uint64_t size);

  Env* const base_;
  mutable std::mutex mu_;
  Options options_;
  Rng rng_;
  uint64_t ops_ = 0;
  uint64_t injected_errors_ = 0;
  bool crashed_ = false;
  std::map<std::string, FileState> files_;
  std::multimap<std::string, BitFlip> read_corruption_;
};

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_FAULT_INJECTION_ENV_H_
