#include "storage/kv_store.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/metrics_registry.h"
#include "util/string_util.h"

namespace kb {
namespace storage {

namespace {
// Single-log layout from format v1; still replayed (first) on open so
// a store written by an older build comes up intact.
constexpr char kLegacyWalFileName[] = "wal.log";
constexpr char kWalFilePrefix[] = "wal-";
constexpr char kWalFileSuffix[] = ".log";
constexpr char kQuarantineSuffix[] = ".quarantine";

/// Storage instruments in the default registry. The gauges describe
/// the store that updated them last — with several stores open, treat
/// them as "most recent store activity", not a per-store breakdown.
struct KvMetrics {
  Counter& gets;
  Counter& puts;
  Counter& deletes;
  Counter& scans;
  Counter& flushes;
  Counter& compactions;
  Counter& bloom_skips;
  Counter& table_probes;
  Counter& wal_appends;
  Counter& wal_syncs;
  Counter& recoveries;
  Counter& wal_replayed_records;
  Counter& wal_truncated_bytes;
  Counter& tables_quarantined;
  Counter& cache_hits;
  Counter& cache_misses;
  Counter& cache_evictions;
  Histogram& get_ms;
  Histogram& put_ms;
  Histogram& flush_ms;
  Histogram& compact_ms;
  Gauge& memtable_bytes;
  Gauge& num_tables;

  static KvMetrics& Get() {
    static KvMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new KvMetrics{
          r.counter("kv.gets"),
          r.counter("kv.puts"),
          r.counter("kv.deletes"),
          r.counter("kv.scans"),
          r.counter("kv.flushes"),
          r.counter("kv.compactions"),
          r.counter("kv.bloom_skips"),
          r.counter("kv.table_probes"),
          r.counter("kv.wal_appends"),
          r.counter("kv.wal_syncs"),
          r.counter("kv.recoveries"),
          r.counter("kv.wal_replayed_records"),
          r.counter("kv.wal_truncated_bytes"),
          r.counter("kv.tables_quarantined"),
          r.counter("kv.cache_hits"),
          r.counter("kv.cache_misses"),
          r.counter("kv.cache_evictions"),
          r.histogram("kv.get_ms"),
          r.histogram("kv.put_ms"),
          r.histogram("kv.flush_ms"),
          r.histogram("kv.compact_ms"),
          r.gauge("kv.memtable_bytes"),
          r.gauge("kv.num_tables"),
      };
    }();
    return *m;
  }
};

/// SSTable values are tagged with a leading type byte so tombstones
/// survive flushes and shadow older tables.
std::string TagValue(EntryType type, const Slice& value) {
  std::string out;
  out.reserve(value.size() + 1);
  out.push_back(static_cast<char>(type));
  out.append(value.data(), value.size());
  return out;
}

bool UntagValue(const Slice& tagged, EntryType* type, Slice* value) {
  if (tagged.empty()) return false;
  *type = static_cast<EntryType>(tagged[0]);
  *value = Slice(tagged.data() + 1, tagged.size() - 1);
  return true;
}

/// One entry copied out of a memtable while pinning a Scan snapshot.
struct SnapshotEntry {
  std::string key;
  std::string value;
  EntryType type;
};

/// Copies [start, end) of `mem` into `out` (keys ascend). Bounded by
/// the memtable flush threshold, so this is a small, lock-held copy.
void MaterializeRange(const MemTable& mem, const Slice& start,
                      const Slice& end, std::vector<SnapshotEntry>* out) {
  MemTable::Iterator it = mem.NewIterator();
  if (start.empty()) {
    it.SeekToFirst();
  } else {
    it.Seek(start);
  }
  for (; it.Valid(); it.Next()) {
    if (!end.empty() && it.key().compare(end) >= 0) break;
    out->push_back(SnapshotEntry{it.key().ToString(), it.value().ToString(),
                                 it.type()});
  }
}
}  // namespace

void RecoveryReport::Merge(const RecoveryReport& other) {
  wal_records_replayed += other.wal_records_replayed;
  wal_bytes_truncated += other.wal_bytes_truncated;
  tables_loaded += other.tables_loaded;
  tables_quarantined += other.tables_quarantined;
  quarantined_files.insert(quarantined_files.end(),
                           other.quarantined_files.begin(),
                           other.quarantined_files.end());
}

ShardedLruCache::Instruments KvCacheInstruments() {
  KvMetrics& m = KvMetrics::Get();
  ShardedLruCache::Instruments out;
  out.hits = &m.cache_hits;
  out.misses = &m.cache_misses;
  out.evictions = &m.cache_evictions;
  return out;
}

KVStore::KVStore(StoreOptions options, std::string path)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      path_(std::move(path)),
      retry_(options.retry),
      mem_(new MemTable()),
      tables_(std::make_shared<TableSet>()) {
  if (options_.block_cache != nullptr) {
    cache_ = options_.block_cache;
  } else if (options_.block_cache_bytes > 0) {
    cache_ = std::make_shared<ShardedLruCache>(options_.block_cache_bytes, 16,
                                               KvCacheInstruments());
  }
  pool_ = options_.background_pool;
  if (pool_ == nullptr) {
    owned_pool_.reset(new ThreadPool(1));
    pool_ = owned_pool_.get();
  }
}

KVStore::~KVStore() {
  std::unique_lock<std::mutex> lock(mu_);
  writers_cv_.wait(lock, [&] { return writers_.empty() && !log_busy_; });
  bg_cv_.wait(lock, [&] { return pending_tasks_ == 0; });
  if (wal_open_) {
    wal_.Close();
    wal_open_ = false;
  }
}

StatusOr<std::unique_ptr<KVStore>> KVStore::Open(const StoreOptions& options,
                                                 const std::string& path) {
  return OpenInternal(options, path, /*repair=*/false, nullptr);
}

StatusOr<std::unique_ptr<KVStore>> KVStore::Recover(
    const StoreOptions& options, const std::string& path,
    RecoveryReport* report) {
  RecoveryReport local;
  auto store = OpenInternal(options, path, /*repair=*/true,
                            report != nullptr ? report : &local);
  if (store.ok()) KvMetrics::Get().recoveries.Increment();
  return store;
}

StatusOr<std::unique_ptr<KVStore>> KVStore::OpenInternal(
    const StoreOptions& options, const std::string& path, bool repair,
    RecoveryReport* report) {
  std::unique_ptr<KVStore> store(new KVStore(options, path));
  KB_RETURN_IF_ERROR(store->env_->CreateDirIfMissing(path));
  KB_RETURN_IF_ERROR(store->LoadExistingTables(repair, report));
  KB_RETURN_IF_ERROR(store->ReplayWalsIntoMemtable(repair, report));
  if (options.use_wal) {
    std::string wal_path = store->WalFileName(store->next_wal_number_++);
    KB_RETURN_IF_ERROR(WalWriter::Open(store->env_, wal_path, &store->wal_));
    store->wal_open_ = true;
    store->mem_wal_paths_.push_back(wal_path);
  }
  return store;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06llu.sst",
           static_cast<unsigned long long>(number));
  return path_ + "/" + buf;
}

std::string KVStore::WalFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%s%06llu%s", kWalFilePrefix,
           static_cast<unsigned long long>(number), kWalFileSuffix);
  return path_ + "/" + buf;
}

Status KVStore::LoadExistingTables(bool repair, RecoveryReport* report) {
  auto names = env_->ListDir(path_);
  if (!names.ok()) return Status::OK();  // fresh directory
  std::vector<uint64_t> numbers;
  for (const std::string& name : *names) {
    if (EndsWith(name, ".sst")) {
      long long n = 0;
      if (ParseInt64(name.substr(0, name.size() - 4), &n) && n > 0) {
        numbers.push_back(static_cast<uint64_t>(n));
      }
    }
  }
  std::sort(numbers.begin(), numbers.end());
  TableSet loaded;
  for (uint64_t n : numbers) {
    const std::string file_name = TableFileName(n);
    // A table is healthy when it reads, parses and every block passes
    // its checksum. In repair mode anything less is quarantined (the
    // file is renamed, never deleted — an operator may still salvage
    // intact blocks); in strict mode it fails the open.
    Status table_status = Status::OK();
    auto contents = env_->ReadFileToString(file_name);
    if (!contents.ok()) {
      table_status = contents.status();
    } else {
      auto table = TableReader::Open(std::move(*contents), cache_);
      if (!table.ok()) {
        table_status = table.status();
      } else {
        if (repair) table_status = (*table)->VerifyAllBlocks();
        if (table_status.ok()) {
          loaded.push_back(TableEntry{std::move(*table), n});
        }
      }
    }
    next_table_number_ = std::max(next_table_number_, n + 1);
    if (table_status.ok()) {
      if (report != nullptr) ++report->tables_loaded;
      continue;
    }
    if (!repair) return table_status;
    std::string quarantined = file_name + kQuarantineSuffix;
    Status rename_status = env_->RenameFile(file_name, quarantined);
    if (!rename_status.ok()) {
      KB_LOG(Warning) << "quarantine failed for " << file_name << ": "
                      << rename_status;
      return rename_status;
    }
    KB_LOG(Warning) << "quarantined corrupt table " << file_name << ": "
                    << table_status;
    KvMetrics::Get().tables_quarantined.Increment();
    if (report != nullptr) {
      ++report->tables_quarantined;
      report->quarantined_files.push_back(quarantined);
    }
  }
  tables_ = std::make_shared<TableSet>(std::move(loaded));
  return Status::OK();
}

Status KVStore::ReplayWalsIntoMemtable(bool repair, RecoveryReport* report) {
  // Logs are numbered per memtable generation; replay strictly in that
  // order (the legacy single log, if present, predates them all).
  std::vector<std::string> wal_files;
  std::string legacy = path_ + "/" + kLegacyWalFileName;
  if (env_->FileExists(legacy)) wal_files.push_back(legacy);
  auto names = env_->ListDir(path_);
  if (names.ok()) {
    std::vector<uint64_t> numbers;
    const size_t fixed =
        std::strlen(kWalFilePrefix) + std::strlen(kWalFileSuffix);
    for (const std::string& name : *names) {
      if (name.size() > fixed && name.rfind(kWalFilePrefix, 0) == 0 &&
          EndsWith(name, kWalFileSuffix)) {
        long long n = 0;
        if (ParseInt64(name.substr(std::strlen(kWalFilePrefix),
                                   name.size() - fixed),
                       &n) &&
            n > 0) {
          numbers.push_back(static_cast<uint64_t>(n));
        }
      }
    }
    std::sort(numbers.begin(), numbers.end());
    for (uint64_t n : numbers) {
      wal_files.push_back(WalFileName(n));
      next_wal_number_ = std::max(next_wal_number_, n + 1);
    }
  }
  auto apply = [this](EntryType type, const Slice& key, const Slice& value) {
    if (type == EntryType::kPut) {
      mem_->Put(key, value);
    } else {
      mem_->Delete(key);
    }
  };
  auto quarantine = [&](const std::string& wal_path,
                        const Status& why) -> Status {
    std::string quarantined = wal_path + kQuarantineSuffix;
    KB_RETURN_IF_ERROR(env_->RenameFile(wal_path, quarantined));
    KB_LOG(Warning) << "quarantined wal " << wal_path << ": " << why;
    if (report != nullptr) {
      ++report->tables_quarantined;
      report->quarantined_files.push_back(quarantined);
    }
    return Status::OK();
  };
  bool torn_seen = false;
  for (const std::string& wal_path : wal_files) {
    if (torn_seen) {
      // Records here postdate a torn/unreadable log; applying them
      // would reorder history. Strict opens refuse; repair sets the
      // log aside with the rest of the damage.
      Status why = Status::Corruption("wal follows a torn log");
      if (!repair) return why;
      KB_RETURN_IF_ERROR(quarantine(wal_path, why));
      continue;
    }
    WalReplayInfo info;
    Status s = ReplayWal(env_, wal_path, apply, &info);
    if (!s.ok()) {
      if (!repair) return s;
      // The log cannot be read at all; set it aside so the store can
      // still come up with what the tables hold.
      KB_RETURN_IF_ERROR(quarantine(wal_path, s));
      torn_seen = true;
      continue;
    }
    if (info.truncated_bytes > 0) {
      // Drop the torn tail so future appends land on a record boundary
      // (otherwise replay would stop at the tear and lose them).
      KB_RETURN_IF_ERROR(env_->TruncateFile(wal_path, info.valid_bytes));
      KvMetrics::Get().wal_truncated_bytes.Increment(info.truncated_bytes);
      torn_seen = true;  // only the newest log may carry a tear
    }
    KvMetrics::Get().wal_replayed_records.Increment(info.records);
    if (report != nullptr) {
      report->wal_records_replayed += info.records;
      report->wal_bytes_truncated += info.truncated_bytes;
    }
    mem_wal_paths_.push_back(wal_path);
  }
  return Status::OK();
}

Status KVStore::WriteInternal(EntryType type, const Slice& key,
                              const Slice& value) {
  Writer w;
  w.type = type;
  w.key = key;
  w.value = value;
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) writers_cv_.wait(lock);
  if (w.done) {
    // An earlier leader committed (or failed) this write in its batch.
    return w.status;
  }
  // This writer leads: commit every currently queued write as one batch.
  std::vector<Writer*> batch(writers_.begin(), writers_.end());
  Status ws;
  if (options_.use_wal && !wal_open_) {
    // A failed flush left the store without a log; accepting writes
    // here would silently drop durability. Fail-stop instead.
    ws = Status::IOError("wal unavailable after failed flush: " + path_);
  } else if (!bg_error_.ok()) {
    ws = bg_error_;
  }
  if (ws.ok() && wal_open_) {
    KvMetrics& metrics = KvMetrics::Get();
    // WAL IO runs with the lock released so reads and background table
    // writes proceed; log_busy_ keeps rotation (Flush) and other
    // leaders off wal_ meanwhile. Later writers queue behind the batch.
    log_busy_ = true;
    lock.unlock();
    for (Writer* wr : batch) {
      // WalWriter::Append self-heals a torn tail before each attempt,
      // so retrying after a transient failure cannot corrupt the log.
      ws = retry_.Run(
          [&] { return wal_.Append(wr->type, wr->key, wr->value); });
      if (!ws.ok()) break;
      metrics.wal_appends.Increment();
    }
    if (ws.ok() && options_.sync_wal) {
      // Group commit: one fsync makes the whole batch durable.
      ws = retry_.Run([&] { return wal_.Sync(); });
      if (ws.ok()) metrics.wal_syncs.Increment();
    }
    lock.lock();
    log_busy_ = false;
  }
  if (ws.ok()) {
    for (Writer* wr : batch) {
      if (wr->type == EntryType::kPut) {
        mem_->Put(wr->key, wr->value);
      } else {
        mem_->Delete(wr->key);
      }
    }
    KvMetrics::Get().memtable_bytes.Set(
        static_cast<int64_t>(mem_->ApproximateMemoryUsage()));
  }
  for (Writer* wr : batch) {
    wr->status = ws;
    wr->done = true;
  }
  writers_.erase(writers_.begin(),
                 writers_.begin() + static_cast<long>(batch.size()));
  writers_cv_.notify_all();
  if (ws.ok()) {
    Status trigger = MaybeScheduleFlushLocked(lock);
    if (!trigger.ok()) return trigger;
  }
  return ws;
}

Status KVStore::Put(const Slice& key, const Slice& value) {
  KvMetrics& metrics = KvMetrics::Get();
  metrics.puts.Increment();
  ScopedTimer timer(metrics.put_ms);
  return WriteInternal(EntryType::kPut, key, value);
}

Status KVStore::Delete(const Slice& key) {
  KvMetrics::Get().deletes.Increment();
  return WriteInternal(EntryType::kDelete, key, Slice());
}

Status KVStore::Get(const Slice& key, std::string* value) {
  KvMetrics& metrics = KvMetrics::Get();
  metrics.gets.Increment();
  ScopedTimer timer(metrics.get_ms);
  std::shared_ptr<const TableSet> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.gets;
    EntryType type;
    if (mem_->Get(key, value, &type)) {
      if (type == EntryType::kDelete) return Status::NotFound("tombstone");
      return Status::OK();
    }
    if (imm_ != nullptr && imm_->Get(key, value, &type)) {
      if (type == EntryType::kDelete) return Status::NotFound("tombstone");
      return Status::OK();
    }
    tables = tables_;
  }
  // Table probes run against the pinned version with no lock held; a
  // concurrent flush/compaction publishes a new version without
  // disturbing this read.
  uint64_t bloom_skips = 0;
  uint64_t table_probes = 0;
  Status result = Status::NotFound("key absent");
  for (auto it = tables->rbegin(); it != tables->rend(); ++it) {
    if (!it->table->MayContain(key)) {
      ++bloom_skips;
      metrics.bloom_skips.Increment();
      continue;
    }
    ++table_probes;
    metrics.table_probes.Increment();
    std::string tagged;
    Status s = it->table->Get(key, &tagged);
    if (s.IsNotFound()) continue;
    if (!s.ok()) {
      result = s;
      break;
    }
    EntryType t;
    Slice v;
    if (!UntagValue(Slice(tagged), &t, &v)) {
      result = Status::Corruption("untagged table value");
      break;
    }
    if (t == EntryType::kDelete) {
      result = Status::NotFound("tombstone");
    } else {
      *value = v.ToString();
      result = Status::OK();
    }
    break;
  }
  if (bloom_skips != 0 || table_probes != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bloom_skips += bloom_skips;
    stats_.table_probes += table_probes;
  }
  return result;
}

Status KVStore::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // Both conditions must hold in the *same* locked region before the
  // log may be sealed: no leader mid-append (it owns wal_ with the
  // lock released) and no flush already in flight. Each wait drops the
  // lock, so re-check from the top after every wakeup.
  for (;;) {
    KB_RETURN_IF_ERROR(bg_error_);
    if (log_busy_) {
      writers_cv_.wait(lock);
    } else if (imm_ != nullptr) {
      bg_cv_.wait(lock);
    } else {
      break;
    }
  }
  if (!mem_->empty()) {
    KB_RETURN_IF_ERROR(BeginFlushLocked(lock));
  }
  bg_cv_.wait(lock, [&] { return imm_ == nullptr || !bg_error_.ok(); });
  return bg_error_;
}

Status KVStore::MaybeScheduleFlushLocked(std::unique_lock<std::mutex>& lock) {
  if (mem_->ApproximateMemoryUsage() < options_.memtable_flush_bytes) {
    return Status::OK();
  }
  // One flush at a time; mem_ keeps absorbing writes while imm_ is in
  // flight and the next threshold crossing re-triggers.
  if (imm_ != nullptr || !bg_error_.ok()) return Status::OK();
  return BeginFlushLocked(lock);
}

Status KVStore::BeginFlushLocked(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // held throughout; rotation is short, table IO is not ours
  if (mem_->empty()) return Status::OK();
  if (options_.use_wal && wal_open_) {
    KvMetrics& metrics = KvMetrics::Get();
    if (!options_.sync_wal) {
      // Seal the log durably: its records must be on disk before the
      // table that replaces it exists, so a machine crash can only
      // ever lose the *newest* log's unsynced tail (recovery stays
      // prefix-closed across log generations).
      Status s = retry_.Run([&] { return wal_.Sync(); });
      if (!s.ok()) return s;
      metrics.wal_syncs.Increment();
    }
    Status close = wal_.Close();
    if (!close.ok()) {
      wal_open_ = false;  // fail-stop; data stays in mem_ + closed log
      return close;
    }
    wal_open_ = false;
    std::string next = WalFileName(next_wal_number_++);
    KB_RETURN_IF_ERROR(WalWriter::Open(env_, next, &wal_));
    wal_open_ = true;
    imm_wal_paths_ = std::move(mem_wal_paths_);
    mem_wal_paths_.clear();
    mem_wal_paths_.push_back(next);
  } else {
    imm_wal_paths_ = std::move(mem_wal_paths_);
    mem_wal_paths_.clear();
  }
  imm_ = std::move(mem_);
  mem_ = std::make_shared<MemTable>();
  KvMetrics::Get().memtable_bytes.Set(0);
  ++pending_tasks_;
  pool_->Submit([this] { BackgroundFlush(); });
  return Status::OK();
}

void KVStore::BackgroundFlush() {
  KvMetrics& metrics = KvMetrics::Get();
  ScopedTimer timer(metrics.flush_ms);
  std::shared_ptr<MemTable> imm;
  uint64_t number = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    imm = imm_;
    number = next_table_number_++;
  }
  // Build and write the table with no lock held: imm is immutable (the
  // swap happened under the lock) and concurrent readers still see it
  // via imm_.
  Status s;
  std::shared_ptr<TableReader> table;
  if (imm != nullptr && !imm->empty()) {
    TableBuilder builder(options_.table);
    MemTable::Iterator it = imm->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      builder.Add(it.key(), Slice(TagValue(it.type(), it.value())));
    }
    std::string contents = builder.Finish();
    // The table write syncs internally; the WAL files may only be
    // deleted after the table is durably on disk.
    s = retry_.Run([&] {
      return env_->WriteStringToFile(TableFileName(number), contents);
    });
    if (s.ok()) {
      auto opened = TableReader::Open(std::move(contents), cache_);
      if (opened.ok()) {
        table = std::move(*opened);
      } else {
        s = opened.status();
      }
    }
  }
  std::vector<std::string> stale_wals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (s.ok()) {
      if (table != nullptr) {
        auto next = std::make_shared<TableSet>(*tables_);
        next->push_back(TableEntry{std::move(table), number});
        tables_ = std::move(next);
        ++stats_.flushes;
        metrics.flushes.Increment();
        metrics.num_tables.Set(static_cast<int64_t>(tables_->size()));
      }
      imm_.reset();
      stale_wals = std::move(imm_wal_paths_);
      imm_wal_paths_.clear();
    } else {
      // Keep imm_ resident (reads still serve it) and its logs on disk
      // (recovery still replays them); fail-stop future writes.
      bg_error_ = s;
    }
  }
  // Delete covered logs oldest-first outside the lock. Fail-stop on
  // error: deleting a newer log while an older one lingers would break
  // prefix-ordered replay on the next open. In retain_wals mode the
  // logs stay: they are the replication history a shipper streams.
  Status rs;
  if (!options_.retain_wals) {
    for (const std::string& wal_path : stale_wals) {
      rs = retry_.Run([&] { return env_->RemoveFile(wal_path); });
      if (!rs.ok()) break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!rs.ok() && bg_error_.ok()) {
      KB_LOG(Warning) << "stale wal cleanup: " << rs;
      bg_error_ = rs;
    }
    if (s.ok() && rs.ok()) MaybeScheduleCompactionLocked();
    --pending_tasks_;
    bg_cv_.notify_all();
  }
}

void KVStore::MaybeScheduleCompactionLocked() {
  if (compaction_running_ || !bg_error_.ok()) return;
  if (static_cast<int>(tables_->size()) < options_.l0_compaction_trigger) {
    return;
  }
  compaction_running_ = true;
  ++pending_tasks_;
  pool_->Submit([this] { BackgroundCompaction(); });
}

void KVStore::BackgroundCompaction() {
  Status s = CompactOnce();
  std::lock_guard<std::mutex> lock(mu_);
  compaction_running_ = false;
  if (!s.ok()) {
    if (bg_error_.ok()) {
      KB_LOG(Warning) << "background compaction: " << s;
      bg_error_ = s;
    }
  } else {
    // Flushes may have stacked past the trigger again meanwhile.
    MaybeScheduleCompactionLocked();
  }
  --pending_tasks_;
  bg_cv_.notify_all();
}

Status KVStore::CompactOnce() {
  std::shared_ptr<const TableSet> input;
  uint64_t number = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    input = tables_;
    if (input->size() <= 1) return Status::OK();
    number = next_table_number_++;
  }
  KvMetrics& metrics = KvMetrics::Get();
  ScopedTimer timer(metrics.compact_ms);
  TableBuilder builder(options_.table);
  // Merge newest-wins across the pinned tables, keeping only live
  // entries. Tables flushed while we merge are *newer* than every
  // input, so dropping tombstones here stays correct: they still
  // shadow the merged output from above.
  std::vector<TableReader::Iterator> iters;
  iters.reserve(input->size());
  for (const TableEntry& entry : *input) {
    iters.push_back(entry.table->NewIterator());
    iters.back().SeekToFirst();
  }
  std::string last_key;
  bool have_last = false;
  while (true) {
    int best = -1;
    for (size_t i = 0; i < iters.size(); ++i) {
      if (!iters[i].Valid()) {
        if (iters[i].corrupted()) {
          return Status::Corruption("compaction hit corrupt table block");
        }
        continue;
      }
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = iters[i].key().compare(iters[best].key());
      // Later tables are newer; prefer them on equal keys (i ascends).
      if (cmp <= 0) best = static_cast<int>(i);
    }
    if (best < 0) break;
    Slice key = iters[best].key();
    bool duplicate = have_last && key == Slice(last_key);
    if (!duplicate) {
      EntryType type = EntryType::kPut;
      Slice value;
      UntagValue(iters[best].value(), &type, &value);
      last_key.assign(key.data(), key.size());
      have_last = true;
      if (type == EntryType::kPut) {
        // Bottom-most merge: tombstones and shadowed versions drop out.
        builder.Add(key, Slice(TagValue(EntryType::kPut, value)));
      }
    }
    iters[best].Next();
  }
  std::string contents = builder.Finish();
  KB_RETURN_IF_ERROR(retry_.Run([&] {
    return env_->WriteStringToFile(TableFileName(number), contents);
  }));
  auto merged = TableReader::Open(std::move(contents), cache_);
  if (!merged.ok()) return merged.status();
  std::vector<uint64_t> old_numbers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // tables_ is the pinned input plus tables flushed since (flushes
    // only append, and compaction_running_ keeps other compactions
    // out). The merged table replaces the input prefix and stays
    // oldest; later flushes keep their newer positions.
    auto next = std::make_shared<TableSet>();
    next->push_back(TableEntry{std::move(*merged), number});
    for (size_t i = input->size(); i < tables_->size(); ++i) {
      next->push_back((*tables_)[i]);
    }
    for (const TableEntry& entry : *input) {
      old_numbers.push_back(entry.number);
    }
    tables_ = std::move(next);
    ++stats_.compactions;
    metrics.compactions.Increment();
    metrics.num_tables.Set(static_cast<int64_t>(tables_->size()));
  }
  // Remove the old files only after the new table is durable. Readers
  // still holding the old version are unaffected (contents live in
  // memory).
  for (uint64_t old_number : old_numbers) {
    Status s = env_->RemoveFile(TableFileName(old_number));
    if (!s.ok()) {
      KB_LOG(Warning) << "compaction cleanup: " << s;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<WalGenerationInfo>> KVStore::ListWalGenerations() const {
  auto names = env_->ListDir(path_);
  if (!names.ok()) return names.status();
  const size_t fixed =
      std::strlen(kWalFilePrefix) + std::strlen(kWalFileSuffix);
  std::vector<WalGenerationInfo> out;
  for (const std::string& name : *names) {
    if (name.size() <= fixed || name.rfind(kWalFilePrefix, 0) != 0 ||
        !EndsWith(name, kWalFileSuffix)) {
      continue;
    }
    long long n = 0;
    if (!ParseInt64(
            name.substr(std::strlen(kWalFilePrefix), name.size() - fixed),
            &n) ||
        n <= 0) {
      continue;
    }
    WalGenerationInfo info;
    info.number = static_cast<uint64_t>(n);
    info.path = path_ + "/" + name;
    auto size = env_->FileSize(info.path);
    // A log deleted between listing and stat (non-retained flush) is
    // simply not part of this manifest.
    if (!size.ok()) continue;
    info.size = *size;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const WalGenerationInfo& a, const WalGenerationInfo& b) {
              return a.number < b.number;
            });
  return out;
}

Status KVStore::CompactAll() {
  KB_RETURN_IF_ERROR(Flush());
  std::unique_lock<std::mutex> lock(mu_);
  bg_cv_.wait(lock, [&] { return !compaction_running_; });
  KB_RETURN_IF_ERROR(bg_error_);
  if (tables_->size() <= 1) return Status::OK();
  // Claim the compaction slot and merge on the calling thread; reads
  // and writes continue against the published versions meanwhile.
  compaction_running_ = true;
  lock.unlock();
  Status s = CompactOnce();
  lock.lock();
  compaction_running_ = false;
  bg_cv_.notify_all();
  return s;
}

namespace {
/// One source in the k-way merge: a materialized memtable snapshot or
/// a pinned table. Higher `priority` shadows lower on equal keys.
struct MergeSource {
  const std::vector<SnapshotEntry>* vec = nullptr;
  size_t pos = 0;
  std::optional<TableReader::Iterator> table_iter;
  int priority;

  bool Valid() const {
    return vec != nullptr ? pos < vec->size() : table_iter->Valid();
  }
  bool corrupted() const {
    return vec == nullptr && table_iter->corrupted();
  }
  Slice key() const {
    return vec != nullptr ? Slice((*vec)[pos].key) : table_iter->key();
  }
  void Next() {
    if (vec != nullptr) {
      ++pos;
    } else {
      table_iter->Next();
    }
  }
  /// Entry type and untagged value for the current position.
  void Current(EntryType* type, Slice* value) const {
    if (vec != nullptr) {
      *type = (*vec)[pos].type;
      *value = Slice((*vec)[pos].value);
    } else {
      Slice tagged = table_iter->value();
      UntagValue(tagged, type, value);
    }
  }
};
}  // namespace

Status KVStore::Scan(
    const Slice& start, const Slice& end,
    const std::function<bool(const Slice&, const Slice&)>& fn) {
  KvMetrics::Get().scans.Increment();
  // Pin a snapshot under the lock — bounded copies of the memtables
  // plus the current table-set version — then merge and visit with the
  // lock released, so the visitor may block or reenter the store.
  std::vector<SnapshotEntry> mem_entries;
  std::vector<SnapshotEntry> imm_entries;
  std::shared_ptr<const TableSet> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MaterializeRange(*mem_, start, end, &mem_entries);
    if (imm_ != nullptr) MaterializeRange(*imm_, start, end, &imm_entries);
    tables = tables_;
  }
  std::vector<MergeSource> sources;
  {
    MergeSource src;
    src.vec = &mem_entries;
    src.priority = static_cast<int>(tables->size()) + 1;
    sources.push_back(std::move(src));
  }
  {
    MergeSource src;
    src.vec = &imm_entries;
    src.priority = static_cast<int>(tables->size());
    sources.push_back(std::move(src));
  }
  for (size_t i = 0; i < tables->size(); ++i) {
    MergeSource src;
    src.table_iter.emplace((*tables)[i].table->NewIterator());
    src.priority = static_cast<int>(i);
    if (start.empty()) {
      src.table_iter->SeekToFirst();
    } else {
      src.table_iter->Seek(start);
    }
    sources.push_back(std::move(src));
  }
  std::string last_emitted_key;
  bool have_last = false;
  while (true) {
    // Pick the smallest key; among equals the highest priority.
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].Valid()) {
        if (sources[i].corrupted()) {
          return Status::Corruption("scan hit corrupt table block");
        }
        continue;
      }
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = sources[i].key().compare(sources[best].key());
      if (cmp < 0 ||
          (cmp == 0 && sources[i].priority > sources[best].priority)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return Status::OK();
    Slice key = sources[best].key();
    if (!end.empty() && key.compare(end) >= 0) return Status::OK();
    bool duplicate = have_last && key == Slice(last_emitted_key);
    if (!duplicate) {
      EntryType type = EntryType::kPut;
      Slice value;
      sources[best].Current(&type, &value);
      last_emitted_key.assign(key.data(), key.size());
      have_last = true;
      if (type == EntryType::kPut) {
        if (!fn(Slice(last_emitted_key), value)) return Status::OK();
      }
    }
    sources[best].Next();
  }
}

}  // namespace storage
}  // namespace kb
