#include "storage/kv_store.h"

#include <algorithm>
#include <optional>

#include "storage/env.h"
#include "util/logging.h"
#include "util/metrics_registry.h"
#include "util/string_util.h"

namespace kb {
namespace storage {

namespace {
constexpr char kWalFileName[] = "wal.log";

/// Storage instruments in the default registry. The gauges describe
/// the store that updated them last — with several stores open, treat
/// them as "most recent store activity", not a per-store breakdown.
struct KvMetrics {
  Counter& gets;
  Counter& puts;
  Counter& deletes;
  Counter& scans;
  Counter& flushes;
  Counter& compactions;
  Counter& bloom_skips;
  Counter& table_probes;
  Counter& wal_appends;
  Histogram& get_ms;
  Histogram& put_ms;
  Histogram& flush_ms;
  Histogram& compact_ms;
  Gauge& memtable_bytes;
  Gauge& num_tables;

  static KvMetrics& Get() {
    static KvMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new KvMetrics{
          r.counter("kv.gets"),
          r.counter("kv.puts"),
          r.counter("kv.deletes"),
          r.counter("kv.scans"),
          r.counter("kv.flushes"),
          r.counter("kv.compactions"),
          r.counter("kv.bloom_skips"),
          r.counter("kv.table_probes"),
          r.counter("kv.wal_appends"),
          r.histogram("kv.get_ms"),
          r.histogram("kv.put_ms"),
          r.histogram("kv.flush_ms"),
          r.histogram("kv.compact_ms"),
          r.gauge("kv.memtable_bytes"),
          r.gauge("kv.num_tables"),
      };
    }();
    return *m;
  }
};

/// SSTable values are tagged with a leading type byte so tombstones
/// survive flushes and shadow older tables.
std::string TagValue(EntryType type, const Slice& value) {
  std::string out;
  out.reserve(value.size() + 1);
  out.push_back(static_cast<char>(type));
  out.append(value.data(), value.size());
  return out;
}

bool UntagValue(const Slice& tagged, EntryType* type, Slice* value) {
  if (tagged.empty()) return false;
  *type = static_cast<EntryType>(tagged[0]);
  *value = Slice(tagged.data() + 1, tagged.size() - 1);
  return true;
}
}  // namespace

KVStore::KVStore(StoreOptions options, std::string path)
    : options_(options), path_(std::move(path)), mem_(new MemTable()) {}

KVStore::~KVStore() {
  if (wal_open_) wal_.Close();
}

StatusOr<std::unique_ptr<KVStore>> KVStore::Open(const StoreOptions& options,
                                                 const std::string& path) {
  KB_RETURN_IF_ERROR(CreateDirIfMissing(path));
  std::unique_ptr<KVStore> store(new KVStore(options, path));
  KB_RETURN_IF_ERROR(store->LoadExistingTables());
  KB_RETURN_IF_ERROR(store->ReplayWalIntoMemtable());
  if (options.use_wal) {
    KB_RETURN_IF_ERROR(WalWriter::Open(path + "/" + kWalFileName,
                                       &store->wal_));
    store->wal_open_ = true;
  }
  return store;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06llu.sst",
           static_cast<unsigned long long>(number));
  return path_ + "/" + buf;
}

Status KVStore::LoadExistingTables() {
  auto names = ListDir(path_);
  if (!names.ok()) return Status::OK();  // fresh directory
  std::vector<uint64_t> numbers;
  for (const std::string& name : *names) {
    if (EndsWith(name, ".sst")) {
      long long n = 0;
      if (ParseInt64(name.substr(0, name.size() - 4), &n) && n > 0) {
        numbers.push_back(static_cast<uint64_t>(n));
      }
    }
  }
  std::sort(numbers.begin(), numbers.end());
  for (uint64_t n : numbers) {
    auto contents = ReadFileToString(TableFileName(n));
    if (!contents.ok()) return contents.status();
    auto table = TableReader::Open(std::move(*contents));
    if (!table.ok()) return table.status();
    tables_.push_back(std::move(*table));
    table_numbers_.push_back(n);
    next_table_number_ = std::max(next_table_number_, n + 1);
  }
  return Status::OK();
}

Status KVStore::ReplayWalIntoMemtable() {
  std::string wal_path = path_ + "/" + kWalFileName;
  if (!FileExists(wal_path)) return Status::OK();
  return ReplayWal(wal_path, [this](EntryType type, const Slice& key,
                                    const Slice& value) {
    if (type == EntryType::kPut) {
      mem_->Put(key, value);
    } else {
      mem_->Delete(key);
    }
  });
}

Status KVStore::WriteInternal(EntryType type, const Slice& key,
                              const Slice& value) {
  if (wal_open_) {
    KB_RETURN_IF_ERROR(wal_.Append(type, key, value));
    KvMetrics::Get().wal_appends.Increment();
  }
  if (type == EntryType::kPut) {
    mem_->Put(key, value);
  } else {
    mem_->Delete(key);
  }
  KvMetrics::Get().memtable_bytes.Set(
      static_cast<int64_t>(mem_->ApproximateMemoryUsage()));
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_flush_bytes) {
    KB_RETURN_IF_ERROR(FlushLocked());
  }
  return Status::OK();
}

Status KVStore::Put(const Slice& key, const Slice& value) {
  KvMetrics& metrics = KvMetrics::Get();
  metrics.puts.Increment();
  ScopedTimer timer(metrics.put_ms);
  std::lock_guard<std::mutex> lock(mu_);
  return WriteInternal(EntryType::kPut, key, value);
}

Status KVStore::Delete(const Slice& key) {
  KvMetrics::Get().deletes.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  return WriteInternal(EntryType::kDelete, key, Slice());
}

Status KVStore::Get(const Slice& key, std::string* value) {
  KvMetrics& metrics = KvMetrics::Get();
  metrics.gets.Increment();
  ScopedTimer timer(metrics.get_ms);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  EntryType type;
  if (mem_->Get(key, value, &type)) {
    if (type == EntryType::kDelete) return Status::NotFound("tombstone");
    return Status::OK();
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    if (!(*it)->MayContain(key)) {
      ++stats_.bloom_skips;
      metrics.bloom_skips.Increment();
      continue;
    }
    ++stats_.table_probes;
    metrics.table_probes.Increment();
    std::string tagged;
    Status s = (*it)->Get(key, &tagged);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    EntryType t;
    Slice v;
    if (!UntagValue(Slice(tagged), &t, &v)) {
      return Status::Corruption("untagged table value");
    }
    if (t == EntryType::kDelete) return Status::NotFound("tombstone");
    *value = v.ToString();
    return Status::OK();
  }
  return Status::NotFound("key absent");
}

Status KVStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status KVStore::FlushLocked() {
  if (mem_->empty()) return Status::OK();
  KvMetrics& metrics = KvMetrics::Get();
  ScopedTimer timer(metrics.flush_ms);
  TableBuilder builder(options_.table);
  MemTable::Iterator it = mem_->NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    builder.Add(it.key(), Slice(TagValue(it.type(), it.value())));
  }
  uint64_t number = next_table_number_++;
  std::string contents = builder.Finish();
  KB_RETURN_IF_ERROR(WriteStringToFile(TableFileName(number), contents));
  auto table = TableReader::Open(std::move(contents));
  if (!table.ok()) return table.status();
  tables_.push_back(std::move(*table));
  table_numbers_.push_back(number);
  mem_.reset(new MemTable());
  if (wal_open_) {
    wal_.Close();
    wal_open_ = false;
    std::string wal_path = path_ + "/" + kWalFileName;
    if (FileExists(wal_path)) {
      KB_RETURN_IF_ERROR(RemoveFile(wal_path));
    }
    KB_RETURN_IF_ERROR(WalWriter::Open(wal_path, &wal_));
    wal_open_ = true;
  }
  ++stats_.flushes;
  metrics.flushes.Increment();
  metrics.memtable_bytes.Set(0);
  metrics.num_tables.Set(static_cast<int64_t>(tables_.size()));
  return MaybeScheduleCompaction();
}

Status KVStore::MaybeScheduleCompaction() {
  if (static_cast<int>(tables_.size()) >= options_.l0_compaction_trigger) {
    return CompactAllLocked();
  }
  return Status::OK();
}

namespace {
/// One source in the k-way merge: either the memtable or a table.
/// Higher `priority` shadows lower on equal keys.
struct MergeSource {
  std::optional<MemTable::Iterator> mem_iter;
  std::optional<TableReader::Iterator> table_iter;
  int priority;

  bool Valid() const {
    return mem_iter.has_value() ? mem_iter->Valid() : table_iter->Valid();
  }
  Slice key() const {
    return mem_iter.has_value() ? mem_iter->key() : table_iter->key();
  }
  void Next() {
    if (mem_iter.has_value()) {
      mem_iter->Next();
    } else {
      table_iter->Next();
    }
  }
  /// Entry type and untagged value for the current position.
  void Current(EntryType* type, Slice* value) const {
    if (mem_iter.has_value()) {
      *type = mem_iter->type();
      *value = mem_iter->value();
    } else {
      Slice tagged = table_iter->value();
      UntagValue(tagged, type, value);
    }
  }
};
}  // namespace

void KVStore::Scan(const Slice& start, const Slice& end,
                   const std::function<bool(const Slice&, const Slice&)>& fn) {
  KvMetrics::Get().scans.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MergeSource> sources;
  {
    MergeSource src;
    src.mem_iter.emplace(mem_->NewIterator());
    src.priority = static_cast<int>(tables_.size());
    if (start.empty()) {
      src.mem_iter->SeekToFirst();
    } else {
      src.mem_iter->Seek(start);
    }
    sources.push_back(std::move(src));
  }
  for (size_t i = 0; i < tables_.size(); ++i) {
    MergeSource src;
    src.table_iter.emplace(tables_[i]->NewIterator());
    src.priority = static_cast<int>(i);
    if (start.empty()) {
      src.table_iter->SeekToFirst();
    } else {
      src.table_iter->Seek(start);
    }
    sources.push_back(std::move(src));
  }
  std::string last_emitted_key;
  bool have_last = false;
  while (true) {
    // Pick the smallest key; among equals the highest priority.
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].Valid()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = sources[i].key().compare(sources[best].key());
      if (cmp < 0 ||
          (cmp == 0 && sources[i].priority > sources[best].priority)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return;
    Slice key = sources[best].key();
    if (!end.empty() && key.compare(end) >= 0) return;
    bool duplicate = have_last && key == Slice(last_emitted_key);
    if (!duplicate) {
      EntryType type = EntryType::kPut;
      Slice value;
      sources[best].Current(&type, &value);
      last_emitted_key.assign(key.data(), key.size());
      have_last = true;
      if (type == EntryType::kPut) {
        if (!fn(Slice(last_emitted_key), value)) return;
      }
    }
    sources[best].Next();
  }
}

Status KVStore::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactAllLocked();
}

Status KVStore::CompactAllLocked() {
  KB_RETURN_IF_ERROR(FlushLocked());
  if (tables_.size() <= 1) return Status::OK();
  KvMetrics& metrics = KvMetrics::Get();
  ScopedTimer timer(metrics.compact_ms);
  TableBuilder builder(options_.table);
  // Merge newest-wins across all tables, keeping only live entries.
  std::vector<TableReader::Iterator> iters;
  iters.reserve(tables_.size());
  for (const auto& t : tables_) {
    iters.push_back(t->NewIterator());
    iters.back().SeekToFirst();
  }
  std::string last_key;
  bool have_last = false;
  while (true) {
    int best = -1;
    for (size_t i = 0; i < iters.size(); ++i) {
      if (!iters[i].Valid()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = iters[i].key().compare(iters[best].key());
      // Later tables are newer; prefer them on equal keys (i ascends).
      if (cmp <= 0) best = static_cast<int>(i);
    }
    if (best < 0) break;
    Slice key = iters[best].key();
    bool duplicate = have_last && key == Slice(last_key);
    if (!duplicate) {
      EntryType type = EntryType::kPut;
      Slice value;
      UntagValue(iters[best].value(), &type, &value);
      last_key.assign(key.data(), key.size());
      have_last = true;
      if (type == EntryType::kPut) {
        // Bottom-most merge: tombstones and shadowed versions drop out.
        builder.Add(key, Slice(TagValue(EntryType::kPut, value)));
      }
    }
    iters[best].Next();
  }
  uint64_t number = next_table_number_++;
  std::string contents = builder.Finish();
  KB_RETURN_IF_ERROR(WriteStringToFile(TableFileName(number), contents));
  auto merged = TableReader::Open(std::move(contents));
  if (!merged.ok()) return merged.status();
  // Remove the old files only after the new table is durable.
  for (uint64_t old_number : table_numbers_) {
    Status s = RemoveFile(TableFileName(old_number));
    if (!s.ok()) {
      KB_LOG(Warning) << "compaction cleanup: " << s;
    }
  }
  tables_.clear();
  table_numbers_.clear();
  tables_.push_back(std::move(*merged));
  table_numbers_.push_back(number);
  ++stats_.compactions;
  metrics.compactions.Increment();
  metrics.num_tables.Set(static_cast<int64_t>(tables_.size()));
  return Status::OK();
}

}  // namespace storage
}  // namespace kb
