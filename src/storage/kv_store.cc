#include "storage/kv_store.h"

#include <algorithm>
#include <optional>

#include "util/logging.h"
#include "util/metrics_registry.h"
#include "util/string_util.h"

namespace kb {
namespace storage {

namespace {
constexpr char kWalFileName[] = "wal.log";
constexpr char kQuarantineSuffix[] = ".quarantine";

/// Storage instruments in the default registry. The gauges describe
/// the store that updated them last — with several stores open, treat
/// them as "most recent store activity", not a per-store breakdown.
struct KvMetrics {
  Counter& gets;
  Counter& puts;
  Counter& deletes;
  Counter& scans;
  Counter& flushes;
  Counter& compactions;
  Counter& bloom_skips;
  Counter& table_probes;
  Counter& wal_appends;
  Counter& wal_syncs;
  Counter& recoveries;
  Counter& wal_replayed_records;
  Counter& wal_truncated_bytes;
  Counter& tables_quarantined;
  Histogram& get_ms;
  Histogram& put_ms;
  Histogram& flush_ms;
  Histogram& compact_ms;
  Gauge& memtable_bytes;
  Gauge& num_tables;

  static KvMetrics& Get() {
    static KvMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new KvMetrics{
          r.counter("kv.gets"),
          r.counter("kv.puts"),
          r.counter("kv.deletes"),
          r.counter("kv.scans"),
          r.counter("kv.flushes"),
          r.counter("kv.compactions"),
          r.counter("kv.bloom_skips"),
          r.counter("kv.table_probes"),
          r.counter("kv.wal_appends"),
          r.counter("kv.wal_syncs"),
          r.counter("kv.recoveries"),
          r.counter("kv.wal_replayed_records"),
          r.counter("kv.wal_truncated_bytes"),
          r.counter("kv.tables_quarantined"),
          r.histogram("kv.get_ms"),
          r.histogram("kv.put_ms"),
          r.histogram("kv.flush_ms"),
          r.histogram("kv.compact_ms"),
          r.gauge("kv.memtable_bytes"),
          r.gauge("kv.num_tables"),
      };
    }();
    return *m;
  }
};

/// SSTable values are tagged with a leading type byte so tombstones
/// survive flushes and shadow older tables.
std::string TagValue(EntryType type, const Slice& value) {
  std::string out;
  out.reserve(value.size() + 1);
  out.push_back(static_cast<char>(type));
  out.append(value.data(), value.size());
  return out;
}

bool UntagValue(const Slice& tagged, EntryType* type, Slice* value) {
  if (tagged.empty()) return false;
  *type = static_cast<EntryType>(tagged[0]);
  *value = Slice(tagged.data() + 1, tagged.size() - 1);
  return true;
}
}  // namespace

KVStore::KVStore(StoreOptions options, std::string path)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      path_(std::move(path)),
      retry_(options.retry),
      mem_(new MemTable()) {}

KVStore::~KVStore() {
  if (wal_open_) wal_.Close();
}

StatusOr<std::unique_ptr<KVStore>> KVStore::Open(const StoreOptions& options,
                                                 const std::string& path) {
  return OpenInternal(options, path, /*repair=*/false, nullptr);
}

StatusOr<std::unique_ptr<KVStore>> KVStore::Recover(
    const StoreOptions& options, const std::string& path,
    RecoveryReport* report) {
  RecoveryReport local;
  auto store = OpenInternal(options, path, /*repair=*/true,
                            report != nullptr ? report : &local);
  if (store.ok()) KvMetrics::Get().recoveries.Increment();
  return store;
}

StatusOr<std::unique_ptr<KVStore>> KVStore::OpenInternal(
    const StoreOptions& options, const std::string& path, bool repair,
    RecoveryReport* report) {
  std::unique_ptr<KVStore> store(new KVStore(options, path));
  KB_RETURN_IF_ERROR(store->env_->CreateDirIfMissing(path));
  KB_RETURN_IF_ERROR(store->LoadExistingTables(repair, report));
  KB_RETURN_IF_ERROR(store->ReplayWalIntoMemtable(repair, report));
  if (options.use_wal) {
    KB_RETURN_IF_ERROR(WalWriter::Open(store->env_,
                                       path + "/" + kWalFileName,
                                       &store->wal_));
    store->wal_open_ = true;
  }
  return store;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06llu.sst",
           static_cast<unsigned long long>(number));
  return path_ + "/" + buf;
}

Status KVStore::LoadExistingTables(bool repair, RecoveryReport* report) {
  auto names = env_->ListDir(path_);
  if (!names.ok()) return Status::OK();  // fresh directory
  std::vector<uint64_t> numbers;
  for (const std::string& name : *names) {
    if (EndsWith(name, ".sst")) {
      long long n = 0;
      if (ParseInt64(name.substr(0, name.size() - 4), &n) && n > 0) {
        numbers.push_back(static_cast<uint64_t>(n));
      }
    }
  }
  std::sort(numbers.begin(), numbers.end());
  for (uint64_t n : numbers) {
    const std::string file_name = TableFileName(n);
    // A table is healthy when it reads, parses and every block passes
    // its checksum. In repair mode anything less is quarantined (the
    // file is renamed, never deleted — an operator may still salvage
    // intact blocks); in strict mode it fails the open.
    Status table_status = Status::OK();
    auto contents = env_->ReadFileToString(file_name);
    if (!contents.ok()) {
      table_status = contents.status();
    } else {
      auto table = TableReader::Open(std::move(*contents));
      if (!table.ok()) {
        table_status = table.status();
      } else {
        if (repair) table_status = (*table)->VerifyAllBlocks();
        if (table_status.ok()) {
          tables_.push_back(std::move(*table));
          table_numbers_.push_back(n);
        }
      }
    }
    next_table_number_ = std::max(next_table_number_, n + 1);
    if (table_status.ok()) {
      if (report != nullptr) ++report->tables_loaded;
      continue;
    }
    if (!repair) return table_status;
    std::string quarantined = file_name + kQuarantineSuffix;
    Status rename_status = env_->RenameFile(file_name, quarantined);
    if (!rename_status.ok()) {
      KB_LOG(Warning) << "quarantine failed for " << file_name << ": "
                      << rename_status;
      return rename_status;
    }
    KB_LOG(Warning) << "quarantined corrupt table " << file_name << ": "
                    << table_status;
    KvMetrics::Get().tables_quarantined.Increment();
    if (report != nullptr) {
      ++report->tables_quarantined;
      report->quarantined_files.push_back(quarantined);
    }
  }
  return Status::OK();
}

Status KVStore::ReplayWalIntoMemtable(bool repair, RecoveryReport* report) {
  std::string wal_path = path_ + "/" + kWalFileName;
  if (!env_->FileExists(wal_path)) return Status::OK();
  WalReplayInfo info;
  Status s = ReplayWal(env_, wal_path,
                       [this](EntryType type, const Slice& key,
                              const Slice& value) {
                         if (type == EntryType::kPut) {
                           mem_->Put(key, value);
                         } else {
                           mem_->Delete(key);
                         }
                       },
                       &info);
  if (!s.ok()) {
    if (!repair) return s;
    // The WAL cannot be read at all; set it aside so the store can
    // still come up with what the tables hold.
    std::string quarantined = wal_path + kQuarantineSuffix;
    KB_RETURN_IF_ERROR(env_->RenameFile(wal_path, quarantined));
    KB_LOG(Warning) << "quarantined unreadable wal " << wal_path << ": " << s;
    if (report != nullptr) {
      ++report->tables_quarantined;
      report->quarantined_files.push_back(quarantined);
    }
    return Status::OK();
  }
  if (info.truncated_bytes > 0) {
    // Drop the torn tail so future appends land on a record boundary
    // (otherwise replay would stop at the tear and lose them).
    KB_RETURN_IF_ERROR(env_->TruncateFile(wal_path, info.valid_bytes));
    KvMetrics::Get().wal_truncated_bytes.Increment(info.truncated_bytes);
  }
  KvMetrics::Get().wal_replayed_records.Increment(info.records);
  if (report != nullptr) {
    report->wal_records_replayed += info.records;
    report->wal_bytes_truncated += info.truncated_bytes;
  }
  return Status::OK();
}

Status KVStore::WriteInternal(EntryType type, const Slice& key,
                              const Slice& value) {
  if (options_.use_wal && !wal_open_) {
    // A failed flush left the store without a log; accepting writes
    // here would silently drop durability. Fail-stop instead.
    return Status::IOError("wal unavailable after failed flush: " + path_);
  }
  if (wal_open_) {
    // WalWriter::Append self-heals a torn tail before each attempt, so
    // retrying after a transient failure cannot corrupt the log.
    KB_RETURN_IF_ERROR(
        retry_.Run([&] { return wal_.Append(type, key, value); }));
    KvMetrics::Get().wal_appends.Increment();
    if (options_.sync_wal) {
      KB_RETURN_IF_ERROR(retry_.Run([&] { return wal_.Sync(); }));
      KvMetrics::Get().wal_syncs.Increment();
    }
  }
  if (type == EntryType::kPut) {
    mem_->Put(key, value);
  } else {
    mem_->Delete(key);
  }
  KvMetrics::Get().memtable_bytes.Set(
      static_cast<int64_t>(mem_->ApproximateMemoryUsage()));
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_flush_bytes) {
    KB_RETURN_IF_ERROR(FlushLocked());
  }
  return Status::OK();
}

Status KVStore::Put(const Slice& key, const Slice& value) {
  KvMetrics& metrics = KvMetrics::Get();
  metrics.puts.Increment();
  ScopedTimer timer(metrics.put_ms);
  std::lock_guard<std::mutex> lock(mu_);
  return WriteInternal(EntryType::kPut, key, value);
}

Status KVStore::Delete(const Slice& key) {
  KvMetrics::Get().deletes.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  return WriteInternal(EntryType::kDelete, key, Slice());
}

Status KVStore::Get(const Slice& key, std::string* value) {
  KvMetrics& metrics = KvMetrics::Get();
  metrics.gets.Increment();
  ScopedTimer timer(metrics.get_ms);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  EntryType type;
  if (mem_->Get(key, value, &type)) {
    if (type == EntryType::kDelete) return Status::NotFound("tombstone");
    return Status::OK();
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    if (!(*it)->MayContain(key)) {
      ++stats_.bloom_skips;
      metrics.bloom_skips.Increment();
      continue;
    }
    ++stats_.table_probes;
    metrics.table_probes.Increment();
    std::string tagged;
    Status s = (*it)->Get(key, &tagged);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    EntryType t;
    Slice v;
    if (!UntagValue(Slice(tagged), &t, &v)) {
      return Status::Corruption("untagged table value");
    }
    if (t == EntryType::kDelete) return Status::NotFound("tombstone");
    *value = v.ToString();
    return Status::OK();
  }
  return Status::NotFound("key absent");
}

Status KVStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status KVStore::FlushLocked() {
  if (mem_->empty()) return Status::OK();
  KvMetrics& metrics = KvMetrics::Get();
  ScopedTimer timer(metrics.flush_ms);
  TableBuilder builder(options_.table);
  MemTable::Iterator it = mem_->NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    builder.Add(it.key(), Slice(TagValue(it.type(), it.value())));
  }
  uint64_t number = next_table_number_++;
  std::string contents = builder.Finish();
  // The table write syncs internally; the WAL may only be deleted
  // after the table is durably on disk.
  KB_RETURN_IF_ERROR(retry_.Run([&] {
    return env_->WriteStringToFile(TableFileName(number), contents);
  }));
  auto table = TableReader::Open(std::move(contents));
  if (!table.ok()) return table.status();
  tables_.push_back(std::move(*table));
  table_numbers_.push_back(number);
  mem_.reset(new MemTable());
  if (wal_open_) {
    KB_RETURN_IF_ERROR(wal_.Close());
    wal_open_ = false;
    std::string wal_path = path_ + "/" + kWalFileName;
    if (env_->FileExists(wal_path)) {
      KB_RETURN_IF_ERROR(retry_.Run([&] {
        return env_->RemoveFile(wal_path);
      }));
    }
    KB_RETURN_IF_ERROR(WalWriter::Open(env_, wal_path, &wal_));
    wal_open_ = true;
  }
  ++stats_.flushes;
  metrics.flushes.Increment();
  metrics.memtable_bytes.Set(0);
  metrics.num_tables.Set(static_cast<int64_t>(tables_.size()));
  return MaybeScheduleCompaction();
}

Status KVStore::MaybeScheduleCompaction() {
  if (static_cast<int>(tables_.size()) >= options_.l0_compaction_trigger) {
    return CompactAllLocked();
  }
  return Status::OK();
}

namespace {
/// One source in the k-way merge: either the memtable or a table.
/// Higher `priority` shadows lower on equal keys.
struct MergeSource {
  std::optional<MemTable::Iterator> mem_iter;
  std::optional<TableReader::Iterator> table_iter;
  int priority;

  bool Valid() const {
    return mem_iter.has_value() ? mem_iter->Valid() : table_iter->Valid();
  }
  bool corrupted() const {
    return !mem_iter.has_value() && table_iter->corrupted();
  }
  Slice key() const {
    return mem_iter.has_value() ? mem_iter->key() : table_iter->key();
  }
  void Next() {
    if (mem_iter.has_value()) {
      mem_iter->Next();
    } else {
      table_iter->Next();
    }
  }
  /// Entry type and untagged value for the current position.
  void Current(EntryType* type, Slice* value) const {
    if (mem_iter.has_value()) {
      *type = mem_iter->type();
      *value = mem_iter->value();
    } else {
      Slice tagged = table_iter->value();
      UntagValue(tagged, type, value);
    }
  }
};
}  // namespace

Status KVStore::Scan(
    const Slice& start, const Slice& end,
    const std::function<bool(const Slice&, const Slice&)>& fn) {
  KvMetrics::Get().scans.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MergeSource> sources;
  {
    MergeSource src;
    src.mem_iter.emplace(mem_->NewIterator());
    src.priority = static_cast<int>(tables_.size());
    if (start.empty()) {
      src.mem_iter->SeekToFirst();
    } else {
      src.mem_iter->Seek(start);
    }
    sources.push_back(std::move(src));
  }
  for (size_t i = 0; i < tables_.size(); ++i) {
    MergeSource src;
    src.table_iter.emplace(tables_[i]->NewIterator());
    src.priority = static_cast<int>(i);
    if (start.empty()) {
      src.table_iter->SeekToFirst();
    } else {
      src.table_iter->Seek(start);
    }
    sources.push_back(std::move(src));
  }
  std::string last_emitted_key;
  bool have_last = false;
  while (true) {
    // Pick the smallest key; among equals the highest priority.
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].Valid()) {
        if (sources[i].corrupted()) {
          return Status::Corruption("scan hit corrupt table block");
        }
        continue;
      }
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = sources[i].key().compare(sources[best].key());
      if (cmp < 0 ||
          (cmp == 0 && sources[i].priority > sources[best].priority)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return Status::OK();
    Slice key = sources[best].key();
    if (!end.empty() && key.compare(end) >= 0) return Status::OK();
    bool duplicate = have_last && key == Slice(last_emitted_key);
    if (!duplicate) {
      EntryType type = EntryType::kPut;
      Slice value;
      sources[best].Current(&type, &value);
      last_emitted_key.assign(key.data(), key.size());
      have_last = true;
      if (type == EntryType::kPut) {
        if (!fn(Slice(last_emitted_key), value)) return Status::OK();
      }
    }
    sources[best].Next();
  }
}

Status KVStore::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactAllLocked();
}

Status KVStore::CompactAllLocked() {
  KB_RETURN_IF_ERROR(FlushLocked());
  if (tables_.size() <= 1) return Status::OK();
  KvMetrics& metrics = KvMetrics::Get();
  ScopedTimer timer(metrics.compact_ms);
  TableBuilder builder(options_.table);
  // Merge newest-wins across all tables, keeping only live entries.
  std::vector<TableReader::Iterator> iters;
  iters.reserve(tables_.size());
  for (const auto& t : tables_) {
    iters.push_back(t->NewIterator());
    iters.back().SeekToFirst();
  }
  std::string last_key;
  bool have_last = false;
  while (true) {
    int best = -1;
    for (size_t i = 0; i < iters.size(); ++i) {
      if (!iters[i].Valid()) {
        if (iters[i].corrupted()) {
          return Status::Corruption("compaction hit corrupt table block");
        }
        continue;
      }
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = iters[i].key().compare(iters[best].key());
      // Later tables are newer; prefer them on equal keys (i ascends).
      if (cmp <= 0) best = static_cast<int>(i);
    }
    if (best < 0) break;
    Slice key = iters[best].key();
    bool duplicate = have_last && key == Slice(last_key);
    if (!duplicate) {
      EntryType type = EntryType::kPut;
      Slice value;
      UntagValue(iters[best].value(), &type, &value);
      last_key.assign(key.data(), key.size());
      have_last = true;
      if (type == EntryType::kPut) {
        // Bottom-most merge: tombstones and shadowed versions drop out.
        builder.Add(key, Slice(TagValue(EntryType::kPut, value)));
      }
    }
    iters[best].Next();
  }
  uint64_t number = next_table_number_++;
  std::string contents = builder.Finish();
  KB_RETURN_IF_ERROR(retry_.Run([&] {
    return env_->WriteStringToFile(TableFileName(number), contents);
  }));
  auto merged = TableReader::Open(std::move(contents));
  if (!merged.ok()) return merged.status();
  // Remove the old files only after the new table is durable.
  for (uint64_t old_number : table_numbers_) {
    Status s = env_->RemoveFile(TableFileName(old_number));
    if (!s.ok()) {
      KB_LOG(Warning) << "compaction cleanup: " << s;
    }
  }
  tables_.clear();
  table_numbers_.clear();
  tables_.push_back(std::move(*merged));
  table_numbers_.push_back(number);
  ++stats_.compactions;
  metrics.compactions.Increment();
  metrics.num_tables.Set(static_cast<int64_t>(tables_.size()));
  return Status::OK();
}

}  // namespace storage
}  // namespace kb
