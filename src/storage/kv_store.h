#ifndef KBFORGE_STORAGE_KV_STORE_H_
#define KBFORGE_STORAGE_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/statusor.h"

namespace kb {
namespace storage {

/// Tuning knobs for the mini-LSM engine.
struct StoreOptions {
  size_t memtable_flush_bytes = 1 << 20;  ///< flush threshold
  int l0_compaction_trigger = 4;          ///< #tables that triggers merge
  bool use_wal = true;                    ///< write-ahead logging on/off
  /// fsync the WAL on every write, so a Put/Delete that returned OK is
  /// durable across machine crashes. Turn off for bulk loads that end
  /// with an explicit Flush (the SSTable write syncs).
  bool sync_wal = true;
  /// Filesystem seam; nullptr means Env::Default(). Tests inject a
  /// FaultInjectionEnv here. Must outlive the store.
  Env* env = nullptr;
  /// Retry policy for transient IO failures on the WAL append/sync and
  /// memtable-flush paths. max_attempts = 1 disables retries.
  RetryOptions retry;
  TableOptions table;                     ///< SSTable layout options
};

/// Read/write counters for benches and the Bloom ablation (E10).
struct StoreStats {
  uint64_t gets = 0;
  uint64_t bloom_skips = 0;      ///< table probes skipped by the filter
  uint64_t table_probes = 0;     ///< actual block searches performed
  uint64_t flushes = 0;
  uint64_t compactions = 0;
};

/// What KVStore::Recover found and repaired. All counts refer to the
/// opened directory, not process lifetime.
struct RecoveryReport {
  uint64_t wal_records_replayed = 0;  ///< intact records re-applied
  uint64_t wal_bytes_truncated = 0;   ///< torn/corrupt WAL tail removed
  uint64_t tables_loaded = 0;         ///< SSTables that passed checks
  uint64_t tables_quarantined = 0;    ///< corrupt SSTables set aside
  std::vector<std::string> quarantined_files;  ///< their new names
};

/// A persistent ordered key/value store in the LSM architecture the
/// RocksDB wiki describes: WAL + skiplist memtable + immutable sorted
/// tables, with full merges once enough L0 tables accumulate. This is
/// the durable substrate under KBForge's knowledge bases, letting a
/// harvested KB survive restarts and scale past RAM-friendly loads.
///
/// Thread-safe: every public operation is serialized by one internal
/// mutex (coarse by design — the harvesting pipeline shards work above
/// this layer, so the store itself only needs correctness, not
/// internal parallelism). Scan holds the mutex across the visitor, so
/// `fn` must not reenter the store.
class KVStore {
 public:
  /// Opens (or creates) a store in directory `path`, replaying any WAL.
  /// Strict: a corrupt SSTable fails the open with Corruption.
  static StatusOr<std::unique_ptr<KVStore>> Open(const StoreOptions& options,
                                                 const std::string& path);

  /// Crash-recovery open: replays the WAL (truncating a torn tail),
  /// verifies every SSTable block checksum, and *quarantines* corrupt
  /// tables (renamed to <name>.quarantine) instead of aborting, so a
  /// store damaged by a crash or bit rot comes back up with every
  /// intact byte served and nothing corrupt returned to readers.
  /// `report` (optional) receives what was replayed/repaired.
  static StatusOr<std::unique_ptr<KVStore>> Recover(
      const StoreOptions& options, const std::string& path,
      RecoveryReport* report = nullptr);

  ~KVStore();

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);

  /// Point lookup; NotFound if absent or deleted.
  Status Get(const Slice& key, std::string* value);

  /// Visits live entries with start <= key < end (empty end = no bound)
  /// in key order; newest version wins, tombstones are skipped.
  /// Return false from fn to stop. Returns Corruption if a table block
  /// fails its checksum mid-scan (entries already visited stand).
  Status Scan(const Slice& start, const Slice& end,
              const std::function<bool(const Slice&, const Slice&)>& fn);

  /// Forces the memtable into a new SSTable.
  Status Flush();

  /// Merges all SSTables into one, dropping shadowed versions and
  /// tombstones.
  Status CompactAll();

  size_t num_tables() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
  }
  StoreStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = StoreStats();
  }

 private:
  KVStore(StoreOptions options, std::string path);

  static StatusOr<std::unique_ptr<KVStore>> OpenInternal(
      const StoreOptions& options, const std::string& path, bool repair,
      RecoveryReport* report);

  Status WriteInternal(EntryType type, const Slice& key, const Slice& value);
  Status LoadExistingTables(bool repair, RecoveryReport* report);
  Status ReplayWalIntoMemtable(bool repair, RecoveryReport* report);
  std::string TableFileName(uint64_t number) const;
  Status MaybeScheduleCompaction();
  Status FlushLocked();
  Status CompactAllLocked();

  mutable std::mutex mu_;
  StoreOptions options_;
  Env* env_;  ///< resolved from options_.env (never null)
  std::string path_;
  RetryPolicy retry_;
  std::unique_ptr<MemTable> mem_;
  WalWriter wal_;
  bool wal_open_ = false;
  // Oldest first; readers search newest (back) to oldest (front).
  std::vector<std::shared_ptr<TableReader>> tables_;
  std::vector<uint64_t> table_numbers_;
  uint64_t next_table_number_ = 1;
  StoreStats stats_;
};

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_KV_STORE_H_
