#ifndef KBFORGE_STORAGE_KV_STORE_H_
#define KBFORGE_STORAGE_KV_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "util/lru_cache.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace kb {
namespace storage {

/// Tuning knobs for the mini-LSM engine.
struct StoreOptions {
  size_t memtable_flush_bytes = 1 << 20;  ///< flush threshold
  int l0_compaction_trigger = 4;          ///< #tables that triggers merge
  bool use_wal = true;                    ///< write-ahead logging on/off
  /// fsync the WAL on every write, so a Put/Delete that returned OK is
  /// durable across machine crashes. Concurrent writers group-commit:
  /// one leader appends and syncs the whole queued batch, so the fsync
  /// cost is amortized across them. Turn off for bulk loads that end
  /// with an explicit Flush (the SSTable write syncs).
  bool sync_wal = true;
  /// Filesystem seam; nullptr means Env::Default(). Tests inject a
  /// FaultInjectionEnv here. Must outlive the store.
  Env* env = nullptr;
  /// Retry policy for transient IO failures on the WAL append/sync and
  /// memtable-flush paths. max_attempts = 1 disables retries.
  RetryOptions retry;
  TableOptions table;                     ///< SSTable layout options
  /// Block-cache capacity for this store's tables; 0 disables caching
  /// (the ablation baseline). Ignored when block_cache is set.
  size_t block_cache_bytes = 8 << 20;
  /// Externally-owned cache shared across stores (ShardedKVStore hands
  /// one cache to all its shards). Overrides block_cache_bytes.
  std::shared_ptr<ShardedLruCache> block_cache;
  /// Pool running background flushes/compactions; nullptr gives the
  /// store its own single worker. Must outlive the store.
  ThreadPool* background_pool = nullptr;
  /// Keep flushed WAL generations on disk instead of deleting them.
  /// The numbered logs then form a complete, prefix-closed history of
  /// every write — the replication log a WalShipper streams to
  /// follower replicas, and what lets a lagging follower catch up from
  /// any old position without a snapshot. Replay on reopen re-applies
  /// the whole history (idempotent puts/deletes), so correctness is
  /// unchanged; the cost is open/recovery time and disk proportional
  /// to history length.
  bool retain_wals = false;
};

/// Read/write counters for benches and the Bloom ablation (E10).
struct StoreStats {
  uint64_t gets = 0;
  uint64_t bloom_skips = 0;      ///< table probes skipped by the filter
  uint64_t table_probes = 0;     ///< actual block searches performed
  uint64_t flushes = 0;
  uint64_t compactions = 0;
};

/// What KVStore::Recover found and repaired. All counts refer to the
/// opened directory, not process lifetime.
struct RecoveryReport {
  uint64_t wal_records_replayed = 0;  ///< intact records re-applied
  uint64_t wal_bytes_truncated = 0;   ///< torn/corrupt WAL tail removed
  uint64_t tables_loaded = 0;         ///< SSTables that passed checks
  uint64_t tables_quarantined = 0;    ///< corrupt SSTables set aside
  std::vector<std::string> quarantined_files;  ///< their new names

  /// Folds another (e.g. per-shard) report into this one.
  void Merge(const RecoveryReport& other);
};

/// One numbered WAL generation on disk, as exported to WAL shipping.
/// `size` is the file length at listing time; a concurrent appender
/// may have grown it since (readers parse only complete records, so a
/// stale size only delays data, never tears it).
struct WalGenerationInfo {
  uint64_t number = 0;
  uint64_t size = 0;
  std::string path;
};

/// The read surface shared by KVStore and ShardedKVStore, so read-side
/// adapters (StoredTripleSource) work against either engine.
class KvReader {
 public:
  virtual ~KvReader() = default;

  /// Point lookup; NotFound if absent or deleted.
  virtual Status Get(const Slice& key, std::string* value) = 0;

  /// Visits live entries with start <= key < end (empty end = no
  /// bound) in key order; newest version wins, tombstones are skipped.
  /// Return false from fn to stop.
  virtual Status Scan(
      const Slice& start, const Slice& end,
      const std::function<bool(const Slice&, const Slice&)>& fn) = 0;
};

/// A persistent ordered key/value store in the LSM architecture the
/// RocksDB wiki describes: WAL + skiplist memtable + immutable sorted
/// tables, with full merges once enough L0 tables accumulate. This is
/// the durable substrate under KBForge's knowledge bases, letting a
/// harvested KB survive restarts and scale past RAM-friendly loads.
///
/// Thread-safe, and built to stay readable under background IO:
///  - Writers queue and group-commit: one leader appends + fsyncs the
///    whole batch with the mutex released, so concurrent Puts share a
///    sync and never hold the lock across IO.
///  - Flushes and compactions run on a background pool. The mutex is
///    held only to swap the memtable to an immutable sibling or to
///    publish a new table list (a copy-on-write shared_ptr snapshot,
///    the same idiom as TripleStore::Snapshot), so Get/Scan never wait
///    for table IO.
///  - Scan pins a snapshot (memtable copies + the table-set version)
///    and iterates with the lock released, so the visitor may take as
///    long as it likes and may even reenter the store.
/// A failed background flush/compaction fail-stops subsequent writes
/// with the sticky error (reads keep serving); nothing acknowledged is
/// ever lost while the WAL files backing unflushed data remain.
class KVStore : public KvReader {
 public:
  /// Opens (or creates) a store in directory `path`, replaying any WAL.
  /// Strict: a corrupt SSTable fails the open with Corruption.
  static StatusOr<std::unique_ptr<KVStore>> Open(const StoreOptions& options,
                                                 const std::string& path);

  /// Crash-recovery open: replays the WAL files in order (truncating a
  /// torn tail), verifies every SSTable block checksum, and
  /// *quarantines* corrupt tables (renamed to <name>.quarantine)
  /// instead of aborting, so a store damaged by a crash or bit rot
  /// comes back up with every intact byte served and nothing corrupt
  /// returned to readers. `report` (optional) receives what was
  /// replayed/repaired.
  static StatusOr<std::unique_ptr<KVStore>> Recover(
      const StoreOptions& options, const std::string& path,
      RecoveryReport* report = nullptr);

  /// Blocks until all background work for this store has drained.
  ~KVStore() override;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);

  Status Get(const Slice& key, std::string* value) override;

  /// See KvReader::Scan. Returns Corruption if a table block fails its
  /// checksum mid-scan (entries already visited stand). The visitor
  /// runs with no store lock held and may reenter Get/Scan.
  Status Scan(const Slice& start, const Slice& end,
              const std::function<bool(const Slice&, const Slice&)>& fn)
      override;

  /// Forces the memtable into a new SSTable and waits for the write to
  /// complete (durability barrier).
  Status Flush();

  /// Merges all SSTables into one, dropping shadowed versions and
  /// tombstones. Runs on the calling thread; readers stay unblocked.
  Status CompactAll();

  size_t num_tables() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tables_->size();
  }
  StoreStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = StoreStats();
  }
  /// The block cache serving this store's tables (null when disabled).
  const std::shared_ptr<ShardedLruCache>& block_cache() const {
    return cache_;
  }

  /// The numbered WAL generations currently on disk, oldest first —
  /// the export surface for WAL shipping. With retain_wals this is the
  /// full prefix-closed write history; without it, only the logs still
  /// feeding the memtables. Quarantined logs are excluded.
  StatusOr<std::vector<WalGenerationInfo>> ListWalGenerations() const;

  const std::string& path() const { return path_; }
  Env* env() const { return env_; }

 private:
  /// One queued write; lives on its writer's stack for the duration of
  /// the blocking Put/Delete call.
  struct Writer {
    EntryType type;
    Slice key;
    Slice value;
    Status status;
    bool done = false;
  };
  struct TableEntry {
    std::shared_ptr<TableReader> table;
    uint64_t number;
  };
  /// Oldest first; readers search newest (back) to oldest (front).
  /// Published as shared_ptr-to-const: readers pin a version and drop
  /// the lock, writers publish a fresh vector (copy-on-write).
  using TableSet = std::vector<TableEntry>;

  KVStore(StoreOptions options, std::string path);

  static StatusOr<std::unique_ptr<KVStore>> OpenInternal(
      const StoreOptions& options, const std::string& path, bool repair,
      RecoveryReport* report);

  Status WriteInternal(EntryType type, const Slice& key, const Slice& value);
  Status LoadExistingTables(bool repair, RecoveryReport* report);
  Status ReplayWalsIntoMemtable(bool repair, RecoveryReport* report);
  std::string TableFileName(uint64_t number) const;
  std::string WalFileName(uint64_t number) const;

  /// Seals the current WAL, swaps mem_ into imm_ and schedules the
  /// background flush. Requires: lock held, imm_ == nullptr, no leader
  /// mid-IO (log_busy_ false).
  Status BeginFlushLocked(std::unique_lock<std::mutex>& lock);
  Status MaybeScheduleFlushLocked(std::unique_lock<std::mutex>& lock);
  void MaybeScheduleCompactionLocked();
  /// Background-task bodies (run on pool_).
  void BackgroundFlush();
  void BackgroundCompaction();
  /// Merges the pinned table set into one table and publishes it. Must
  /// be called with compaction_running_ claimed and the lock released.
  Status CompactOnce();

  StoreOptions options_;
  Env* env_;  ///< resolved from options_.env (never null)
  std::string path_;
  RetryPolicy retry_;
  std::shared_ptr<ShardedLruCache> cache_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable writers_cv_;  ///< writer queue + log_busy_
  std::condition_variable bg_cv_;       ///< background-task completion
  std::deque<Writer*> writers_;
  bool log_busy_ = false;  ///< a leader is doing WAL IO, lock released
  std::shared_ptr<MemTable> mem_;
  std::shared_ptr<MemTable> imm_;  ///< sealed memtable being flushed
  std::vector<std::string> mem_wal_paths_;  ///< logs feeding mem_
  std::vector<std::string> imm_wal_paths_;  ///< logs feeding imm_
  WalWriter wal_;
  bool wal_open_ = false;
  std::shared_ptr<const TableSet> tables_;
  uint64_t next_table_number_ = 1;
  uint64_t next_wal_number_ = 1;
  bool compaction_running_ = false;
  uint64_t pending_tasks_ = 0;  ///< scheduled-but-unfinished bg tasks
  Status bg_error_;  ///< sticky background failure; fail-stops writes
  StoreStats stats_;
};

/// The kv.cache_* counters (shared instruments for any block cache
/// serving KVStore tables).
ShardedLruCache::Instruments KvCacheInstruments();

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_KV_STORE_H_
