#include "storage/memtable.h"

#include <cassert>
#include <cstring>

namespace kb {
namespace storage {

/// Skiplist node: flexible layout in the arena.
/// [Node header][next pointers (height)][key bytes][value bytes]
/// The header is padded to pointer alignment so the next array that
/// trails it holds Node* at properly aligned addresses.
struct alignas(alignof(void*)) MemTable::Node {
  uint32_t key_size;
  uint32_t value_size;
  EntryType type;
  uint8_t height;

  Node** next_array() {
    return reinterpret_cast<Node**>(reinterpret_cast<char*>(this) +
                                    sizeof(Node));
  }
  Node* next(int level) const {
    return const_cast<Node*>(this)->next_array()[level];
  }
  void set_next(int level, Node* n) { next_array()[level] = n; }
  const char* key_data() const {
    return reinterpret_cast<const char*>(this) + sizeof(Node) +
           height * sizeof(Node*);
  }
  const char* value_data() const { return key_data() + key_size; }
  Slice key() const { return Slice(key_data(), key_size); }
  Slice value() const { return Slice(value_data(), value_size); }
};

MemTable::MemTable() : rng_(0xdecafbadULL) {
  head_ = NewNode(Slice(), Slice(), EntryType::kPut, kMaxHeight);
  for (int i = 0; i < kMaxHeight; ++i) head_->set_next(i, nullptr);
}

MemTable::~MemTable() = default;

MemTable::Node* MemTable::NewNode(const Slice& key, const Slice& value,
                                  EntryType type, int height) {
  size_t bytes =
      sizeof(Node) + height * sizeof(Node*) + key.size() + value.size();
  char* mem = arena_.AllocateAligned(bytes);
  Node* node = reinterpret_cast<Node*>(mem);
  node->key_size = static_cast<uint32_t>(key.size());
  node->value_size = static_cast<uint32_t>(value.size());
  node->type = type;
  node->height = static_cast<uint8_t>(height);
  char* data = mem + sizeof(Node) + height * sizeof(Node*);
  memcpy(data, key.data(), key.size());
  memcpy(data + key.size(), value.data(), value.size());
  return node;
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && rng_.Bernoulli(0.25)) ++height;
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(const Slice& key,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_ - 1;
  while (true) {
    Node* next = x->next(level);
    if (next != nullptr && next->key().compare(key) < 0) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void MemTable::Put(const Slice& key, const Slice& value) {
  Node* prev[kMaxHeight];
  Node* existing = FindGreaterOrEqual(key, prev);
  if (existing != nullptr && existing->key() == key) {
    // Overwrite in place when sizes allow; otherwise splice a fresh
    // node after prev (newer node first in scan order would complicate
    // iteration, so we replace payload via a new node and unlink).
    // Simpler correct approach: mutate type and, if the value fits,
    // overwrite; else allocate a new node and relink at all levels.
    if (value.size() <= existing->value_size) {
      memcpy(const_cast<char*>(existing->value_data()), value.data(),
             value.size());
      existing->value_size = static_cast<uint32_t>(value.size());
      existing->type = EntryType::kPut;
      return;
    }
    // Unlink the old node, then fall through to a fresh insert.
    for (int level = 0; level < max_height_; ++level) {
      if (prev[level]->next(level) == existing) {
        prev[level]->set_next(level, existing->next(level));
      }
    }
    --num_entries_;
  }
  int height = RandomHeight();
  if (height > max_height_) {
    for (int level = max_height_; level < height; ++level) {
      prev[level] = head_;
    }
    max_height_ = height;
  }
  Node* node = NewNode(key, value, EntryType::kPut, height);
  for (int level = 0; level < height; ++level) {
    node->set_next(level, prev[level]->next(level));
    prev[level]->set_next(level, node);
  }
  ++num_entries_;
}

void MemTable::Delete(const Slice& key) {
  Node* prev[kMaxHeight];
  Node* existing = FindGreaterOrEqual(key, prev);
  if (existing != nullptr && existing->key() == key) {
    existing->type = EntryType::kDelete;
    existing->value_size = 0;
    return;
  }
  int height = RandomHeight();
  if (height > max_height_) {
    for (int level = max_height_; level < height; ++level) {
      prev[level] = head_;
    }
    max_height_ = height;
  }
  Node* node = NewNode(key, Slice(), EntryType::kDelete, height);
  for (int level = 0; level < height; ++level) {
    node->set_next(level, prev[level]->next(level));
    prev[level]->set_next(level, node);
  }
  ++num_entries_;
}

bool MemTable::Get(const Slice& key, std::string* value,
                   EntryType* type) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key() != key) return false;
  *type = node->type;
  if (node->type == EntryType::kPut) {
    value->assign(node->value_data(), node->value_size);
  } else {
    value->clear();
  }
  return true;
}

MemTable::Iterator::Iterator(const MemTable* mem)
    : mem_(mem), node_(nullptr) {}

bool MemTable::Iterator::Valid() const { return node_ != nullptr; }

void MemTable::Iterator::SeekToFirst() { node_ = mem_->head_->next(0); }

void MemTable::Iterator::Seek(const Slice& target) {
  node_ = mem_->FindGreaterOrEqual(target, nullptr);
}

void MemTable::Iterator::Next() {
  assert(Valid());
  node_ = static_cast<const Node*>(node_)->next(0);
}

Slice MemTable::Iterator::key() const {
  return static_cast<const Node*>(node_)->key();
}
Slice MemTable::Iterator::value() const {
  return static_cast<const Node*>(node_)->value();
}
EntryType MemTable::Iterator::type() const {
  return static_cast<const Node*>(node_)->type;
}

}  // namespace storage
}  // namespace kb
