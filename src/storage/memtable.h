#ifndef KBFORGE_STORAGE_MEMTABLE_H_
#define KBFORGE_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "util/arena.h"
#include "util/random.h"
#include "util/slice.h"

namespace kb {
namespace storage {

/// Entry type tag stored with each memtable value (and in SSTable
/// values): a Put carries data, a Delete is a tombstone that shadows
/// older versions during reads and merges.
enum class EntryType : uint8_t { kPut = 0, kDelete = 1 };

/// A sorted in-memory write buffer backed by a skiplist whose nodes
/// live in an arena (the classic LSM memtable design). Single-writer,
/// multi-reader is sufficient for KBForge (the engine serializes
/// writes); no internal locking.
class MemTable {
 public:
  MemTable();
  ~MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts or overwrites `key`.
  void Put(const Slice& key, const Slice& value);

  /// Inserts a tombstone for `key`.
  void Delete(const Slice& key);

  /// Returns true and sets *value/*type if the key has an entry.
  bool Get(const Slice& key, std::string* value, EntryType* type) const;

  size_t num_entries() const { return num_entries_; }
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  bool empty() const { return num_entries_ == 0; }

  /// Iterator in key order over live entries (including tombstones).
  class Iterator {
   public:
    explicit Iterator(const MemTable* mem);
    bool Valid() const;
    void SeekToFirst();
    void Seek(const Slice& target);
    void Next();
    Slice key() const;
    Slice value() const;
    EntryType type() const;

   private:
    friend class MemTable;
    const MemTable* mem_;
    const void* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  struct Node;
  static constexpr int kMaxHeight = 12;

  Node* NewNode(const Slice& key, const Slice& value, EntryType type,
                int height);
  Node* FindGreaterOrEqual(const Slice& key, Node** prev) const;
  int RandomHeight();

  Arena arena_;
  Node* head_;
  int max_height_ = 1;
  size_t num_entries_ = 0;
  Rng rng_;
};

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_MEMTABLE_H_
