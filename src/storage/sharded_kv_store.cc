#include "storage/sharded_kv_store.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"
#include "util/string_util.h"

namespace kb {
namespace storage {

namespace {
/// Marker file persisting the shard count. Routing must match the
/// layout that wrote the data, so the on-disk value is authoritative.
constexpr char kShardsFileName[] = "SHARDS";
/// Entries pulled from a shard per refill during a merged Scan.
constexpr size_t kScanBatchSize = 256;

std::string ShardDirName(const std::string& root, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "shard-%03d", i);
  return root + "/" + buf;
}
}  // namespace

StatusOr<std::unique_ptr<ShardedKVStore>> ShardedKVStore::Open(
    const ShardedStoreOptions& options, const std::string& path) {
  return OpenInternal(options, path, /*repair=*/false, nullptr);
}

StatusOr<std::unique_ptr<ShardedKVStore>> ShardedKVStore::Recover(
    const ShardedStoreOptions& options, const std::string& path,
    RecoveryReport* report) {
  return OpenInternal(options, path, /*repair=*/true, report);
}

StatusOr<std::unique_ptr<ShardedKVStore>> ShardedKVStore::OpenInternal(
    const ShardedStoreOptions& options, const std::string& path, bool repair,
    RecoveryReport* report) {
  Env* env = options.store.env != nullptr ? options.store.env : Env::Default();
  KB_RETURN_IF_ERROR(env->CreateDirIfMissing(path));
  int num_shards = std::max(1, options.num_shards);
  const std::string marker = path + "/" + kShardsFileName;
  if (env->FileExists(marker)) {
    auto contents = env->ReadFileToString(marker);
    if (!contents.ok()) return contents.status();
    long long persisted = 0;
    std::string trimmed = *contents;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == ' ')) {
      trimmed.pop_back();
    }
    if (!ParseInt64(trimmed, &persisted) || persisted < 1) {
      return Status::Corruption("bad SHARDS marker: " + marker);
    }
    num_shards = static_cast<int>(persisted);
  } else {
    KB_RETURN_IF_ERROR(
        env->WriteStringToFile(marker, std::to_string(num_shards) + "\n"));
  }
  std::unique_ptr<ShardedKVStore> store(new ShardedKVStore());
  if (options.block_cache_bytes > 0) {
    store->cache_ = std::make_shared<ShardedLruCache>(
        options.block_cache_bytes, 16, KvCacheInstruments());
  }
  store->pool_.reset(new ThreadPool(
      static_cast<size_t>(std::max(1, options.background_threads))));
  store->shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    StoreOptions so = options.store;
    so.block_cache = store->cache_;
    so.block_cache_bytes = 0;
    so.background_pool = store->pool_.get();
    const std::string shard_path = ShardDirName(path, i);
    if (repair) {
      RecoveryReport shard_report;
      auto shard = KVStore::Recover(so, shard_path, &shard_report);
      if (!shard.ok()) return shard.status();
      if (report != nullptr) report->Merge(shard_report);
      store->shards_.push_back(std::move(*shard));
    } else {
      auto shard = KVStore::Open(so, shard_path);
      if (!shard.ok()) return shard.status();
      store->shards_.push_back(std::move(*shard));
    }
  }
  return store;
}

ShardedKVStore::~ShardedKVStore() = default;

KVStore* ShardedKVStore::ShardFor(const Slice& key) {
  uint64_t h = Hash64(key.data(), key.size());
  return shards_[h % shards_.size()].get();
}

Status ShardedKVStore::Put(const Slice& key, const Slice& value) {
  return ShardFor(key)->Put(key, value);
}

Status ShardedKVStore::Delete(const Slice& key) {
  return ShardFor(key)->Delete(key);
}

Status ShardedKVStore::Get(const Slice& key, std::string* value) {
  return ShardFor(key)->Get(key, value);
}

namespace {
/// One shard's position in the merged scan: a bounded batch of
/// materialized entries plus the resume key for the next pull.
struct ShardCursor {
  KVStore* shard;
  std::vector<std::pair<std::string, std::string>> batch;
  size_t pos = 0;
  std::string next_start;  ///< first key of the next refill
  bool exhausted = false;  ///< shard has no entries >= next_start

  bool HasCurrent() const { return pos < batch.size(); }
  const std::string& key() const { return batch[pos].first; }

  /// Pulls the next batch from the shard. The per-shard Scan visits
  /// without holding the shard lock, and we stop it after
  /// kScanBatchSize entries; resuming at last_key + '\0' is exact
  /// because keys are unique within a shard.
  Status Refill(const Slice& end) {
    batch.clear();
    pos = 0;
    size_t collected = 0;
    Status s = shard->Scan(
        Slice(next_start), end,
        [&](const Slice& k, const Slice& v) {
          batch.emplace_back(k.ToString(), v.ToString());
          return ++collected < kScanBatchSize;
        });
    KB_RETURN_IF_ERROR(s);
    if (batch.size() < kScanBatchSize) {
      exhausted = true;
    } else {
      next_start = batch.back().first + '\0';
    }
    return Status::OK();
  }
};
}  // namespace

Status ShardedKVStore::Scan(
    const Slice& start, const Slice& end,
    const std::function<bool(const Slice&, const Slice&)>& fn) {
  std::vector<ShardCursor> cursors;
  cursors.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardCursor c;
    c.shard = shard.get();
    c.next_start.assign(start.data(), start.size());
    KB_RETURN_IF_ERROR(c.Refill(end));
    cursors.push_back(std::move(c));
  }
  while (true) {
    // Keys are hash-partitioned: each lives in exactly one shard, so
    // the smallest current key across cursors is the next global key.
    ShardCursor* best = nullptr;
    for (ShardCursor& c : cursors) {
      if (!c.HasCurrent()) continue;
      if (best == nullptr || c.key() < best->key()) best = &c;
    }
    if (best == nullptr) return Status::OK();
    const auto& entry = best->batch[best->pos];
    if (!fn(Slice(entry.first), Slice(entry.second))) return Status::OK();
    ++best->pos;
    if (!best->HasCurrent() && !best->exhausted) {
      KB_RETURN_IF_ERROR(best->Refill(end));
    }
  }
}

Status ShardedKVStore::Flush() {
  for (const auto& shard : shards_) {
    KB_RETURN_IF_ERROR(shard->Flush());
  }
  return Status::OK();
}

Status ShardedKVStore::CompactAll() {
  for (const auto& shard : shards_) {
    KB_RETURN_IF_ERROR(shard->CompactAll());
  }
  return Status::OK();
}

size_t ShardedKVStore::num_tables() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_tables();
  return total;
}

StoreStats ShardedKVStore::stats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    StoreStats s = shard->stats();
    total.gets += s.gets;
    total.bloom_skips += s.bloom_skips;
    total.table_probes += s.table_probes;
    total.flushes += s.flushes;
    total.compactions += s.compactions;
  }
  return total;
}

void ShardedKVStore::ResetStats() {
  for (const auto& shard : shards_) shard->ResetStats();
}

}  // namespace storage
}  // namespace kb
