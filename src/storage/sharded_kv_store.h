#ifndef KBFORGE_STORAGE_SHARDED_KV_STORE_H_
#define KBFORGE_STORAGE_SHARDED_KV_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/kv_store.h"
#include "util/thread_pool.h"

namespace kb {
namespace storage {

/// Tuning knobs for the sharded engine.
struct ShardedStoreOptions {
  /// Per-shard engine options. block_cache/block_cache_bytes and
  /// background_pool inside are ignored — the sharded store supplies
  /// its own shared cache and pool to every shard.
  StoreOptions store;
  /// Number of hash partitions (directories shard-000..shard-N-1).
  /// Fixed at creation: once a store exists on disk, the persisted
  /// count wins over this field on reopen.
  int num_shards = 8;
  /// Capacity of the block cache shared by all shards; 0 disables
  /// caching (the ablation baseline).
  size_t block_cache_bytes = 32 << 20;
  /// Workers running background flushes/compactions for all shards.
  int background_threads = 2;
};

/// A KVStore hash-partitioned across N independent shards, each with
/// its own mutex, memtable, WAL and table set, so concurrent writers
/// on different keys touch disjoint locks and logs. One block cache
/// and one background pool are shared across shards. Reads route by
/// the same hash; Scan k-way-merges the shards back into one ordered
/// stream (partitions are disjoint, so no cross-shard dedup is
/// needed). The shard count is persisted in a SHARDS marker file and
/// is authoritative on reopen — routing must match the layout that
/// wrote the data.
///
/// Thread-safe with the same per-shard guarantees as KVStore (group
/// commit, background flush/compaction, snapshot scans).
class ShardedKVStore : public KvReader {
 public:
  /// Opens (or creates) a sharded store rooted at directory `path`.
  /// Strict per-shard opens: any corrupt SSTable fails the open.
  static StatusOr<std::unique_ptr<ShardedKVStore>> Open(
      const ShardedStoreOptions& options, const std::string& path);

  /// Crash-recovery open: every shard runs KVStore::Recover and the
  /// per-shard reports are merged into `report` (optional).
  static StatusOr<std::unique_ptr<ShardedKVStore>> Recover(
      const ShardedStoreOptions& options, const std::string& path,
      RecoveryReport* report = nullptr);

  /// Blocks until all shards' background work has drained.
  ~ShardedKVStore() override;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value) override;

  /// See KvReader::Scan: one globally key-ordered stream merged across
  /// shards, pulled in bounded batches so no shard lock is held while
  /// the visitor runs.
  Status Scan(const Slice& start, const Slice& end,
              const std::function<bool(const Slice&, const Slice&)>& fn)
      override;

  /// Durability barrier across every shard.
  Status Flush();

  /// Full merge in every shard (each ends at <= 1 table).
  Status CompactAll();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t num_tables() const;        ///< summed across shards
  StoreStats stats() const;         ///< summed across shards
  void ResetStats();
  /// The cache shared by all shards (null when disabled).
  const std::shared_ptr<ShardedLruCache>& block_cache() const {
    return cache_;
  }

  /// Direct access for tests/benches; `i` in [0, num_shards()).
  KVStore* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }

  /// Per-shard WAL manifest (see KVStore::ListWalGenerations) — the
  /// unit a WalShipper streams; each shard's generations form an
  /// independent prefix-closed log.
  StatusOr<std::vector<WalGenerationInfo>> WalGenerations(int shard_index) {
    return shards_[static_cast<size_t>(shard_index)]->ListWalGenerations();
  }

 private:
  ShardedKVStore() = default;

  static StatusOr<std::unique_ptr<ShardedKVStore>> OpenInternal(
      const ShardedStoreOptions& options, const std::string& path,
      bool repair, RecoveryReport* report);

  KVStore* ShardFor(const Slice& key);

  std::shared_ptr<ShardedLruCache> cache_;
  /// Declared before shards_ so shards (which drain their tasks in
  /// their destructors) go away first, then the pool joins.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<KVStore>> shards_;
};

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_SHARDED_KV_STORE_H_
