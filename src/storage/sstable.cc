#include "storage/sstable.h"

#include <atomic>
#include <cassert>

#include "util/hash.h"
#include "util/metrics_registry.h"
#include "util/varint.h"

namespace kb {
namespace storage {

namespace {
// "kbforge2": format v2, every region carries a trailing CRC32.
constexpr uint64_t kTableMagic = 0x6b62666f72676532ULL;
constexpr size_t kFooterSize = 8 * 5;
constexpr size_t kCrcSize = 4;

Counter& CorruptBlockCounter() {
  static Counter* c = &MetricsRegistry::Default().counter(
      "sstable.corrupt_blocks");
  return *c;
}

/// Appends `region` followed by its CRC32 to `file`.
void AppendChecksummed(std::string* file, const std::string& region) {
  file->append(region);
  PutFixed32(file, Crc32(region.data(), region.size()));
}

/// Verifies the CRC32 stored right after [offset, offset + size).
bool RegionChecksumOk(const std::string& contents, uint64_t offset,
                      uint64_t size) {
  Slice crc_bytes(contents.data() + offset + size, kCrcSize);
  uint32_t stored = 0;
  GetFixed32(&crc_bytes, &stored);
  return stored == Crc32(contents.data() + offset, size);
}
}  // namespace

TableBuilder::TableBuilder(TableOptions options)
    : options_(options),
      data_block_(options.restart_interval),
      index_block_(1),
      bloom_(options.bloom_bits_per_key) {}

void TableBuilder::Add(const Slice& key, const Slice& value) {
  if (pending_index_entry_) {
    // last_key_ is the final key of the just-flushed block.
    std::string handle;
    PutFixed64(&handle, pending_offset_);
    PutFixed64(&handle, pending_size_);
    index_block_.Add(Slice(last_key_), Slice(handle));
    pending_index_entry_ = false;
  }
  if (options_.bloom_bits_per_key > 0) bloom_.AddKey(key);
  data_block_.Add(key, value);
  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  std::string block = data_block_.Finish();
  pending_offset_ = file_.size();
  pending_size_ = block.size();
  AppendChecksummed(&file_, block);
  data_block_.Reset();
  pending_index_entry_ = true;
}

std::string TableBuilder::Finish() {
  FlushDataBlock();
  if (pending_index_entry_) {
    std::string handle;
    PutFixed64(&handle, pending_offset_);
    PutFixed64(&handle, pending_size_);
    index_block_.Add(Slice(last_key_), Slice(handle));
    pending_index_entry_ = false;
  }
  uint64_t filter_offset = file_.size();
  std::string filter =
      options_.bloom_bits_per_key > 0 ? bloom_.Finish() : std::string();
  AppendChecksummed(&file_, filter);
  uint64_t index_offset = file_.size();
  std::string index = index_block_.Finish();
  AppendChecksummed(&file_, index);
  PutFixed64(&file_, index_offset);
  PutFixed64(&file_, index.size());
  PutFixed64(&file_, filter_offset);
  PutFixed64(&file_, filter.size());
  PutFixed64(&file_, kTableMagic);
  return std::move(file_);
}

StatusOr<std::shared_ptr<TableReader>> TableReader::Open(
    std::string contents, std::shared_ptr<ShardedLruCache> cache) {
  if (contents.size() < kFooterSize) {
    return Status::Corruption("table too small");
  }
  Slice footer(contents.data() + contents.size() - kFooterSize, kFooterSize);
  uint64_t index_offset, index_size, filter_offset, filter_size, magic;
  GetFixed64(&footer, &index_offset);
  GetFixed64(&footer, &index_size);
  GetFixed64(&footer, &filter_offset);
  GetFixed64(&footer, &filter_size);
  GetFixed64(&footer, &magic);
  if (magic != kTableMagic) return Status::Corruption("bad table magic");
  if (index_offset + index_size + kCrcSize > contents.size() ||
      filter_offset + filter_size + kCrcSize > contents.size()) {
    return Status::Corruption("bad table footer offsets");
  }
  if (!RegionChecksumOk(contents, index_offset, index_size)) {
    CorruptBlockCounter().Increment();
    return Status::Corruption("index block checksum mismatch");
  }
  if (!RegionChecksumOk(contents, filter_offset, filter_size)) {
    CorruptBlockCounter().Increment();
    return Status::Corruption("filter block checksum mismatch");
  }
  static std::atomic<uint64_t> next_table_id{1};
  auto table = std::shared_ptr<TableReader>(new TableReader());
  table->contents_ = std::move(contents);
  table->cache_ = std::move(cache);
  table->id_ = next_table_id.fetch_add(1, std::memory_order_relaxed);
  table->filter_data_ =
      table->contents_.substr(filter_offset, filter_size);
  Slice index_block(table->contents_.data() + index_offset, index_size);
  BlockIterator it(index_block);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    Slice handle = it.value();
    uint64_t offset, size;
    if (!GetFixed64(&handle, &offset) || !GetFixed64(&handle, &size) ||
        offset + size + kCrcSize > table->contents_.size()) {
      return Status::Corruption("bad index entry");
    }
    table->index_entries_.push_back(
        {it.key().ToString(), offset, size});
  }
  if (it.corrupted()) return Status::Corruption("corrupt index block");
  return table;
}

bool TableReader::MayContain(const Slice& key) const {
  if (filter_data_.empty()) return true;
  return BloomFilterReader(Slice(filter_data_)).MayContain(key);
}

Status TableReader::ReadBlock(size_t index, Slice* out,
                              std::shared_ptr<const std::string>* pin) const {
  const IndexEntry& e = index_entries_[index];
  if (cache_ != nullptr) {
    if (auto cached = cache_->Lookup(id_, index)) {
      *out = Slice(*cached);
      *pin = std::move(cached);
      return Status::OK();
    }
  }
  if (!RegionChecksumOk(contents_, e.offset, e.size)) {
    CorruptBlockCounter().Increment();
    return Status::Corruption("data block " + std::to_string(index) +
                              " checksum mismatch");
  }
  if (cache_ != nullptr) {
    // Cache a verified copy; future readers skip the CRC pass.
    auto copy = std::make_shared<const std::string>(
        contents_.data() + e.offset, e.size);
    cache_->Insert(id_, index, copy);
    *out = Slice(*copy);
    *pin = std::move(copy);
    return Status::OK();
  }
  pin->reset();
  *out = Slice(contents_.data() + e.offset, e.size);
  return Status::OK();
}

Status TableReader::VerifyAllBlocks() const {
  // Always verifies the file bytes themselves, bypassing the cache —
  // this is the recovery-time bit-rot check.
  for (size_t i = 0; i < index_entries_.size(); ++i) {
    const IndexEntry& e = index_entries_[i];
    if (!RegionChecksumOk(contents_, e.offset, e.size)) {
      CorruptBlockCounter().Increment();
      return Status::Corruption("data block " + std::to_string(i) +
                                " checksum mismatch");
    }
  }
  return Status::OK();
}

Status TableReader::Get(const Slice& key, std::string* value) const {
  if (!MayContain(key)) return Status::NotFound("bloom miss");
  // Binary search for the first block whose last key >= key.
  size_t lo = 0, hi = index_entries_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (Slice(index_entries_[mid].last_key).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == index_entries_.size()) return Status::NotFound("past last block");
  Slice block;
  std::shared_ptr<const std::string> pin;
  KB_RETURN_IF_ERROR(ReadBlock(lo, &block, &pin));
  BlockIterator it(block);
  it.Seek(key);
  if (it.corrupted()) return Status::Corruption("corrupt data block");
  if (it.Valid() && it.key() == key) {
    *value = it.value().ToString();
    return Status::OK();
  }
  return Status::NotFound("key absent");
}

TableReader::Iterator::Iterator(const TableReader* table) : table_(table) {}

void TableReader::Iterator::LoadBlock(size_t index) {
  block_index_ = index;
  if (index >= table_->index_entries_.size()) {
    block_iter_.reset();
    pin_.reset();
    return;
  }
  Slice block;
  if (!table_->ReadBlock(index, &block, &pin_).ok()) {
    block_iter_.reset();
    pin_.reset();
    corrupted_ = true;
    return;
  }
  block_iter_.emplace(block);
  block_iter_->SeekToFirst();
  if (block_iter_->corrupted()) {
    corrupted_ = true;
    block_iter_.reset();
  }
}

bool TableReader::Iterator::Valid() const {
  return block_iter_.has_value() && block_iter_->Valid();
}

void TableReader::Iterator::SeekToFirst() { LoadBlock(0); }

void TableReader::Iterator::Seek(const Slice& target) {
  size_t lo = 0, hi = table_->index_entries_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (Slice(table_->index_entries_[mid].last_key).compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  LoadBlock(lo);
  if (block_iter_.has_value()) {
    block_iter_->Seek(target);
    if (!block_iter_->Valid()) LoadBlock(lo + 1);
  }
}

void TableReader::Iterator::Next() {
  assert(Valid());
  block_iter_->Next();
  if (!block_iter_->Valid()) LoadBlock(block_index_ + 1);
}

Slice TableReader::Iterator::key() const { return block_iter_->key(); }
Slice TableReader::Iterator::value() const { return block_iter_->value(); }

}  // namespace storage
}  // namespace kb
