#ifndef KBFORGE_STORAGE_SSTABLE_H_
#define KBFORGE_STORAGE_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>

#include "storage/block.h"
#include "util/bloom_filter.h"
#include "util/lru_cache.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace kb {
namespace storage {

/// Options controlling SSTable layout.
struct TableOptions {
  size_t block_size = 4096;      ///< target uncompressed data block size
  int restart_interval = 16;     ///< keys between restart points
  int bloom_bits_per_key = 10;   ///< 0 disables the per-table Bloom filter
};

/// Writes an immutable sorted table:
///   [data block | crc32]* [filter | crc32] [index block | crc32] [footer]
/// Every region is followed by a CRC32 of its bytes, so bit rot
/// anywhere in the file is detected as Status::Corruption instead of
/// being parsed into garbage. The index block maps each data block's
/// last key to its (offset, size); the crc sits at offset + size.
class TableBuilder {
 public:
  explicit TableBuilder(TableOptions options = TableOptions());

  /// Keys must arrive in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Finalizes the table and returns its serialized bytes.
  std::string Finish();

  size_t num_entries() const { return num_entries_; }

 private:
  void FlushDataBlock();

  TableOptions options_;
  std::string file_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  std::string last_key_;
  size_t num_entries_ = 0;
  bool pending_index_entry_ = false;
  uint64_t pending_offset_ = 0;
  uint64_t pending_size_ = 0;
};

/// Reads an SSTable previously produced by TableBuilder. The table
/// contents are held in memory (mmap-free simplification). Block
/// checksums are verified when a block is first read; with a block
/// cache attached, subsequent reads of the same block are served from
/// the already-verified cached copy, skipping the CRC pass. A corrupt
/// block surfaces as Status::Corruption from Get (or corrupted() on an
/// iterator), never as undefined behaviour.
class TableReader {
 public:
  /// Parses the footer and index (verifying their checksums); returns
  /// Corruption on malformed data. `cache` (optional, shared across
  /// tables) caches verified data blocks keyed by (table id, block
  /// index); each reader gets a process-unique id, so a re-opened
  /// table never aliases a stale cache entry.
  static StatusOr<std::shared_ptr<TableReader>> Open(
      std::string contents, std::shared_ptr<ShardedLruCache> cache = nullptr);

  /// Point lookup. Returns NotFound if absent (after Bloom check),
  /// Corruption if the covering block fails its checksum.
  Status Get(const Slice& key, std::string* value) const;

  /// Whether the Bloom filter rules the key out (used by stats/benches).
  bool MayContain(const Slice& key) const;

  /// Checks every data block against its stored CRC32. Used by
  /// KVStore::Recover to quarantine silently-corrupted tables.
  Status VerifyAllBlocks() const;

  size_t num_blocks() const { return index_entries_.size(); }

  /// Process-unique reader id (the block-cache key namespace).
  uint64_t id() const { return id_; }

  /// Forward iterator over all entries in key order. A block that
  /// fails its checksum ends iteration with corrupted() == true.
  class Iterator {
   public:
    explicit Iterator(const TableReader* table);
    bool Valid() const;
    void SeekToFirst();
    void Seek(const Slice& target);
    void Next();
    Slice key() const;
    Slice value() const;
    /// True if iteration hit a checksum or block-format failure.
    bool corrupted() const { return corrupted_; }

   private:
    void LoadBlock(size_t index);
    const TableReader* table_;
    size_t block_index_ = 0;
    std::optional<BlockIterator> block_iter_;
    /// Keeps a cached block alive while block_iter_ points into it.
    std::shared_ptr<const std::string> pin_;
    bool corrupted_ = false;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  TableReader() = default;

  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };

  /// Checksum-verified view of block `index`. On a cache hit `*out`
  /// points into the pinned cached copy (set in `*pin`); otherwise it
  /// points into contents_ and `*pin` is cleared.
  Status ReadBlock(size_t index, Slice* out,
                   std::shared_ptr<const std::string>* pin) const;

  std::string contents_;
  std::vector<IndexEntry> index_entries_;
  std::string filter_data_;
  std::shared_ptr<ShardedLruCache> cache_;
  uint64_t id_ = 0;
};

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_SSTABLE_H_
