#include "storage/stored_triple_source.h"

#include <algorithm>
#include <vector>

namespace kb {
namespace storage {

TripleOrder ToTripleOrder(rdf::ScanOrder order) {
  switch (order) {
    case rdf::ScanOrder::kSpo:
      return TripleOrder::kSpo;
    case rdf::ScanOrder::kPos:
      return TripleOrder::kPos;
    case rdf::ScanOrder::kOsp:
      return TripleOrder::kOsp;
  }
  return TripleOrder::kSpo;
}

namespace {

/// [start_key, end_key) covering every key that can match `pattern`
/// under `order` (bound components beyond the sort prefix are filtered
/// after decoding).
void PatternKeyRange(rdf::ScanOrder order, const rdf::TriplePattern& pattern,
                     std::string* start_key, std::string* end_key) {
  TripleOrder tag = ToTripleOrder(order);
  rdf::TermId key[3];
  rdf::Triple as_triple(pattern.s, pattern.p, pattern.o);
  rdf::ComponentsInOrder(order, as_triple, key);
  switch (rdf::BoundPrefixLength(order, pattern)) {
    case 0:
      *start_key = std::string(1, static_cast<char>(tag));
      break;
    case 1:
      *start_key = EncodeTriplePrefix(tag, key[0]);
      break;
    case 2:
      *start_key = EncodeTriplePrefix(tag, key[0], key[1]);
      break;
    default:
      *start_key =
          EncodeTripleKey(tag, rdf::TripleFromOrder(order, key[0], key[1],
                                                    key[2]));
      break;
  }
  *end_key = PrefixUpperBound(*start_key);
}

/// Pull iterator over one key range of the LSM store, reading in
/// bounded chunks so the store mutex is never held for a full result.
class StoredScanIterator : public rdf::ScanIterator {
 public:
  StoredScanIterator(KvReader* store, rdf::ScanOrder order,
                     const rdf::TriplePattern& pattern, size_t batch_size)
      : store_(store),
        order_(order),
        pattern_(pattern),
        batch_size_(std::max<size_t>(batch_size, 1)) {
    PatternKeyRange(order, pattern, &cursor_, &end_key_);
    Refill();
  }

  bool Valid() const override { return pos_ < batch_.size(); }
  const rdf::Triple& Value() const override { return batch_[pos_]; }

  void Next() override {
    ++pos_;
    if (pos_ >= batch_.size() && !exhausted_) Refill();
  }

  void Seek(const rdf::Triple& target) override {
    // Within the current batch: binary search (batch is sorted in
    // order_ space). Past it: restart the range scan at the target key.
    auto less = [this](const rdf::Triple& a, const rdf::Triple& b) {
      return rdf::LessInOrder(order_, a, b);
    };
    auto it = std::lower_bound(batch_.begin() + static_cast<long>(pos_),
                               batch_.end(), target, less);
    if (it != batch_.end() || exhausted_) {
      pos_ = static_cast<size_t>(it - batch_.begin());
      return;
    }
    std::string target_key = EncodeTripleKey(ToTripleOrder(order_), target);
    if (target_key > cursor_) cursor_ = std::move(target_key);
    Refill();
  }

  rdf::ScanOrder order() const override { return order_; }
  Status status() const override { return status_; }

 private:
  void Refill() {
    pos_ = 0;
    // Loop while chunks come back all-non-matching, so one Refill call
    // always lands on a match or the end of the range.
    do {
      batch_.clear();
      if (exhausted_ || !status_.ok()) return;
      size_t visited = 0;
      std::string last_key;
      Status s = store_->Scan(
          cursor_, end_key_, [&](const Slice& key, const Slice&) {
            ++visited;
            last_key.assign(key.data(), key.size());
            TripleOrder tag;
            rdf::Triple t;
            if (DecodeTripleKey(key, &tag, &t) && pattern_.Matches(t)) {
              batch_.push_back(t);
            }
            return visited < batch_size_;
          });
      if (!s.ok()) {
        status_ = s;
        batch_.clear();
        exhausted_ = true;
        return;
      }
      if (visited < batch_size_) {
        exhausted_ = true;  // the scan ran off the end of the range
      } else {
        cursor_ = last_key + '\0';  // smallest key after last_key
      }
    } while (batch_.empty() && !exhausted_);
  }

  KvReader* store_;
  rdf::ScanOrder order_;
  rdf::TriplePattern pattern_;
  size_t batch_size_;
  std::string cursor_;   ///< next chunk starts here
  std::string end_key_;  ///< exclusive range end ("" = keyspace end)
  std::vector<rdf::Triple> batch_;
  size_t pos_ = 0;
  bool exhausted_ = false;
  Status status_ = Status::OK();
};

}  // namespace

std::unique_ptr<rdf::ScanIterator> StoredTripleSource::NewScan(
    const rdf::TriplePattern& pattern) const {
  rdf::ScanOrder order = rdf::ChooseScanOrder(pattern);
  return std::make_unique<StoredScanIterator>(store_, order, pattern,
                                              batch_size_);
}

size_t StoredTripleSource::EstimateCount(
    const rdf::TriplePattern& pattern) const {
  rdf::ScanOrder order = rdf::ChooseScanOrder(pattern);
  std::string start_key, end_key;
  PatternKeyRange(order, pattern, &start_key, &end_key);
  size_t visited = 0;
  size_t matches = 0;
  store_->Scan(start_key, end_key, [&](const Slice& key, const Slice&) {
    ++visited;
    TripleOrder tag;
    rdf::Triple t;
    if (DecodeTripleKey(key, &tag, &t) && pattern.Matches(t)) {
      ++matches;
    }
    return visited < kEstimateCap;
  });
  return matches;
}

}  // namespace storage
}  // namespace kb
