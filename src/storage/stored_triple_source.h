#ifndef KBFORGE_STORAGE_STORED_TRIPLE_SOURCE_H_
#define KBFORGE_STORAGE_STORED_TRIPLE_SOURCE_H_

#include <memory>

#include "rdf/triple_source.h"
#include "storage/kv_store.h"
#include "storage/triple_codec.h"

namespace kb {
namespace storage {

/// A rdf::TripleSource over the triples persisted in a KvReader-backed
/// engine (KVStore or ShardedKVStore) by core::KbStorage ('S'/'P'/'O'
/// keys from triple_codec), so the query executor runs the same
/// operator pipelines against the LSM engine that it runs against the
/// in-memory TripleStore.
///
/// Iterators read in bounded *chunks*: each refill scans at most
/// `batch_size` keys into a decoded batch, remembers where it stopped,
/// and resumes from there on the next refill. Each chunk sees a
/// consistent engine snapshot; a write that lands inside an
/// already-consumed chunk is not observed (read committed, not
/// snapshot isolation — the in-memory store's Snapshot() is the
/// stronger tool when that matters).
class StoredTripleSource : public rdf::TripleSource {
 public:
  /// `store` must outlive this source and all its iterators.
  explicit StoredTripleSource(KvReader* store, size_t batch_size = 256)
      : store_(store), batch_size_(batch_size) {}

  std::unique_ptr<rdf::ScanIterator> NewScan(
      const rdf::TriplePattern& pattern) const override;

  /// Counts matches by scanning the pattern's key range, capped at
  /// `kEstimateCap` visited keys — a bounded-cost estimate for join
  /// ordering, not an exact count.
  size_t EstimateCount(const rdf::TriplePattern& pattern) const override;

  static constexpr size_t kEstimateCap = 1024;

 private:
  KvReader* store_;
  size_t batch_size_;
};

/// Maps an in-memory scan order to its on-disk key tag.
TripleOrder ToTripleOrder(rdf::ScanOrder order);

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_STORED_TRIPLE_SOURCE_H_
