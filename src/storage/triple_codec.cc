#include "storage/triple_codec.h"

namespace kb {
namespace storage {

namespace {
void AppendBigEndian32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

bool ReadBigEndian32(const Slice& s, size_t offset, uint32_t* v) {
  if (offset + 4 > s.size()) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(s.data() + offset);
  *v = (static_cast<uint32_t>(p[0]) << 24) |
       (static_cast<uint32_t>(p[1]) << 16) |
       (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  return true;
}

void Permute(TripleOrder order, const rdf::Triple& t, uint32_t out[3]) {
  switch (order) {
    case TripleOrder::kSpo:
      out[0] = t.s;
      out[1] = t.p;
      out[2] = t.o;
      break;
    case TripleOrder::kPos:
      out[0] = t.p;
      out[1] = t.o;
      out[2] = t.s;
      break;
    case TripleOrder::kOsp:
      out[0] = t.o;
      out[1] = t.s;
      out[2] = t.p;
      break;
  }
}

rdf::Triple Unpermute(TripleOrder order, const uint32_t in[3]) {
  switch (order) {
    case TripleOrder::kSpo:
      return rdf::Triple(in[0], in[1], in[2]);
    case TripleOrder::kPos:
      return rdf::Triple(in[2], in[0], in[1]);
    case TripleOrder::kOsp:
      return rdf::Triple(in[1], in[2], in[0]);
  }
  return rdf::Triple();
}
}  // namespace

std::string EncodeTripleKey(TripleOrder order, const rdf::Triple& t) {
  std::string key;
  key.reserve(13);
  key.push_back(static_cast<char>(order));
  uint32_t parts[3];
  Permute(order, t, parts);
  for (uint32_t part : parts) AppendBigEndian32(&key, part);
  return key;
}

bool DecodeTripleKey(const Slice& key, TripleOrder* order, rdf::Triple* t) {
  if (key.size() != 13) return false;
  char tag = key[0];
  if (tag != 'S' && tag != 'P' && tag != 'O') return false;
  *order = static_cast<TripleOrder>(tag);
  uint32_t parts[3];
  for (int i = 0; i < 3; ++i) {
    if (!ReadBigEndian32(key, 1 + 4 * static_cast<size_t>(i), &parts[i])) {
      return false;
    }
  }
  *t = Unpermute(*order, parts);
  return true;
}

std::string EncodeTriplePrefix(TripleOrder order, rdf::TermId first) {
  std::string key;
  key.reserve(5);
  key.push_back(static_cast<char>(order));
  AppendBigEndian32(&key, first);
  return key;
}

std::string EncodeTriplePrefix(TripleOrder order, rdf::TermId first,
                               rdf::TermId second) {
  std::string key;
  key.reserve(9);
  key.push_back(static_cast<char>(order));
  AppendBigEndian32(&key, first);
  AppendBigEndian32(&key, second);
  return key;
}

std::string PrefixUpperBound(const std::string& prefix) {
  std::string out = prefix;
  for (size_t i = out.size(); i > 0; --i) {
    unsigned char c = static_cast<unsigned char>(out[i - 1]);
    if (c != 0xff) {
      out[i - 1] = static_cast<char>(c + 1);
      out.resize(i);
      return out;
    }
  }
  return std::string();  // whole keyspace
}

}  // namespace storage
}  // namespace kb
