#ifndef KBFORGE_STORAGE_TRIPLE_CODEC_H_
#define KBFORGE_STORAGE_TRIPLE_CODEC_H_

#include <string>

#include "rdf/triple.h"
#include "util/slice.h"

namespace kb {
namespace storage {

/// Encodes dictionary-encoded triples as KVStore keys whose bytewise
/// order equals SPO order (big-endian fixed32 components), so that
/// range scans over the store enumerate a subject's facts contiguously.
/// A one-byte permutation tag prefixes the key, letting one store hold
/// several collation orders side by side (the on-disk analogue of the
/// in-memory SPO/POS/OSP indexes).
enum class TripleOrder : char { kSpo = 'S', kPos = 'P', kOsp = 'O' };

/// Encodes a triple into a 13-byte key in the given collation order.
std::string EncodeTripleKey(TripleOrder order, const rdf::Triple& t);

/// Decodes a key produced by EncodeTripleKey. Returns false on
/// malformed input.
bool DecodeTripleKey(const Slice& key, TripleOrder* order, rdf::Triple* t);

/// Key prefix selecting all triples with the given first component
/// under `order` (e.g. all facts of one subject in SPO order).
std::string EncodeTriplePrefix(TripleOrder order, rdf::TermId first);

/// Key prefix selecting all triples with the given first two
/// components under `order` (e.g. one subject+predicate in SPO order).
std::string EncodeTriplePrefix(TripleOrder order, rdf::TermId first,
                               rdf::TermId second);

/// Key prefix one past `prefix`'s range (for use as scan end bound).
std::string PrefixUpperBound(const std::string& prefix);

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_TRIPLE_CODEC_H_
