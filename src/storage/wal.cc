#include "storage/wal.h"

#include "util/hash.h"
#include "util/varint.h"

namespace kb {
namespace storage {

WalWriter::~WalWriter() {
  if (file_ != nullptr) file_->Close();
}

Status WalWriter::Open(Env* env, const std::string& path, WalWriter* writer) {
  writer->path_ = path;
  uint64_t existing = 0;
  if (env->FileExists(path)) {
    auto size = env->FileSize(path);
    if (!size.ok()) return size.status();
    existing = *size;
  }
  auto file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  writer->file_ = std::move(*file);
  // Treat whatever is on disk as the good prefix; KVStore recovery
  // truncates a torn tail before reopening the log for appends.
  writer->good_size_ = existing;
  writer->dirty_tail_ = false;
  return Status::OK();
}

Status WalWriter::Open(const std::string& path, WalWriter* writer) {
  return Open(Env::Default(), path, writer);
}

Status WalWriter::Append(EntryType type, const Slice& key,
                         const Slice& value) {
  if (file_ == nullptr) return Status::IOError("wal closed: " + path_);
  if (dirty_tail_) {
    // A previous append may have left a torn record; erase it so this
    // record lands on a clean boundary.
    KB_RETURN_IF_ERROR(file_->Truncate(good_size_));
    dirty_tail_ = false;
  }
  std::string payload;
  PutVarint64(&payload, key.size());
  PutVarint64(&payload, value.size());
  payload.push_back(static_cast<char>(type));
  payload.append(key.data(), key.size());
  payload.append(value.data(), value.size());
  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(Hash64(payload)));
  record += payload;
  Status s = file_->Append(Slice(record));
  if (!s.ok()) {
    dirty_tail_ = true;  // unknown how many bytes landed
    return s;
  }
  s = file_->Flush();
  if (!s.ok()) {
    dirty_tail_ = true;
    return s;
  }
  good_size_ += record.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::IOError("wal closed: " + path_);
  return file_->Sync();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  return s;
}

Status ParseWalChunk(
    const Slice& data, uint64_t* offset,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn,
    uint64_t* records, bool* corrupt) {
  if (*offset > data.size()) {
    return Status::InvalidArgument("wal chunk offset past end of data");
  }
  if (corrupt != nullptr) *corrupt = false;
  Slice input(data.data() + *offset, data.size() - *offset);
  uint64_t valid_bytes = 0, count = 0;
  while (!input.empty()) {
    Slice record = input;
    uint32_t stored_crc = 0;
    if (!GetFixed32(&record, &stored_crc)) break;
    const char* payload_start = record.data();
    uint64_t key_len = 0, value_len = 0;
    if (!GetVarint64(&record, &key_len) ||
        !GetVarint64(&record, &value_len) || record.empty()) {
      break;
    }
    EntryType type = static_cast<EntryType>(record[0]);
    record.remove_prefix(1);
    if (record.size() < key_len + value_len) break;  // torn tail
    size_t payload_size =
        static_cast<size_t>(record.data() + key_len + value_len -
                            payload_start);
    uint32_t actual_crc = static_cast<uint32_t>(
        Hash64(payload_start, payload_size));
    if (actual_crc != stored_crc) {
      // All the bytes are here yet the checksum disagrees: this is
      // corruption, not an append still in flight. File replay treats
      // it as the torn tail (truncate there); a streaming consumer
      // checks `corrupt` because for it "wait for more bytes" would
      // stall forever.
      if (corrupt != nullptr) *corrupt = true;
      break;
    }
    Slice key(record.data(), key_len);
    Slice value(record.data() + key_len, value_len);
    fn(type, key, value);
    ++count;
    valid_bytes += sizeof(uint32_t) + payload_size;
    input = Slice(record.data() + key_len + value_len,
                  record.size() - key_len - value_len);
  }
  *offset += valid_bytes;
  if (records != nullptr) *records = count;
  return Status::OK();
}

Status ReplayWal(
    Env* env, const std::string& path,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn,
    WalReplayInfo* info) {
  auto contents = env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  uint64_t offset = 0, records = 0;
  KB_RETURN_IF_ERROR(ParseWalChunk(Slice(*contents), &offset, fn, &records));
  if (info != nullptr) {
    info->records = records;
    info->valid_bytes = offset;
    info->truncated_bytes = contents->size() - offset;
  }
  return Status::OK();
}

Status ReplayWal(
    const std::string& path,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn) {
  return ReplayWal(Env::Default(), path, fn, nullptr);
}

}  // namespace storage
}  // namespace kb
