#include "storage/wal.h"

#include "storage/env.h"
#include "util/hash.h"
#include "util/varint.h"

namespace kb {
namespace storage {

Status WalWriter::Open(const std::string& path, WalWriter* writer) {
  writer->path_ = path;
  writer->out_.open(path, std::ios::binary | std::ios::app);
  if (!writer->out_) return Status::IOError("open wal: " + path);
  return Status::OK();
}

Status WalWriter::Append(EntryType type, const Slice& key,
                         const Slice& value) {
  std::string payload;
  PutVarint64(&payload, key.size());
  PutVarint64(&payload, value.size());
  payload.push_back(static_cast<char>(type));
  payload.append(key.data(), key.size());
  payload.append(value.data(), value.size());
  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(Hash64(payload)));
  record += payload;
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) return Status::IOError("wal append: " + path_);
  return Status::OK();
}

void WalWriter::Close() {
  if (out_.is_open()) out_.close();
}

Status ReplayWal(
    const std::string& path,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  Slice input(*contents);
  while (!input.empty()) {
    Slice record = input;
    uint32_t stored_crc = 0;
    if (!GetFixed32(&record, &stored_crc)) break;
    const char* payload_start = record.data();
    uint64_t key_len = 0, value_len = 0;
    if (!GetVarint64(&record, &key_len) ||
        !GetVarint64(&record, &value_len) || record.empty()) {
      break;
    }
    EntryType type = static_cast<EntryType>(record[0]);
    record.remove_prefix(1);
    if (record.size() < key_len + value_len) break;  // torn tail
    size_t payload_size =
        static_cast<size_t>(record.data() + key_len + value_len -
                            payload_start);
    uint32_t actual_crc = static_cast<uint32_t>(
        Hash64(payload_start, payload_size));
    if (actual_crc != stored_crc) break;  // corrupt record: stop replay
    Slice key(record.data(), key_len);
    Slice value(record.data() + key_len, value_len);
    fn(type, key, value);
    input = Slice(record.data() + key_len + value_len,
                  record.size() - key_len - value_len);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace kb
