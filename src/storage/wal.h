#ifndef KBFORGE_STORAGE_WAL_H_
#define KBFORGE_STORAGE_WAL_H_

#include <fstream>
#include <functional>
#include <string>

#include "storage/memtable.h"
#include "util/slice.h"
#include "util/status.h"

namespace kb {
namespace storage {

/// Append-only write-ahead log. Each record is
///   fixed32 checksum | varint key_len | varint value_len | type byte
///   | key | value
/// where the checksum covers everything after itself. Replay stops at
/// the first torn/corrupt record (standard crash-recovery semantics).
class WalWriter {
 public:
  /// Opens (creating or appending to) the log at `path`.
  static Status Open(const std::string& path, WalWriter* writer);

  /// Appends one record and flushes it to the OS.
  Status Append(EntryType type, const Slice& key, const Slice& value);

  void Close();

 private:
  std::ofstream out_;
  std::string path_;
};

/// Replays a log, invoking `fn(type, key, value)` per intact record.
/// Returns OK even if the tail is torn (that is the expected crash
/// shape); returns IOError only if the file cannot be read at all.
Status ReplayWal(
    const std::string& path,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn);

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_WAL_H_
