#ifndef KBFORGE_STORAGE_WAL_H_
#define KBFORGE_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "storage/env.h"
#include "storage/memtable.h"
#include "util/slice.h"
#include "util/status.h"

namespace kb {
namespace storage {

/// Append-only write-ahead log. Each record is
///   fixed32 checksum | varint key_len | varint value_len | type byte
///   | key | value
/// where the checksum covers everything after itself. Replay stops at
/// the first torn/corrupt record (standard crash-recovery semantics).
///
/// Durability semantics: Append pushes the record to the OS only — it
/// survives a process crash but NOT a machine crash or power loss.
/// Call Sync() (fsync through the Env) to make appended records
/// durable; the KV store does this on its write path, so a Put that
/// returned OK is actually on disk.
///
/// If an Append fails partway (torn write), the writer truncates the
/// file back to the last complete record before the next append, so a
/// retried Append cannot strand a committed record behind a torn one.
class WalWriter {
 public:
  WalWriter() = default;
  /// Closes the underlying file (best effort; errors are swallowed —
  /// call Close() explicitly to observe them).
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating or appending to) the log at `path` via `env`.
  static Status Open(Env* env, const std::string& path, WalWriter* writer);
  /// Same, on Env::Default().
  static Status Open(const std::string& path, WalWriter* writer);

  /// Appends one record and flushes it to the OS (not durable until
  /// Sync). Self-heals a previously torn tail first.
  Status Append(EntryType type, const Slice& key, const Slice& value);

  /// Makes every appended record durable (fsync).
  Status Sync();

  /// Idempotent: the first call closes the file and reports its
  /// status; later calls are no-ops returning OK.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  uint64_t good_size_ = 0;  ///< bytes holding complete records
  bool dirty_tail_ = false;  ///< a failed append may have torn the file
};

/// Replay accounting, filled by ReplayWal when requested.
struct WalReplayInfo {
  uint64_t records = 0;          ///< intact records handed to `fn`
  uint64_t valid_bytes = 0;      ///< file prefix holding those records
  uint64_t truncated_bytes = 0;  ///< torn/corrupt tail after the prefix
};

/// Parses complete records out of raw log bytes, starting at byte
/// `*offset` of `data`, invoking `fn(type, key, value)` per record and
/// advancing `*offset` past each one. Stops cleanly at a torn or
/// corrupt tail (the expected shape both for a crash and for a log
/// that is still being appended), leaving `*offset` at the end of the
/// last complete record — the resume point for the next chunk. This is
/// the incremental form of ReplayWal that WAL shipping uses to stream
/// a live log: only the complete-record prefix ever moves, so shipped
/// byte ranges are always replayable as-is.
/// `corrupt`, when supplied, distinguishes the two stop causes: true
/// means a byte-complete record failed its checksum (real damage —
/// more bytes will never fix it), false means the tail is merely
/// incomplete.
Status ParseWalChunk(
    const Slice& data, uint64_t* offset,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn,
    uint64_t* records = nullptr, bool* corrupt = nullptr);

/// Replays a log, invoking `fn(type, key, value)` per intact record.
/// Returns OK even if the tail is torn (that is the expected crash
/// shape); returns IOError only if the file cannot be read at all.
Status ReplayWal(
    Env* env, const std::string& path,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn,
    WalReplayInfo* info = nullptr);

/// Same, on Env::Default().
Status ReplayWal(
    const std::string& path,
    const std::function<void(EntryType, const Slice&, const Slice&)>& fn);

}  // namespace storage
}  // namespace kb

#endif  // KBFORGE_STORAGE_WAL_H_
