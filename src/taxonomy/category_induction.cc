#include "taxonomy/category_induction.h"

#include <unordered_set>

#include "util/string_util.h"

namespace kb {
namespace taxonomy {

namespace {

bool IsPrepositionWord(const std::string& lower) {
  static const std::unordered_set<std::string>* kPreps =
      new std::unordered_set<std::string>{
          "in", "of", "from", "by", "with", "needing", "for", "at"};
  return kPreps->count(lower) > 0;
}

bool IsAdminWord(const std::string& lower) {
  static const std::unordered_set<std::string>* kAdmin =
      new std::unordered_set<std::string>{
          "articles", "article", "stubs", "stub", "wikipedia", "pages",
          "cleanup", "unsourced", "protected", "dead", "links"};
  return kAdmin->count(lower) > 0;
}

bool IsRelationalHead(const std::string& head_lower) {
  return head_lower == "births" || head_lower == "deaths" ||
         head_lower == "establishments" || head_lower == "disestablishments";
}

struct Analysis {
  CategoryDecision decision = CategoryDecision::kTopical;
  std::string head_singular;  ///< "singer"
  std::string specific;       ///< "freedonian singer"
  int year = 0;               ///< for relational categories
};

Analysis Analyze(const std::string& category,
                 const InductionOptions& options) {
  Analysis out;
  std::vector<std::string> tokens = SplitWhitespace(category);
  if (tokens.empty()) return out;

  // Administrative filter (keyword blacklist).
  if (options.admin_filter) {
    for (const std::string& t : tokens) {
      if (IsAdminWord(ToLower(t))) {
        out.decision = CategoryDecision::kAdministrative;
        return out;
      }
    }
  }

  // The head NP is the token run before the first preposition; its last
  // token is the head noun ("Cities in Freedonia" -> "Cities";
  // "Freedonian singers" -> "singers").
  size_t head_np_end = tokens.size();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (IsPrepositionWord(ToLower(tokens[i]))) {
      head_np_end = i;
      break;
    }
  }
  if (head_np_end == 0) return out;
  const std::string head = ToLower(tokens[head_np_end - 1]);

  // Relational categories: "<year> births".
  if (options.relational_categories && IsRelationalHead(head)) {
    long long year = 0;
    if (head_np_end >= 2 && ParseInt64(tokens[0], &year)) {
      out.decision = CategoryDecision::kRelational;
      out.year = static_cast<int>(year);
      return out;
    }
  }

  if (!LooksPlural(head)) {
    out.decision = CategoryDecision::kTopical;  // "Music", "Economy of X"
    return out;
  }

  out.decision = CategoryDecision::kConceptual;
  out.head_singular = Singularize(head);
  // Specific class keeps the pre-modifiers: "Freedonian singers" ->
  // "freedonian singer".
  std::string specific;
  for (size_t i = 0; i + 1 < head_np_end; ++i) {
    specific += ToLower(tokens[i]) + " ";
  }
  specific += out.head_singular;
  out.specific = specific;
  return out;
}

}  // namespace

CategoryDecision ClassifyCategory(const std::string& category,
                                  const InductionOptions& options,
                                  std::string* head_singular) {
  Analysis a = Analyze(category, options);
  if (head_singular != nullptr) *head_singular = a.head_singular;
  return a.decision;
}

InducedTaxonomy InduceFromCategories(
    const std::vector<corpus::Document>& docs,
    const InductionOptions& options) {
  InducedTaxonomy out;
  out.taxonomy = MakeBackboneTaxonomy();
  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    for (const std::string& category : doc.categories) {
      auto decision_it = out.decisions.find(category);
      Analysis a = Analyze(category, options);
      if (decision_it == out.decisions.end()) {
        out.decisions.emplace(category, a.decision);
      }
      if (a.decision == CategoryDecision::kRelational) {
        out.birth_years[doc.subject] = a.year;
        continue;
      }
      if (a.decision != CategoryDecision::kConceptual) continue;
      ClassId specific = out.taxonomy.Intern(a.specific);
      if (a.specific != a.head_singular) {
        ClassId general = out.taxonomy.Intern(a.head_singular);
        out.taxonomy.AddSubclass(specific, general);
      }
      out.entity_classes[doc.subject].push_back(a.specific);
      if (a.specific != a.head_singular) {
        out.entity_classes[doc.subject].push_back(a.head_singular);
      }
    }
  }
  return out;
}

}  // namespace taxonomy
}  // namespace kb
