#ifndef KBFORGE_TAXONOMY_CATEGORY_INDUCTION_H_
#define KBFORGE_TAXONOMY_CATEGORY_INDUCTION_H_

#include <map>
#include <string>
#include <vector>

#include "corpus/document.h"
#include "taxonomy/taxonomy.h"

namespace kb {
namespace taxonomy {

/// How the inducer classified one category string.
enum class CategoryDecision : uint8_t {
  kConceptual = 0,  ///< plural head noun -> becomes a class
  kRelational,      ///< "1955 births"-style -> yields a fact, not a class
  kAdministrative,  ///< maintenance category -> dropped
  kTopical,         ///< singular/mass head -> thematic link, not a class
};

/// Options for the WikiTaxonomy-style inducer (E2 ablations).
struct InductionOptions {
  /// Treat "<year> births|deaths|establishments" as relational
  /// (YAGO-style). Off = they wrongly become classes.
  bool relational_categories = true;
  /// Filter maintenance categories by keyword blacklist.
  bool admin_filter = true;
};

/// The result of category analysis over a document collection.
struct InducedTaxonomy {
  Taxonomy taxonomy;
  /// entity (by article doc id) -> induced class names.
  std::map<uint32_t, std::vector<std::string>> entity_classes;
  /// category string -> decision (for precision analysis).
  std::map<std::string, CategoryDecision> decisions;
  /// Relational yield: article subject -> birth year from "NNNN births".
  std::map<uint32_t, int> birth_years;
};

/// Classifies one category name. Exposed for unit tests.
CategoryDecision ClassifyCategory(const std::string& category,
                                  const InductionOptions& options,
                                  std::string* head_singular);

/// Analyzes the category system of `docs` (articles only) and induces
/// a class taxonomy, linking induced classes into the backbone where
/// the head noun is known. This is the Wikipedia-based method of the
/// tutorial's §2 "Harvesting Knowledge on Entities and Classes".
InducedTaxonomy InduceFromCategories(const std::vector<corpus::Document>& docs,
                                     const InductionOptions& options);

}  // namespace taxonomy
}  // namespace kb

#endif  // KBFORGE_TAXONOMY_CATEGORY_INDUCTION_H_
