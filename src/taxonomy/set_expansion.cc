#include "taxonomy/set_expansion.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace kb {
namespace taxonomy {

SetExpander::SetExpander(const std::vector<corpus::Document>& docs) {
  for (const corpus::Document& doc : docs) {
    // Every "such as" enumeration is one list context; its member
    // entities are the mentions between the cue and the sentence end.
    size_t pos = 0;
    while ((pos = doc.text.find("such as", pos)) != std::string::npos) {
      size_t sentence_end = doc.text.find('.', pos);
      if (sentence_end == std::string::npos) sentence_end = doc.text.size();
      std::vector<uint32_t> members;
      for (const corpus::Mention& m : doc.mentions) {
        if (m.begin >= pos && m.end <= sentence_end) {
          members.push_back(m.entity);
        }
      }
      if (members.size() >= 2) {
        uint32_t context_id = static_cast<uint32_t>(contexts_.size());
        contexts_.push_back(members);
        for (uint32_t e : members) {
          entity_contexts_[e].push_back(context_id);
        }
      }
      pos = sentence_end;
    }
  }
}

std::vector<ExpansionCandidate> SetExpander::Expand(
    const std::set<uint32_t>& seeds, double min_score) const {
  // Union of seed contexts.
  std::unordered_set<uint32_t> seed_contexts;
  for (uint32_t seed : seeds) {
    auto it = entity_contexts_.find(seed);
    if (it == entity_contexts_.end()) continue;
    seed_contexts.insert(it->second.begin(), it->second.end());
  }
  std::vector<ExpansionCandidate> out;
  if (seed_contexts.empty()) return out;
  for (const auto& [entity, ctxs] : entity_contexts_) {
    if (seeds.count(entity) > 0) continue;
    size_t shared = 0;
    for (uint32_t c : ctxs) {
      if (seed_contexts.count(c) > 0) ++shared;
    }
    if (shared == 0) continue;
    double score = static_cast<double>(shared) /
                   std::sqrt(static_cast<double>(ctxs.size()) *
                             static_cast<double>(seed_contexts.size()));
    if (score >= min_score) {
      out.push_back({entity, score});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExpansionCandidate& a, const ExpansionCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  return out;
}

}  // namespace taxonomy
}  // namespace kb
