#ifndef KBFORGE_TAXONOMY_SET_EXPANSION_H_
#define KBFORGE_TAXONOMY_SET_EXPANSION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "corpus/document.h"

namespace kb {
namespace taxonomy {

/// One scored candidate produced by set expansion.
struct ExpansionCandidate {
  uint32_t entity = UINT32_MAX;
  double score = 0.0;
};

/// Web-based entity-class harvesting via set expansion (tutorial §2):
/// starting from a handful of seed entities of an unknown class, find
/// other members by exploiting list contexts — here, Hearst-style
/// enumerations ("singers such as A and B") in web documents.
///
/// The expander builds a bipartite graph between entities and the list
/// contexts they appear in, then scores candidates by weighted overlap
/// with the seeds' contexts (the KnowItAll/SEAL family of methods,
/// simplified to its co-occurrence core).
class SetExpander {
 public:
  /// Indexes the enumeration contexts of `docs` (web documents).
  explicit SetExpander(const std::vector<corpus::Document>& docs);

  /// Expands `seeds`, returning candidates sorted by descending score
  /// (seeds excluded). `min_score` prunes weak candidates.
  std::vector<ExpansionCandidate> Expand(const std::set<uint32_t>& seeds,
                                         double min_score = 0.0) const;

  /// Number of indexed list contexts.
  size_t num_contexts() const { return contexts_.size(); }

 private:
  // context id -> entities in that enumeration
  std::vector<std::vector<uint32_t>> contexts_;
  // entity -> context ids
  std::map<uint32_t, std::vector<uint32_t>> entity_contexts_;
};

}  // namespace taxonomy
}  // namespace kb

#endif  // KBFORGE_TAXONOMY_SET_EXPANSION_H_
