#include "taxonomy/taxonomy.h"

#include <algorithm>

namespace kb {
namespace taxonomy {

ClassId Taxonomy::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  ClassId id = static_cast<ClassId>(names_.size());
  names_.push_back(name);
  supers_.emplace_back();
  subs_.emplace_back();
  index_.emplace(name, id);
  return id;
}

ClassId Taxonomy::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidClassId : it->second;
}

bool Taxonomy::AddSubclass(ClassId sub, ClassId super) {
  if (sub == super) return false;
  auto& ups = supers_[sub];
  if (std::find(ups.begin(), ups.end(), super) != ups.end()) return false;
  // Reject cycles: super must not already be subsumed by sub.
  if (IsSubclassOf(super, sub)) return false;
  ups.push_back(super);
  subs_[super].push_back(sub);
  ++num_edges_;
  return true;
}

bool Taxonomy::IsSubclassOf(ClassId sub, ClassId super) const {
  if (sub == super) return true;
  // DFS upward.
  std::vector<ClassId> stack = {sub};
  std::vector<bool> visited(names_.size(), false);
  visited[sub] = true;
  while (!stack.empty()) {
    ClassId cur = stack.back();
    stack.pop_back();
    for (ClassId up : supers_[cur]) {
      if (up == super) return true;
      if (!visited[up]) {
        visited[up] = true;
        stack.push_back(up);
      }
    }
  }
  return false;
}

std::vector<ClassId> Taxonomy::Ancestors(ClassId id) const {
  std::vector<ClassId> out = {id};
  std::vector<bool> visited(names_.size(), false);
  visited[id] = true;
  for (size_t i = 0; i < out.size(); ++i) {
    for (ClassId up : supers_[out[i]]) {
      if (!visited[up]) {
        visited[up] = true;
        out.push_back(up);
      }
    }
  }
  return out;
}

std::vector<ClassId> Taxonomy::Roots() const {
  std::vector<ClassId> out;
  for (ClassId id = 0; id < names_.size(); ++id) {
    if (supers_[id].empty()) out.push_back(id);
  }
  return out;
}

const std::vector<std::pair<std::string, std::string>>& BackboneEdges() {
  static const auto* kEdges =
      new std::vector<std::pair<std::string, std::string>>{
          {"singer", "person"},       {"musician", "person"},
          {"entrepreneur", "person"}, {"scientist", "person"},
          {"actor", "person"},        {"politician", "person"},
          {"writer", "person"},       {"person", "entity"},
          {"city", "location"},       {"country", "location"},
          {"location", "entity"},     {"company", "organization"},
          {"university", "organization"},
          {"band", "organization"},   {"musical group", "organization"},
          {"organization", "entity"}, {"album", "work"},
          {"film", "work"},           {"work", "entity"},
      };
  return *kEdges;
}

Taxonomy MakeBackboneTaxonomy() {
  Taxonomy t;
  for (const auto& [sub, super] : BackboneEdges()) {
    t.AddSubclass(t.Intern(sub), t.Intern(super));
  }
  return t;
}

}  // namespace taxonomy
}  // namespace kb
