#ifndef KBFORGE_TAXONOMY_TAXONOMY_H_
#define KBFORGE_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace kb {
namespace taxonomy {

/// Dense id of a class node in the taxonomy.
using ClassId = uint32_t;
inline constexpr ClassId kInvalidClassId = UINT32_MAX;

/// A directed acyclic graph of classes under rdfs:subClassOf, as the
/// tutorial's §2 describes: "classes are organized into a taxonomy,
/// where more special classes are subsumed by more general classes".
/// Edge insertion refuses cycles, keeping subsumption a partial order.
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Returns the id of `name`, creating the class if new.
  ClassId Intern(const std::string& name);

  /// Returns the id or kInvalidClassId.
  ClassId Lookup(const std::string& name) const;

  const std::string& name(ClassId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

  /// Adds `sub` subClassOf `super`. Returns false (and does nothing) if
  /// the edge would create a cycle or already exists.
  bool AddSubclass(ClassId sub, ClassId super);

  /// Direct superclasses.
  const std::vector<ClassId>& Superclasses(ClassId id) const {
    return supers_[id];
  }

  /// Direct subclasses.
  const std::vector<ClassId>& Subclasses(ClassId id) const {
    return subs_[id];
  }

  /// Reflexive-transitive subsumption test.
  bool IsSubclassOf(ClassId sub, ClassId super) const;

  /// All (reflexive-transitive) superclasses of `id`, unordered.
  std::vector<ClassId> Ancestors(ClassId id) const;

  /// Classes with no superclass.
  std::vector<ClassId> Roots() const;

  /// Number of subClassOf edges.
  size_t num_edges() const { return num_edges_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ClassId> index_;
  std::vector<std::vector<ClassId>> supers_;
  std::vector<std::vector<ClassId>> subs_;
  size_t num_edges_ = 0;
};

/// The WordNet-style upper backbone KBForge links induced classes into
/// (the WordNet substitution documented in DESIGN.md). Returns pairs
/// (sub, super) of class names.
const std::vector<std::pair<std::string, std::string>>& BackboneEdges();

/// Builds a taxonomy containing just the backbone.
Taxonomy MakeBackboneTaxonomy();

}  // namespace taxonomy
}  // namespace kb

#endif  // KBFORGE_TAXONOMY_TAXONOMY_H_
