#include "taxonomy/type_inference.h"

#include "nlp/tokenizer.h"
#include "util/string_util.h"

namespace kb {
namespace taxonomy {

std::vector<std::string> LeadSentenceTypes(const corpus::Document& doc,
                                           const nlp::PosTagger& tagger) {
  std::vector<std::string> out;
  // The lead sentence is the first sentence after the infobox block.
  size_t start = doc.text.find("}}");
  start = start == std::string::npos ? 0 : start + 2;
  size_t end = doc.text.find('.', start);
  if (end == std::string::npos) return out;
  std::string_view lead(doc.text.data() + start, end - start + 1);

  auto tokens = nlp::Tokenize(lead);
  tagger.Tag(&tokens);
  // Pattern: (is|was) (a|an) <modifier>* <noun> (and <noun>)*.
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].lower != "is" && tokens[i].lower != "was") continue;
    if (tokens[i + 1].lower != "a" && tokens[i + 1].lower != "an") continue;
    size_t j = i + 2;
    // Skip adjectives / nationality modifiers (often tagged ProperNoun
    // because capitalized, e.g. "Freedonian").
    while (j < tokens.size() && (tokens[j].pos == nlp::Pos::kAdjective ||
                                 tokens[j].pos == nlp::Pos::kProperNoun)) {
      ++j;
    }
    while (j < tokens.size() && tokens[j].pos == nlp::Pos::kNoun) {
      out.push_back(tokens[j].lower);
      ++j;
      // "singer and entrepreneur"
      if (j + 1 < tokens.size() && tokens[j].lower == "and" &&
          tokens[j + 1].pos == nlp::Pos::kNoun) {
        ++j;
      }
    }
    if (!out.empty()) break;
  }
  return out;
}

EntityTypes InferTypes(const std::vector<corpus::Document>& docs,
                       const InducedTaxonomy& induced,
                       const nlp::PosTagger& tagger) {
  EntityTypes out;
  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    auto& types = out.types[doc.subject];
    auto it = induced.entity_classes.find(doc.subject);
    if (it != induced.entity_classes.end()) {
      for (const std::string& cls : it->second) {
        if (types.insert(cls).second) ++out.from_categories;
      }
    }
    for (const std::string& cls : LeadSentenceTypes(doc, tagger)) {
      if (types.insert(cls).second) ++out.from_lead_sentences;
    }
  }
  return out;
}

}  // namespace taxonomy
}  // namespace kb
