#ifndef KBFORGE_TAXONOMY_TYPE_INFERENCE_H_
#define KBFORGE_TAXONOMY_TYPE_INFERENCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "corpus/document.h"
#include "nlp/pos_tagger.h"
#include "taxonomy/category_induction.h"

namespace kb {
namespace taxonomy {

/// Entity typing result: article subject -> class names, with the
/// evidence source split out for analysis.
struct EntityTypes {
  std::map<uint32_t, std::set<std::string>> types;
  size_t from_categories = 0;
  size_t from_lead_sentences = 0;
};

/// Extracts the "X is a (Nationality)? <class>" pattern from an
/// article's lead sentence. Returns the class nouns found.
std::vector<std::string> LeadSentenceTypes(const corpus::Document& doc,
                                           const nlp::PosTagger& tagger);

/// Combines category-induced classes with lead-sentence "is a" types
/// into one typing per entity (union; categories dominate on conflict).
EntityTypes InferTypes(const std::vector<corpus::Document>& docs,
                       const InducedTaxonomy& induced,
                       const nlp::PosTagger& tagger);

}  // namespace taxonomy
}  // namespace kb

#endif  // KBFORGE_TAXONOMY_TYPE_INFERENCE_H_
