#include "temporal/scoping.h"

#include <map>

#include "extraction/extraction_metrics.h"

namespace kb {
namespace temporal {

using extraction::AnnotatedSentence;
using extraction::ExtractedFact;

std::vector<ExtractedFact> TemporalScoper::ScopeSentence(
    const AnnotatedSentence& sentence) const {
  std::vector<ExtractedFact> facts =
      extractor_->ExtractFromSentence(sentence);
  if (facts.empty()) return facts;
  std::vector<Timex> timexes = ExtractTimexes(sentence.sentence);
  if (timexes.empty()) return facts;

  for (ExtractedFact& f : facts) {
    const corpus::RelationInfo& info = corpus::GetRelationInfo(f.relation);
    // Year-literal facts already carry their year; skip.
    if (info.literal_object) continue;
    // Pick the best timex: prefer intervals, then open bounds, then a
    // plain date (which starts the fact for temporal relations).
    const Timex* best = nullptr;
    for (const Timex& t : timexes) {
      if (best == nullptr) {
        best = &t;
        continue;
      }
      auto rank = [](const Timex& x) {
        switch (x.kind) {
          case TimexKind::kInterval: return 3;
          case TimexKind::kOpenBegin: return 2;
          case TimexKind::kOpenEnd: return 2;
          case TimexKind::kDate: return 1;
        }
        return 0;
      };
      if (rank(t) > rank(*best)) best = &t;
    }
    switch (best->kind) {
      case TimexKind::kInterval:
      case TimexKind::kOpenBegin:
      case TimexKind::kOpenEnd:
        f.span = best->span;
        break;
      case TimexKind::kDate:
        if (info.temporal) f.span.begin = best->date;
        break;
    }
  }
  return facts;
}

std::vector<ExtractedFact> TemporalScoper::ScopeSentences(
    const std::vector<AnnotatedSentence>& sentences) const {
  std::vector<ExtractedFact> all;
  for (const AnnotatedSentence& s : sentences) {
    auto facts = ScopeSentence(s);
    all.insert(all.end(), facts.begin(), facts.end());
  }
  std::vector<ExtractedFact> scoped = AggregateSpans(all);
  // This path wraps the pattern extractor sentence-by-sentence, so the
  // batch API never sees the yield; record it here instead.
  extraction::RecordExtractorYield("pattern", scoped);
  return scoped;
}

std::vector<ExtractedFact> TemporalScoper::AggregateSpans(
    const std::vector<ExtractedFact>& facts) {
  std::map<std::tuple<uint32_t, int, uint32_t, int32_t>, ExtractedFact>
      merged;
  for (const ExtractedFact& f : facts) {
    auto key = std::make_tuple(f.subject, static_cast<int>(f.relation),
                               f.object, f.literal_year);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, f);
      continue;
    }
    ExtractedFact& m = it->second;
    m.confidence = std::max(m.confidence, f.confidence);
    // Earliest begin and latest end observed.
    if (f.span.begin.valid() &&
        (!m.span.begin.valid() || f.span.begin < m.span.begin)) {
      m.span.begin = f.span.begin;
    }
    if (f.span.end.valid() &&
        (!m.span.end.valid() || m.span.end < f.span.end)) {
      m.span.end = f.span.end;
    }
  }
  std::vector<ExtractedFact> out;
  out.reserve(merged.size());
  for (auto& [key, f] : merged) out.push_back(f);
  return out;
}

}  // namespace temporal
}  // namespace kb
