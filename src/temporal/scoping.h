#ifndef KBFORGE_TEMPORAL_SCOPING_H_
#define KBFORGE_TEMPORAL_SCOPING_H_

#include <vector>

#include "extraction/annotation.h"
#include "extraction/pattern_extractor.h"
#include "temporal/timex.h"

namespace kb {
namespace temporal {

/// Attaches validity timespans to relational extractions (tutorial §3
/// "inferring the timepoints of events and timespans during which
/// certain facts hold").
///
/// Per sentence: facts matched by the pattern extractor are paired with
/// the sentence's temporal expressions — an interval timex scopes the
/// fact directly; "since"/"until" open one side; a single date gives
/// the begin point of temporal relations. Observations of the same
/// statement from different sentences are then aggregated (earliest
/// begin / latest end seen).
class TemporalScoper {
 public:
  explicit TemporalScoper(const extraction::PatternExtractor* extractor)
      : extractor_(extractor) {}

  /// Extracts facts with attached spans from one sentence.
  std::vector<extraction::ExtractedFact> ScopeSentence(
      const extraction::AnnotatedSentence& sentence) const;

  /// Extracts and aggregates over a corpus of sentences.
  std::vector<extraction::ExtractedFact> ScopeSentences(
      const std::vector<extraction::AnnotatedSentence>& sentences) const;

  /// Merges span observations of identical statements.
  static std::vector<extraction::ExtractedFact> AggregateSpans(
      const std::vector<extraction::ExtractedFact>& facts);

 private:
  const extraction::PatternExtractor* extractor_;
};

}  // namespace temporal
}  // namespace kb

#endif  // KBFORGE_TEMPORAL_SCOPING_H_
