#include "temporal/timex.h"

#include "util/string_util.h"

namespace kb {
namespace temporal {

namespace {

bool YearAt(const nlp::Sentence& s, uint32_t i, int* year) {
  if (i >= s.tokens.size()) return false;
  const nlp::Token& t = s.tokens[i];
  long long v = 0;
  if (!ParseInt64(t.lower, &v)) return false;
  if (v < 1200 || v > 2100) return false;
  *year = static_cast<int>(v);
  return true;
}

bool DayAt(const nlp::Sentence& s, uint32_t i, int* day) {
  if (i >= s.tokens.size()) return false;
  long long v = 0;
  if (!ParseInt64(s.tokens[i].lower, &v)) return false;
  if (v < 1 || v > 31) return false;
  *day = static_cast<int>(v);
  return true;
}

bool WordAt(const nlp::Sentence& s, uint32_t i, const char* word) {
  return i < s.tokens.size() && s.tokens[i].lower == word;
}

}  // namespace

std::vector<Timex> ExtractTimexes(const nlp::Sentence& sentence) {
  std::vector<Timex> out;
  const auto& tokens = sentence.tokens;
  uint32_t i = 0;
  while (i < tokens.size()) {
    int year = 0, year2 = 0, day = 0;

    // "from YYYY to YYYY"
    if (WordAt(sentence, i, "from") && YearAt(sentence, i + 1, &year) &&
        WordAt(sentence, i + 2, "to") && YearAt(sentence, i + 3, &year2)) {
      Timex t;
      t.token_begin = i;
      t.token_end = i + 4;
      t.kind = TimexKind::kInterval;
      t.span.begin.year = year;
      t.span.end.year = year2;
      out.push_back(t);
      i += 4;
      continue;
    }
    // "since YYYY"
    if (WordAt(sentence, i, "since") && YearAt(sentence, i + 1, &year)) {
      Timex t;
      t.token_begin = i;
      t.token_end = i + 2;
      t.kind = TimexKind::kOpenBegin;
      t.span.begin.year = year;
      out.push_back(t);
      i += 2;
      continue;
    }
    // "until YYYY"
    if (WordAt(sentence, i, "until") && YearAt(sentence, i + 1, &year)) {
      Timex t;
      t.token_begin = i;
      t.token_end = i + 2;
      t.kind = TimexKind::kOpenEnd;
      t.span.end.year = year;
      out.push_back(t);
      i += 2;
      continue;
    }
    // "Month DD , YYYY" (comma optional)
    int month = MonthByName(tokens[i].lower);
    if (month != 0 && DayAt(sentence, i + 1, &day)) {
      uint32_t y_pos = i + 2;
      if (WordAt(sentence, y_pos, ",")) ++y_pos;
      if (YearAt(sentence, y_pos, &year)) {
        Timex t;
        t.token_begin = i;
        t.token_end = y_pos + 1;
        t.kind = TimexKind::kDate;
        t.date = Date{year, static_cast<int8_t>(month),
                      static_cast<int8_t>(day)};
        out.push_back(t);
        i = y_pos + 1;
        continue;
      }
    }
    // "Month YYYY"
    if (month != 0 && YearAt(sentence, i + 1, &year)) {
      Timex t;
      t.token_begin = i;
      t.token_end = i + 2;
      t.kind = TimexKind::kDate;
      t.date = Date{year, static_cast<int8_t>(month), 0};
      out.push_back(t);
      i += 2;
      continue;
    }
    // bare year (also covers "in YYYY"; the preposition stays outside).
    if (YearAt(sentence, i, &year)) {
      Timex t;
      t.token_begin = i;
      t.token_end = i + 1;
      t.kind = TimexKind::kDate;
      t.date = Date{year, 0, 0};
      out.push_back(t);
      ++i;
      continue;
    }
    ++i;
  }
  return out;
}

}  // namespace temporal
}  // namespace kb
