#ifndef KBFORGE_TEMPORAL_TIMEX_H_
#define KBFORGE_TEMPORAL_TIMEX_H_

#include <vector>

#include "nlp/token.h"
#include "util/date.h"

namespace kb {
namespace temporal {

/// Kinds of temporal expressions recognized by the extractor.
enum class TimexKind : uint8_t {
  kDate = 0,       ///< "February 24, 1955" / "in 1982" / bare "1955"
  kInterval,       ///< "from 1976 to 1985"
  kOpenBegin,      ///< "since 1990"
  kOpenEnd,        ///< "until 1985"
};

/// A normalized temporal expression anchored to token positions.
struct Timex {
  uint32_t token_begin = 0;
  uint32_t token_end = 0;  ///< one past last token
  TimexKind kind = TimexKind::kDate;
  Date date;       ///< for kDate
  TimeSpan span;   ///< for the other kinds
};

/// Extracts and normalizes the temporal expressions of one sentence
/// (tutorial §3 "techniques for extracting temporal expressions").
/// Handles explicit dates ("February 24, 1955"), prepositional years
/// ("in 1982", "since 1990", "until 1985") and year intervals
/// ("from 1976 to 1985"). Longest match wins; matches do not overlap.
std::vector<Timex> ExtractTimexes(const nlp::Sentence& sentence);

}  // namespace temporal
}  // namespace kb

#endif  // KBFORGE_TEMPORAL_TIMEX_H_
