#include "util/arena.h"

#include <cassert>

namespace kb {

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = alignof(std::max_align_t);
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  size_t slop = current_mod == 0 ? 0 : kAlign - current_mod;
  size_t needed = bytes + slop;
  if (needed <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
    return result;
  }
  // Fallback blocks are max_align_t-aligned by operator new[].
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocation gets its own block so we do not waste the
    // remainder of the current block.
    return AllocateNewBlock(bytes);
  }
  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;
  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.emplace_back(new char[block_bytes]);
  memory_usage_ += block_bytes + sizeof(char*);
  return blocks_.back().get();
}

}  // namespace kb
