#ifndef KBFORGE_UTIL_ARENA_H_
#define KBFORGE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace kb {

/// Bump allocator for short-lived, same-lifetime allocations (skiplist
/// nodes in the memtable). Not thread-safe; freed all at once.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage.
  char* Allocate(size_t bytes);

  /// Returns `bytes` of storage aligned for any scalar type.
  char* AllocateAligned(size_t bytes);

  /// Total bytes reserved from the heap.
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t memory_usage_ = 0;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_ARENA_H_
