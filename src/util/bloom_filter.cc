#include "util/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace kb {

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(std::max(1, bits_per_key)) {
  // k = ln(2) * bits/key, clamped to a sane range.
  num_probes_ = static_cast<int>(bits_per_key_ * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  key_hashes_.push_back(Hash64(key.data(), key.size()));
}

std::string BloomFilterBuilder::Finish() const {
  size_t bits = std::max<size_t>(64, key_hashes_.size() * bits_per_key_);
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;
  std::string out(bytes, '\0');
  for (uint64_t h : key_hashes_) {
    uint64_t delta = (h >> 17) | (h << 47);  // rotate for double hashing
    for (int j = 0; j < num_probes_; ++j) {
      size_t bit = h % bits;
      out[bit / 8] = static_cast<char>(out[bit / 8] | (1 << (bit % 8)));
      h += delta;
    }
  }
  out.push_back(static_cast<char>(num_probes_));
  return out;
}

bool BloomFilterReader::MayContain(const Slice& key) const {
  if (data_.size() < 2) return true;  // degenerate filter: no information
  size_t bytes = data_.size() - 1;
  size_t bits = bytes * 8;
  int num_probes = static_cast<unsigned char>(data_[data_.size() - 1]);
  if (num_probes <= 0 || num_probes > 30) return true;
  uint64_t h = Hash64(key.data(), key.size());
  uint64_t delta = (h >> 17) | (h << 47);
  for (int j = 0; j < num_probes; ++j) {
    size_t bit = h % bits;
    if ((static_cast<unsigned char>(data_[bit / 8]) & (1 << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace kb
