#ifndef KBFORGE_UTIL_BLOOM_FILTER_H_
#define KBFORGE_UTIL_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/slice.h"

namespace kb {

/// A classic blocked-free Bloom filter with double hashing, built in one
/// shot from a key set (as done per-SSTable in the storage layer).
class BloomFilterBuilder {
 public:
  /// `bits_per_key` ~ 10 gives ~1% false positive rate.
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Serializes the filter for the keys added so far. Layout:
  /// [bit array][1 byte probe count].
  std::string Finish() const;

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint64_t> key_hashes_;
};

/// Read-side view over a serialized filter.
class BloomFilterReader {
 public:
  /// `data` must outlive the reader.
  explicit BloomFilterReader(Slice data) : data_(data) {}

  /// False means definitely absent. True means possibly present.
  bool MayContain(const Slice& key) const;

 private:
  Slice data_;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_BLOOM_FILTER_H_
