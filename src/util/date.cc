#include "util/date.h"

#include <cctype>
#include <cstdio>

namespace kb {

std::string Date::ToString() const {
  char buf[32];
  if (!valid()) return "?";
  if (month == 0) {
    snprintf(buf, sizeof(buf), "%d", year);
  } else if (day == 0) {
    snprintf(buf, sizeof(buf), "%d-%02d", year, month);
  } else {
    snprintf(buf, sizeof(buf), "%d-%02d-%02d", year, month, day);
  }
  return buf;
}

int64_t Date::ApproxDayNumber() const {
  int m = month == 0 ? 6 : month;
  int d = day == 0 ? 15 : day;
  return static_cast<int64_t>(year) * 365 + (m - 1) * 30 + d;
}

namespace {
constexpr std::string_view kMonths[] = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};
}  // namespace

std::string_view MonthName(int month) {
  if (month < 1 || month > 12) return "";
  return kMonths[month - 1];
}

int MonthByName(std::string_view name) {
  for (int m = 1; m <= 12; ++m) {
    const std::string_view& ref = kMonths[m - 1];
    if (name.size() != ref.size()) continue;
    bool equal = true;
    for (size_t i = 0; i < ref.size(); ++i) {
      char a = static_cast<char>(tolower(static_cast<unsigned char>(name[i])));
      char b = static_cast<char>(tolower(static_cast<unsigned char>(ref[i])));
      if (a != b) {
        equal = false;
        break;
      }
    }
    if (equal) return m;
  }
  return 0;
}

bool TimeSpan::Overlaps(const TimeSpan& o) const {
  // Unbounded endpoints overlap everything on that side.
  int64_t a_begin = begin.valid() ? begin.ApproxDayNumber() : INT64_MIN;
  int64_t a_end = end.valid() ? end.ApproxDayNumber() : INT64_MAX;
  int64_t b_begin = o.begin.valid() ? o.begin.ApproxDayNumber() : INT64_MIN;
  int64_t b_end = o.end.valid() ? o.end.ApproxDayNumber() : INT64_MAX;
  return a_begin <= b_end && b_begin <= a_end;
}

std::string TimeSpan::ToString() const {
  return "[" + begin.ToString() + ", " + end.ToString() + "]";
}

}  // namespace kb
