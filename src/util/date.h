#ifndef KBFORGE_UTIL_DATE_H_
#define KBFORGE_UTIL_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace kb {

/// A calendar date with optional month/day (0 = unknown), as needed for
/// temporal knowledge ("1955", "February 1955", "1955-02-24" are all
/// valid granularities).
struct Date {
  int32_t year = 0;   // 0 = unknown date
  int8_t month = 0;   // 1..12, 0 = unknown
  int8_t day = 0;     // 1..31, 0 = unknown

  bool valid() const { return year != 0; }

  /// Lexicographic comparison at the finest shared granularity.
  bool operator<(const Date& o) const {
    if (year != o.year) return year < o.year;
    if (month != o.month) return month < o.month;
    return day < o.day;
  }
  bool operator==(const Date& o) const {
    return year == o.year && month == o.month && day == o.day;
  }

  /// xsd:date-style rendering, truncated to known granularity
  /// ("1955", "1955-02", "1955-02-24").
  std::string ToString() const;

  /// Days since year 0 (proleptic, month/day unknown treated as mid-
  /// period); used only for interval arithmetic, not display.
  int64_t ApproxDayNumber() const;
};

/// English month name ("February") for month in [1, 12]; "" otherwise.
std::string_view MonthName(int month);

/// Inverse of MonthName (case-insensitive); 0 if not a month name.
int MonthByName(std::string_view name);

/// A (possibly half-open) validity interval for a fact.
struct TimeSpan {
  Date begin;  // invalid() = unbounded / unknown start
  Date end;    // invalid() = unbounded / unknown end

  bool valid() const { return begin.valid() || end.valid(); }

  /// True if the two spans could overlap given their granularity.
  bool Overlaps(const TimeSpan& o) const;

  /// "[1976-04, 1985]" style rendering.
  std::string ToString() const;

  bool operator==(const TimeSpan& o) const {
    return begin == o.begin && end == o.end;
  }
};

}  // namespace kb

#endif  // KBFORGE_UTIL_DATE_H_
