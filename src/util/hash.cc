#include "util/hash.h"

namespace kb {

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint32_t Crc32(const void* data, size_t n) {
  // Table-driven, table built once on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace kb
