#include "util/hash.h"

namespace kb {

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace kb
