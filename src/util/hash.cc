#include "util/hash.h"

namespace kb {

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint32_t Crc32(const void* data, size_t n) {
  // Slicing-by-8: eight derived tables let the loop fold 8 input bytes
  // per iteration instead of 1 — snapshot attach verifies whole mmap'd
  // files through this, so the byte-at-a-time version was the cold-
  // start bottleneck. Same polynomial, bit-identical results.
  using Tables = uint32_t[8][256];
  static const Tables& tables = []() -> const Tables& {
    static Tables t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
      }
    }
    return t;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  while (n >= 8) {
    // Little-endian host assumption, same as the storage codecs.
    uint32_t lo, hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    crc ^= lo;
    crc = tables[7][crc & 0xffu] ^ tables[6][(crc >> 8) & 0xffu] ^
          tables[5][(crc >> 16) & 0xffu] ^ tables[4][crc >> 24] ^
          tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
          tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) {
    crc = tables[0][(crc ^ *p) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace kb
