#ifndef KBFORGE_UTIL_HASH_H_
#define KBFORGE_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace kb {

/// 64-bit FNV-1a over arbitrary bytes; stable across platforms and runs,
/// so it is safe to persist (used by Bloom filters in SSTables).
uint64_t Hash64(const void* data, size_t n,
                uint64_t seed = 0xcbf29ce484222325ULL);

inline uint64_t Hash64(std::string_view s,
                       uint64_t seed = 0xcbf29ce484222325ULL) {
  return Hash64(s.data(), s.size(), seed);
}

/// Mixes a 64-bit value (splitmix64 finalizer); good avalanche behaviour.
uint64_t Mix64(uint64_t x);

/// CRC-32 (IEEE 802.3 polynomial, the zlib/leveldb one); stable across
/// platforms and runs, so it is safe to persist. Used for SSTable block
/// footers, where detecting bit flips matters more than speed.
uint32_t Crc32(const void* data, size_t n);

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Combines two hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace kb

#endif  // KBFORGE_UTIL_HASH_H_
