#include "util/io_util.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

namespace kb {

ssize_t ReadFully(int fd, void* buf, size_t n) {
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::read(fd, out + done, n - done);
    if (r > 0) {
      done += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return static_cast<ssize_t>(done);  // peer closed
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && done > 0) continue;
    return -1;
  }
  return static_cast<ssize_t>(done);
}

ssize_t WriteFully(int fd, const void* buf, size_t n) {
  const char* in = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, in + done, n - done);
    if (w > 0) {
      done += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return -1;
  }
  return static_cast<ssize_t>(done);
}

ssize_t SendFully(int fd, const void* buf, size_t n) {
  const char* in = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::send(fd, in + done, n - done, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return -1;
  }
  return static_cast<ssize_t>(done);
}

}  // namespace kb
