#ifndef KBFORGE_UTIL_IO_UTIL_H_
#define KBFORGE_UTIL_IO_UTIL_H_

#include <sys/types.h>

#include <cstddef>

namespace kb {

/// Reads exactly `n` bytes from `fd` into `buf`, looping over short
/// reads and retrying EINTR (a signal delivered mid-read must not tear
/// a protocol frame). Returns:
///   n      on success,
///   0..n-1 when the peer closed the stream mid-way (clean EOF),
///   -1     on error, with errno preserved from the failing read().
/// A read that returns EAGAIN/EWOULDBLOCK after partial progress is
/// retried (a receive timeout re-arms per call, so a trickling sender
/// still completes); with zero progress it is surfaced as -1 so idle
/// pollers can distinguish "no frame yet" from a torn one.
ssize_t ReadFully(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes, looping over short writes and retrying
/// EINTR. Returns n on success or -1 on error (errno preserved);
/// unlike reads there is no clean partial outcome — a short final
/// write is an error. EAGAIN is an error, not a retry: on a socket
/// with a send timeout it means the peer stopped draining, and
/// spinning on it would hang the writer.
ssize_t WriteFully(int fd, const void* buf, size_t n);

/// WriteFully for sockets: same contract, but uses send(MSG_NOSIGNAL)
/// so writing to a peer-closed connection fails with EPIPE instead of
/// raising SIGPIPE — a server must not die because one client hung up.
ssize_t SendFully(int fd, const void* buf, size_t n);

}  // namespace kb

#endif  // KBFORGE_UTIL_IO_UTIL_H_
