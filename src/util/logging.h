#ifndef KBFORGE_UTIL_LOGGING_H_
#define KBFORGE_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kb {

/// Severity levels for the minimal logging facility.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define KB_LOG(level)                                                       \
  if (::kb::LogLevel::k##level < ::kb::GetLogLevel()) {                     \
  } else                                                                    \
    ::kb::internal::LogMessage(::kb::LogLevel::k##level, __FILE__,          \
                               __LINE__)                                    \
        .stream()

/// Always-on invariant check; aborts with a message when violated.
#define KB_CHECK(cond)                                                     \
  if (cond) {                                                              \
  } else                                                                   \
    ::kb::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define KB_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::kb::Status _kb_chk = (expr);                                         \
    KB_CHECK(_kb_chk.ok()) << _kb_chk.ToString();                          \
  } while (0)

#ifndef NDEBUG
#define KB_DCHECK(cond) KB_CHECK(cond)
#else
#define KB_DCHECK(cond) \
  if (true) {           \
  } else                \
    ::kb::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()
#endif

}  // namespace kb

#endif  // KBFORGE_UTIL_LOGGING_H_
