#include "util/lru_cache.h"

#include "util/hash.h"

namespace kb {

namespace {
/// Per-entry bookkeeping charged against capacity besides the payload
/// (list node, hash slot, key, control block — a round estimate).
constexpr size_t kEntryOverhead = 64;

size_t RoundUpPow2(int n) {
  size_t p = 1;
  while (static_cast<int>(p) < n) p <<= 1;
  return p;
}
}  // namespace

size_t ShardedLruCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(HashCombine(Mix64(k.id), Mix64(k.index)));
}

ShardedLruCache::ShardedLruCache(size_t capacity_bytes, int num_shards)
    : ShardedLruCache(capacity_bytes, num_shards, Instruments()) {}

ShardedLruCache::ShardedLruCache(size_t capacity_bytes, int num_shards,
                                 Instruments instruments)
    : capacity_(capacity_bytes), instruments_(instruments) {
  size_t n = RoundUpPow2(num_shards < 1 ? 1 : num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.emplace_back(new Shard());
  shard_capacity_ = capacity_ / n;
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(const Key& key) {
  size_t h = KeyHash()(key);
  return *shards_[h & (shards_.size() - 1)];
}

size_t ShardedLruCache::Charge(
    const std::shared_ptr<const std::string>& value) {
  return (value != nullptr ? value->size() : 0) + kEntryOverhead;
}

std::shared_ptr<const std::string> ShardedLruCache::Lookup(uint64_t id,
                                                           uint64_t index) {
  Key key{id, index};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    if (instruments_.misses != nullptr) instruments_.misses->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  if (instruments_.hits != nullptr) instruments_.hits->Increment();
  return it->second->value;
}

void ShardedLruCache::Insert(uint64_t id, uint64_t index,
                             std::shared_ptr<const std::string> value) {
  Key key{id, index};
  size_t charge = Charge(value);
  if (charge > shard_capacity_) return;  // would evict the whole shard
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  while (shard.bytes + charge > shard_capacity_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    if (instruments_.evictions != nullptr) instruments_.evictions->Increment();
  }
  shard.lru.push_front(Entry{key, std::move(value), charge});
  shard.index[key] = shard.lru.begin();
  shard.bytes += charge;
  ++shard.inserts;
}

void ShardedLruCache::Erase(uint64_t id, uint64_t index) {
  Key key{id, index};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->charge;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

LruCacheStats ShardedLruCache::stats() const {
  LruCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.inserts += shard->inserts;
    out.bytes_used += shard->bytes;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace kb
