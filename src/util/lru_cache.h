#ifndef KBFORGE_UTIL_LRU_CACHE_H_
#define KBFORGE_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/metrics_registry.h"

namespace kb {

/// Point-in-time usage summary aggregated across all cache shards.
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;
  size_t bytes_used = 0;
  size_t entries = 0;
};

/// A capacity-bounded LRU cache from (id, index) pairs to immutable
/// byte strings, sharded N ways so concurrent readers on different
/// keys rarely contend on the same mutex (the classic block-cache
/// design). Values are handed out as shared_ptr, so an entry evicted
/// while a reader still holds it stays valid until the reader drops
/// its pin — eviction only removes the cache's own reference.
///
/// Thread-safe. Capacity is split evenly across shards; an entry
/// larger than one shard's capacity is not cached at all.
class ShardedLruCache {
 public:
  /// Optional externally-owned counters bumped on every lookup/evict
  /// (e.g. the kv.cache_* instruments). May be left null.
  struct Instruments {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* evictions = nullptr;
  };

  /// `num_shards` is rounded up to a power of two (at least 1).
  explicit ShardedLruCache(size_t capacity_bytes, int num_shards = 16);
  ShardedLruCache(size_t capacity_bytes, int num_shards,
                  Instruments instruments);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value (moving it to the front of its shard's
  /// LRU list) or nullptr on a miss.
  std::shared_ptr<const std::string> Lookup(uint64_t id, uint64_t index);

  /// Inserts or replaces (id, index), evicting least-recently-used
  /// entries from the shard until the new entry fits.
  void Insert(uint64_t id, uint64_t index,
              std::shared_ptr<const std::string> value);

  /// Drops (id, index) if present. No-op otherwise.
  void Erase(uint64_t id, uint64_t index);

  LruCacheStats stats() const;
  size_t capacity_bytes() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Key {
    uint64_t id;
    uint64_t index;
    bool operator==(const Key& o) const {
      return id == o.id && index == o.index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> value;
    size_t charge;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
  };

  Shard& ShardFor(const Key& key);
  /// Accounted size of one entry: payload plus bookkeeping overhead.
  static size_t Charge(const std::shared_ptr<const std::string>& value);

  size_t capacity_;
  size_t shard_capacity_;
  Instruments instruments_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_LRU_CACHE_H_
