#ifndef KBFORGE_UTIL_METRICS_H_
#define KBFORGE_UTIL_METRICS_H_

#include <cstddef>

namespace kb {

/// Precision / recall / F1 accumulator shared by every evaluation in the
/// library (extraction, NED, linkage, taxonomy induction, ...).
struct PrecisionRecall {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  void AddTP(size_t n = 1) { true_positives += n; }
  void AddFP(size_t n = 1) { false_positives += n; }
  void AddFN(size_t n = 1) { false_negatives += n; }

  double precision() const {
    size_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    size_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double f1() const {
    double p = precision();
    double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  size_t predicted() const { return true_positives + false_positives; }
  size_t gold() const { return true_positives + false_negatives; }

  void Merge(const PrecisionRecall& other) {
    true_positives += other.true_positives;
    false_positives += other.false_positives;
    false_negatives += other.false_negatives;
  }
};

}  // namespace kb

#endif  // KBFORGE_UTIL_METRICS_H_
