#include "util/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace kb {

namespace {

/// Relaxed CAS-min/max over atomic doubles.
void AtomicMin(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

size_t BucketIndex(double value) {
  if (value <= Histogram::kBucketBase) return 0;
  double log = std::log2(value / Histogram::kBucketBase);
  size_t index = static_cast<size_t>(std::ceil(log));
  return std::min(index, Histogram::kNumBuckets - 1);
}

}  // namespace

void Histogram::Observe(double value) {
  if (!(value >= 0.0)) value = 0.0;  // clamps negatives and NaN
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::BucketUpperBound(size_t i) {
  return kBucketBase * std::pow(2.0, static_cast<double>(i));
}

double Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double upper = BucketUpperBound(i);
      double fraction =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << "counter " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "gauge " << name << " = " << value << "\n";
  }
  char buf[256];
  for (const auto& h : histograms) {
    snprintf(buf, sizeof(buf),
             "histogram %s: count=%llu sum=%.3f mean=%.3f min=%.3f "
             "max=%.3f p50=%.3f p90=%.3f p99=%.3f p999=%.3f",
             h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum,
             h.mean, h.min, h.max, h.p50, h.p90, h.p99, h.p999);
    out << buf << "\n";
  }
  return out.str();
}

namespace {
/// Escapes the characters our dotted metric names could plausibly
/// smuggle into a JSON string.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i) out << ",";
    out << "\"" << JsonEscape(counters[i].first)
        << "\":" << counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i) out << ",";
    out << "\"" << JsonEscape(gauges[i].first) << "\":" << gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i) out << ",";
    out << "\"" << JsonEscape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << JsonNumber(h.sum) << ",\"mean\":"
        << JsonNumber(h.mean) << ",\"min\":" << JsonNumber(h.min)
        << ",\"max\":" << JsonNumber(h.max) << ",\"p50\":"
        << JsonNumber(h.p50) << ",\"p90\":" << JsonNumber(h.p90)
        << ",\"p99\":" << JsonNumber(h.p99) << ",\"p999\":"
        << JsonNumber(h.p999) << "}";
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry& MetricsRegistry::Named(const std::string& name) {
  static std::mutex* mu = new std::mutex();
  static auto* registries =
      new std::map<std::string, std::unique_ptr<MetricsRegistry>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto& slot = (*registries)[name];
  if (slot == nullptr) slot = std::make_unique<MetricsRegistry>();
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.mean = h->mean();
    hs.p50 = h->Quantile(0.50);
    hs.p90 = h->Quantile(0.90);
    hs.p99 = h->Quantile(0.99);
    hs.p999 = h->Quantile(0.999);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace kb
