#ifndef KBFORGE_UTIL_METRICS_REGISTRY_H_
#define KBFORGE_UTIL_METRICS_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kb {

/// Monotonically increasing event count. All operations are lock-free
/// and safe to call from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, bytes resident, open tables).
/// Thread-safe; last writer wins on Set.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Lock-free exponential-bucket histogram for latencies and other
/// positive measures. Buckets double from kBucketBase; values are in
/// whatever unit the caller observes (latencies use milliseconds by
/// convention, so the range spans ~1us to ~100 days).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 48;
  static constexpr double kBucketBase = 1e-3;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  /// Approximate quantile (linear interpolation inside the bucket);
  /// `q` in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;

  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket `i` (inclusive).
  static double BucketUpperBound(size_t i);

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0, min = 0, max = 0, mean = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
};

/// A consistent-enough view of a registry (each instrument is read
/// atomically; the set of instruments is read under the registry lock).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  ///< name-sorted
  std::vector<std::pair<std::string, int64_t>> gauges;     ///< name-sorted
  std::vector<HistogramSnapshot> histograms;               ///< name-sorted

  /// Counter value by name (0 when absent).
  uint64_t counter(const std::string& name) const;
  /// Gauge value by name (0 when absent).
  int64_t gauge(const std::string& name) const;
  /// Histogram by name (nullptr when absent).
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Human-readable table, one instrument per line.
  std::string ToText() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
};

/// Process-wide named registry of counters, gauges and histograms.
///
/// Instruments are created on first use and live for the registry's
/// lifetime, so hot paths should look them up once and keep the
/// reference — updates on the returned instruments are lock-free.
/// Instrument creation/lookup and Snapshot() take a mutex.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The default process-wide registry (what the library instruments).
  static MetricsRegistry& Default();
  /// A process-wide singleton registry under `name` (created on first
  /// use) for callers that want an isolated namespace.
  static MetricsRegistry& Named(const std::string& name);

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument. References handed out earlier stay
  /// valid; concurrent updates are not lost-safe (intended for tests
  /// and bench setup, not for concurrent production use).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records wall-clock milliseconds into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(ElapsedMs());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  /// Records now and disarms the destructor; returns the elapsed ms.
  double Stop() {
    double ms = ElapsedMs();
    if (histogram_ != nullptr) histogram_->Observe(ms);
    histogram_ = nullptr;
    return ms;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_METRICS_REGISTRY_H_
