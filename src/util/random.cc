#include "util/random.h"

#include <cmath>

namespace kb {

uint64_t Rng::Zipf(uint64_t n, double s) {
  KB_DCHECK(n > 0);
  // Inverse-CDF sampling over the (truncated) harmonic weights. For the
  // corpus sizes used here an O(log n) bisection over a cached prefix sum
  // would be ideal; we use rejection sampling which is allocation-free
  // and fast for s in [0.5, 2].
  // Rejection from the bounding envelope f(r) = 1/(r+1)^s.
  while (true) {
    double u = UniformDouble();
    // Inverse of the integral of 1/x^s over [1, n+1].
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
      x = std::exp(u * std::log(static_cast<double>(n + 1)));
    } else {
      double a = 1.0 - s;
      x = std::pow(u * (std::pow(static_cast<double>(n + 1), a) - 1.0) + 1.0,
                   1.0 / a);
    }
    uint64_t r = static_cast<uint64_t>(x);  // in [1, n+1)
    if (r >= 1 && r <= n) {
      // Accept with ratio between the discrete pmf and the envelope.
      double accept = std::pow(static_cast<double>(r) / x, s);
      if (UniformDouble() < accept) return r - 1;
    }
  }
}

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  KB_DCHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  KB_DCHECK(total > 0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace kb
