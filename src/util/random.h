#ifndef KBFORGE_UTIL_RANDOM_H_
#define KBFORGE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace kb {

/// Deterministic pseudo-random source. Every stochastic component in the
/// library takes an explicit Rng (or seed) so that experiments are
/// exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    KB_DCHECK(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KB_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Normal draw.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Zipf-like draw in [0, n): rank r with probability proportional to
  /// 1/(r+1)^s. Used to give entity mentions a realistic skew.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random element; container must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    KB_DCHECK(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Draws an index according to (non-negative, not all zero) weights.
  size_t WeightedChoice(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

  /// Derives an independent child generator (for per-shard determinism).
  Rng Fork(uint64_t stream_id) {
    return Rng(engine_() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_RANDOM_H_
