#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/metrics_registry.h"

namespace kb {

namespace {
struct RetryMetrics {
  Counter& runs;
  Counter& retries;
  Counter& recoveries;  ///< runs that failed at least once, then succeeded
  Counter& exhausted;   ///< runs that used every attempt and still failed

  static RetryMetrics& Get() {
    static RetryMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new RetryMetrics{
          r.counter("retry.runs"),
          r.counter("retry.retries"),
          r.counter("retry.recoveries"),
          r.counter("retry.exhausted"),
      };
    }();
    return *m;
  }
};
}  // namespace

RetryPolicy::RetryPolicy(RetryOptions options)
    : options_(options), rng_(options.jitter_seed) {}

Status RetryPolicy::Run(const std::function<Status()>& fn) {
  return Run(fn, [](const Status& s) { return s.IsIOError(); });
}

Status RetryPolicy::Run(const std::function<Status()>& fn,
                        const std::function<bool(const Status&)>& retryable,
                        const std::function<double()>& min_sleep_ms) {
  RetryMetrics& metrics = RetryMetrics::Get();
  metrics.runs.Increment();
  Status status = Status::OK();
  double backoff = options_.base_backoff_ms;
  int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      metrics.retries.Increment();
      double cap = std::min(backoff, options_.max_backoff_ms);
      double sleep_ms = 0.0;
      if (cap > 0.0) {
        std::lock_guard<std::mutex> lock(mu_);
        sleep_ms = rng_.UniformDouble() * cap;  // full jitter
      }
      if (min_sleep_ms != nullptr) {
        sleep_ms = std::max(sleep_ms, min_sleep_ms());
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      backoff *= options_.backoff_multiplier;
    }
    status = fn();
    if (status.ok()) {
      if (attempt > 0) metrics.recoveries.Increment();
      return status;
    }
    if (!retryable(status)) return status;  // non-transient: do not retry
  }
  metrics.exhausted.Increment();
  return status;
}

}  // namespace kb
