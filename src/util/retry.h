#ifndef KBFORGE_UTIL_RETRY_H_
#define KBFORGE_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "util/random.h"
#include "util/status.h"

namespace kb {

/// Knobs for RetryPolicy. Defaults suit in-process filesystem IO:
/// a handful of quick attempts, capped exponential backoff.
struct RetryOptions {
  int max_attempts = 3;            ///< total attempts (1 = no retry)
  double base_backoff_ms = 0.1;    ///< sleep before the first retry
  double backoff_multiplier = 2.0; ///< growth per retry
  double max_backoff_ms = 50.0;    ///< cap on any single sleep
  uint64_t jitter_seed = 42;       ///< seeded full jitter in [0, backoff)
};

/// Retries an operation on *transient* failure. Only IOError is
/// considered transient: Corruption, NotFound, InvalidArgument etc.
/// describe the data, not the attempt, and are returned immediately.
///
/// Backoff: attempt k (0-based) sleeps uniform(0, min(base * mult^k,
/// max)) milliseconds — "full jitter", drawn from a seeded RNG so runs
/// are reproducible. With base_backoff_ms = 0 retries are immediate
/// (what tests use).
///
/// Thread-safe; one policy can serve concurrent call sites. Outcomes
/// are counted in MetricsRegistry::Default() under retry.* (runs,
/// retries, recoveries, exhausted).
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = RetryOptions());

  /// Runs `fn` until it returns OK, a non-transient status, or
  /// attempts are exhausted; returns the last status.
  Status Run(const std::function<Status()>& fn);

  /// Same loop with a caller-supplied transience test, for call sites
  /// whose retryable failures are not IOError (a KbClient treating
  /// Unavailable overload sheds as transient, a router absorbing a
  /// dead replica). `min_sleep_ms`, when set, is consulted before each
  /// retry sleep and raises the jittered backoff to at least that
  /// value — how a server's retry_after_ms hint is honored without
  /// abandoning jitter for the un-hinted case.
  Status Run(const std::function<Status()>& fn,
             const std::function<bool(const Status&)>& retryable,
             const std::function<double()>& min_sleep_ms = nullptr);

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  std::mutex mu_;  ///< guards rng_
  Rng rng_;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_RETRY_H_
