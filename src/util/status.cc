#include "util/status.h"

namespace kb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kConnectionClosed:
      return "CONNECTION_CLOSED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace kb
