#ifndef KBFORGE_UTIL_STATUS_H_
#define KBFORGE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace kb {

/// Error categories used across the library. Modeled after the
/// Status idiom used by RocksDB / Arrow: no exceptions cross API
/// boundaries; fallible functions return Status or StatusOr<T>.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kIOError = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kAborted = 9,
  kUnavailable = 10,        ///< transient overload: retry later
  kDeadlineExceeded = 11,   ///< request gave up before completing
  /// The peer closed the connection (clean EOF, EPIPE, ECONNRESET, or
  /// a server-side idle timeout). Distinct from kIOError so clients
  /// holding long-lived connections can transparently reconnect
  /// without also retrying on genuinely torn reads.
  kConnectionClosed = 12,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy in the OK case (no
/// allocation); error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ConnectionClosed(std::string msg) {
    return Status(StatusCode::kConnectionClosed, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsConnectionClosed() const {
    return code_ == StatusCode::kConnectionClosed;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define KB_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::kb::Status _kb_status = (expr);             \
    if (!_kb_status.ok()) return _kb_status;      \
  } while (0)

}  // namespace kb

#endif  // KBFORGE_UTIL_STATUS_H_
