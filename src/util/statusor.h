#ifndef KBFORGE_UTIL_STATUSOR_H_
#define KBFORGE_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace kb {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored StatusOr is a
/// programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  /// Constructs from a value (OK status).
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// status from the enclosing function.
#define KB_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto KB_CONCAT_(_kb_sor, __LINE__) = (expr);         \
  if (!KB_CONCAT_(_kb_sor, __LINE__).ok())             \
    return KB_CONCAT_(_kb_sor, __LINE__).status();     \
  lhs = std::move(KB_CONCAT_(_kb_sor, __LINE__)).value()

#define KB_CONCAT_INNER_(a, b) a##b
#define KB_CONCAT_(a, b) KB_CONCAT_INNER_(a, b)

}  // namespace kb

#endif  // KBFORGE_UTIL_STATUSOR_H_
