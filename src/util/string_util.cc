#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace kb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsCapitalized(std::string_view s) {
  return !s.empty() && isupper(static_cast<unsigned char>(s[0]));
}

bool ParseInt64(std::string_view s, long long* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string EscapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char n = s[i + 1];
      switch (n) {
        case '\\': out += '\\'; ++i; continue;
        case '"': out += '"'; ++i; continue;
        case 'n': out += '\n'; ++i; continue;
        case 't': out += '\t'; ++i; continue;
        case 'r': out += '\r'; ++i; continue;
        default: break;
      }
    }
    out += s[i];
  }
  return out;
}

namespace {
// Irregular plurals that matter for category head nouns.
const std::unordered_map<std::string, std::string>& IrregularPlurals() {
  static const auto* m = new std::unordered_map<std::string, std::string>{
      {"people", "person"}, {"men", "man"},         {"women", "woman"},
      {"children", "child"}, {"countries", "country"}, {"cities", "city"},
      {"companies", "company"}, {"universities", "university"},
      {"parties", "party"}, {"geese", "goose"}, {"mice", "mouse"},
      {"feet", "foot"}, {"teeth", "tooth"},
  };
  return *m;
}
}  // namespace

std::string Singularize(std::string_view word) {
  std::string lower = ToLower(word);
  auto it = IrregularPlurals().find(lower);
  if (it != IrregularPlurals().end()) return it->second;
  if (EndsWith(lower, "ies") && lower.size() > 3) {
    return lower.substr(0, lower.size() - 3) + "y";
  }
  if (EndsWith(lower, "sses") || EndsWith(lower, "shes") ||
      EndsWith(lower, "ches") || EndsWith(lower, "xes")) {
    return lower.substr(0, lower.size() - 2);
  }
  if (EndsWith(lower, "s") && !EndsWith(lower, "ss") && lower.size() > 2) {
    return lower.substr(0, lower.size() - 1);
  }
  return lower;
}

std::string Pluralize(std::string_view word) {
  std::string lower = ToLower(word);
  static const std::unordered_map<std::string, std::string>* kIrregular =
      new std::unordered_map<std::string, std::string>{
          {"person", "people"}, {"man", "men"},     {"woman", "women"},
          {"child", "children"}, {"country", "countries"},
          {"city", "cities"},   {"company", "companies"},
          {"university", "universities"}, {"party", "parties"},
      };
  auto it = kIrregular->find(lower);
  if (it != kIrregular->end()) return it->second;
  if (EndsWith(lower, "y") && lower.size() > 1 &&
      std::string("aeiou").find(lower[lower.size() - 2]) ==
          std::string::npos) {
    return lower.substr(0, lower.size() - 1) + "ies";
  }
  if (EndsWith(lower, "s") || EndsWith(lower, "sh") ||
      EndsWith(lower, "ch") || EndsWith(lower, "x")) {
    return lower + "es";
  }
  return lower + "s";
}

std::string Capitalize(std::string_view word) {
  std::string out(word);
  if (!out.empty()) {
    out[0] = static_cast<char>(toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

bool LooksPlural(std::string_view word) {
  std::string lower = ToLower(word);
  if (IrregularPlurals().count(lower) > 0) return true;
  if (lower.size() <= 2) return false;
  return EndsWith(lower, "s") && !EndsWith(lower, "ss") &&
         !EndsWith(lower, "us") && !EndsWith(lower, "is");
}

}  // namespace kb
