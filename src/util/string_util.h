#ifndef KBFORGE_UTIL_STRING_UTIL_H_
#define KBFORGE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kb {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase / uppercase copies.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// True if `s` consists only of ASCII digits (and is non-empty).
bool IsDigits(std::string_view s);

/// True if the first character is an ASCII uppercase letter.
bool IsCapitalized(std::string_view s);

/// Parses a base-10 signed integer; returns false on any malformation.
bool ParseInt64(std::string_view s, long long* out);

/// Parses a floating point number; returns false on any malformation.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits);

/// Escapes characters that are special in N-Triples string literals
/// (backslash, quote, newline, tab, carriage return).
std::string EscapeNTriples(std::string_view s);

/// Inverse of EscapeNTriples. Invalid escapes are kept verbatim.
std::string UnescapeNTriples(std::string_view s);

/// A naive English plural→singular heuristic good enough for category
/// head nouns ("singers"→"singer", "cities"→"city", "people"→"person").
std::string Singularize(std::string_view word);

/// True if `word` looks like an English plural noun per Singularize.
bool LooksPlural(std::string_view word);

/// Naive English singular→plural ("city"→"cities", "person"→"people").
std::string Pluralize(std::string_view word);

/// Uppercases the first character (ASCII).
std::string Capitalize(std::string_view word);

}  // namespace kb

#endif  // KBFORGE_UTIL_STRING_UTIL_H_
