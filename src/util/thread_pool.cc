#include "util/thread_pool.h"

#include <atomic>
#include <utility>

#include "util/logging.h"

namespace kb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    KB_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk so that each worker receives a handful of tasks; dynamic
  // chunking keeps the queue short while balancing uneven work.
  size_t chunk = n / (num_threads() * 4);
  if (chunk == 0) chunk = 1;
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_threads(); ++w) {
    Submit([&next, n, chunk, &fn] {
      while (true) {
        size_t start = next.fetch_add(chunk);
        if (start >= n) return;
        size_t end = std::min(n, start + chunk);
        for (size_t i = start; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (thrown && !first_exception_) first_exception_ = thrown;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace kb
