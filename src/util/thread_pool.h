#ifndef KBFORGE_UTIL_THREAD_POOL_H_
#define KBFORGE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kb {

/// Fixed-size worker pool with a FIFO queue. Used by the harvesting
/// pipeline to shard document processing map-reduce style.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. If any
  /// task threw since the last Wait, rethrows the first such exception
  /// (the remaining tasks still ran to completion or threw silently).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for
  /// completion. Rethrows the first exception any fn(i) threw; indices
  /// handed to other workers may still run before the rethrow.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
};

}  // namespace kb

#endif  // KBFORGE_UTIL_THREAD_POOL_H_
