#include "util/varint.h"

namespace kb {

void PutVarint32(std::string* dst, uint32_t v) { PutVarint64(dst, v); }

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v) || v > 0xffffffffULL) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  input->remove_prefix(4);
  *value = v;
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  input->remove_prefix(8);
  *value = v;
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace kb
