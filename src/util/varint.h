#ifndef KBFORGE_UTIL_VARINT_H_
#define KBFORGE_UTIL_VARINT_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace kb {

/// LEB128-style variable-length encoding of unsigned integers, used by
/// the block format in the storage layer.
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

/// Appends a varint length followed by the bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& s);

/// Each Get* consumes from `input` on success and returns true; on
/// malformed input returns false leaving `input` unspecified.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes PutVarint64 would write.
int VarintLength(uint64_t v);

}  // namespace kb

#endif  // KBFORGE_UTIL_VARINT_H_
