#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <set>
#include <string>

#include "analytics/class_stats.h"
#include "analytics/pagerank.h"
#include "core/knowledge_base.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/thread_pool.h"

namespace kb {
namespace analytics {
namespace {

using rdf::Term;
using rdf::TermId;

double RankOf(const PageRankResult& result, TermId node) {
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    if (result.nodes[i] == node) return result.ranks[i];
  }
  return -1;
}

uint64_t CountOf(const ClassStatsResult& result, TermId cls) {
  for (const auto& [id, count] : result.counts) {
    if (id == cls) return count;
  }
  return 0;
}

class PageRankFixture : public ::testing::Test {
 protected:
  TermId Iri(const std::string& s) {
    return store_.dict().Intern(Term::Iri(s));
  }

  void SetUp() override {
    link_ = Iri("link");
    a_ = Iri("a");
    b_ = Iri("b");
    c_ = Iri("c");
    d_ = Iri("d");
  }

  rdf::TripleStore store_;
  TermId link_, a_, b_, c_, d_;
};

TEST_F(PageRankFixture, RanksSumToOneAndFavorLinkSinks) {
  // a, b, c all link to d; d links back to a.
  store_.Add({a_, link_, d_});
  store_.Add({b_, link_, d_});
  store_.Add({c_, link_, d_});
  store_.Add({d_, link_, a_});
  PageRankOptions options;
  PageRankResult result = ComputePageRank(store_, options, nullptr);
  EXPECT_EQ(result.nodes.size(), 4u);
  EXPECT_EQ(result.num_edges, 4u);
  double sum = 0;
  for (double r : result.ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // d collects three in-links, a one (from the heaviest node), b and c
  // none: rank(d) > rank(a) > rank(b) == rank(c).
  EXPECT_GT(RankOf(result, d_), RankOf(result, a_));
  EXPECT_GT(RankOf(result, a_), RankOf(result, b_));
  EXPECT_DOUBLE_EQ(RankOf(result, b_), RankOf(result, c_));

  auto top = result.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, d_);
  EXPECT_EQ(top[1].first, a_);
}

TEST_F(PageRankFixture, DanglingMassIsRedistributed) {
  // b has no out-links: its rank must leak back uniformly instead of
  // draining the total mass below 1.
  store_.Add({a_, link_, b_});
  PageRankOptions options;
  PageRankResult result = ComputePageRank(store_, options, nullptr);
  double sum = 0;
  for (double r : result.ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(RankOf(result, b_), RankOf(result, a_));
}

TEST_F(PageRankFixture, ParallelMatchesSerial) {
  std::mt19937 rng(17);
  std::vector<TermId> nodes;
  for (int i = 0; i < 40; ++i) nodes.push_back(Iri("n" + std::to_string(i)));
  for (int i = 0; i < 300; ++i) {
    TermId s = nodes[rng() % nodes.size()];
    TermId o = nodes[rng() % nodes.size()];
    if (s != o) store_.Add({s, link_, o});
  }
  PageRankOptions options;
  options.max_iterations = 30;
  options.tolerance = 0;  // fixed iteration count: bitwise comparable
  PageRankResult serial = ComputePageRank(store_, options, nullptr);
  ThreadPool pool(4);
  PageRankResult parallel = ComputePageRank(store_, options, &pool);
  ASSERT_EQ(serial.nodes, parallel.nodes);
  ASSERT_EQ(serial.ranks.size(), parallel.ranks.size());
  for (size_t i = 0; i < serial.ranks.size(); ++i) {
    // Per-chunk partial sums reorder float additions; allow for that.
    EXPECT_NEAR(serial.ranks[i], parallel.ranks[i], 1e-12) << i;
  }
  EXPECT_EQ(serial.iterations, parallel.iterations);
}

TEST_F(PageRankFixture, ExcludedPredicatesContributeNoEdges) {
  TermId type = Iri("rdfType");
  store_.Add({a_, link_, b_});
  store_.Add({a_, type, c_});
  store_.Add({b_, type, c_});
  PageRankOptions options;
  options.exclude_predicates = {type};
  PageRankResult result = ComputePageRank(store_, options, nullptr);
  EXPECT_EQ(result.num_edges, 1u);
  // c only appears as object of excluded triples: not a node at all.
  EXPECT_EQ(RankOf(result, c_), -1);
}

TEST_F(PageRankFixture, LiteralObjectsFilteredWhenDictionaryGiven) {
  TermId year = store_.dict().Intern(Term::IntLiteral(1972));
  store_.Add({a_, link_, b_});
  store_.Add({a_, link_, year});
  PageRankOptions options;
  options.iri_objects_only = &store_.dict();
  PageRankResult result = ComputePageRank(store_, options, nullptr);
  EXPECT_EQ(result.num_edges, 1u);
  EXPECT_EQ(RankOf(result, year), -1);
}

TEST_F(PageRankFixture, ConvergesEarlyUnderTolerance) {
  store_.Add({a_, link_, b_});
  store_.Add({b_, link_, a_});
  PageRankOptions options;
  options.max_iterations = 100;
  options.tolerance = 1e-4;
  PageRankResult result = ComputePageRank(store_, options, nullptr);
  EXPECT_LT(result.iterations, 100);
  EXPECT_LE(result.last_delta, 1e-4);
  // The symmetric 2-cycle settles at 1/2 each.
  EXPECT_NEAR(RankOf(result, a_), 0.5, 1e-3);
}

TEST(PageRankInsertTest, WritesTopKFactsIntoKb) {
  core::KnowledgeBase kb;
  core::FactMeta meta;
  meta.confidence = 1.0;
  ASSERT_TRUE(kb.AssertFact("A", "linksTo", "B", meta));
  ASSERT_TRUE(kb.AssertFact("C", "linksTo", "B", meta));
  PageRankResult result =
      ComputePageRank(kb.store(), PageRankOptions(), nullptr);
  size_t before = kb.NumTriples();
  uint64_t epoch_before = kb.epoch();
  size_t inserted = InsertPageRankFacts(result, 2, "pagerankScore", &kb);
  EXPECT_EQ(inserted, 2u);
  EXPECT_EQ(kb.NumTriples(), before + 2);
  EXPECT_GT(kb.epoch(), epoch_before);
  // The facts are ordinary triples: findable through the store.
  TermId prop = kb.PropertyTerm("pagerankScore");
  auto scores = kb.store().MatchFullScan({rdf::kAnyTerm, prop, rdf::kAnyTerm});
  EXPECT_EQ(scores.size(), 2u);
  for (const rdf::Triple& t : scores) {
    EXPECT_TRUE(kb.store().dict().term(t.o).is_literal());
  }
}

// ------------------------------------------------------------ ClassStats

class ClassStatsFixture : public ::testing::Test {
 protected:
  TermId Iri(const std::string& s) {
    return store_.dict().Intern(Term::Iri(s));
  }

  void SetUp() override {
    type_ = Iri("type");
    subclass_ = Iri("subClassOf");
    person_ = Iri("Person");
    scientist_ = Iri("Scientist");
    physicist_ = Iri("Physicist");
    singer_ = Iri("Singer");
    options_.type_predicate = type_;
    options_.subclass_predicate = subclass_;
  }

  rdf::TripleStore store_;
  ClassStatsOptions options_;
  TermId type_, subclass_, person_, scientist_, physicist_, singer_;
};

TEST_F(ClassStatsFixture, RollupCountsAncestors) {
  store_.Add({physicist_, subclass_, scientist_});
  store_.Add({scientist_, subclass_, person_});
  store_.Add({singer_, subclass_, person_});
  TermId einstein = Iri("Einstein");
  TermId bohr = Iri("Bohr");
  TermId elvis = Iri("Elvis");
  store_.Add({einstein, type_, physicist_});
  store_.Add({bohr, type_, physicist_});
  store_.Add({elvis, type_, singer_});
  ClassStatsResult result = ComputeClassStats(store_, options_, nullptr);
  EXPECT_EQ(result.num_entities, 3u);
  EXPECT_EQ(CountOf(result, physicist_), 2u);
  EXPECT_EQ(CountOf(result, scientist_), 2u);
  EXPECT_EQ(CountOf(result, singer_), 1u);
  EXPECT_EQ(CountOf(result, person_), 3u);
  // Count-descending, ties by smaller id: Person first.
  ASSERT_FALSE(result.counts.empty());
  EXPECT_EQ(result.counts[0].first, person_);
  EXPECT_EQ(result.counts[0].second, 3u);
}

TEST_F(ClassStatsFixture, DiamondTaxonomyCountsEachAncestorOnce) {
  // physicist -> scientist -> person and physicist -> academic ->
  // person: an entity typed physicist reaches person twice but counts
  // once.
  TermId academic = Iri("Academic");
  store_.Add({physicist_, subclass_, scientist_});
  store_.Add({physicist_, subclass_, academic});
  store_.Add({scientist_, subclass_, person_});
  store_.Add({academic, subclass_, person_});
  TermId einstein = Iri("Einstein");
  store_.Add({einstein, type_, physicist_});
  ClassStatsResult result = ComputeClassStats(store_, options_, nullptr);
  EXPECT_EQ(CountOf(result, person_), 1u);
  EXPECT_EQ(CountOf(result, scientist_), 1u);
  EXPECT_EQ(CountOf(result, academic), 1u);
}

TEST_F(ClassStatsFixture, SubclassCycleTerminates) {
  // a <-> b cycle plus an entity typed a: the closure must terminate
  // and count both classes once.
  TermId ca = Iri("CycleA");
  TermId cb = Iri("CycleB");
  store_.Add({ca, subclass_, cb});
  store_.Add({cb, subclass_, ca});
  TermId e = Iri("E");
  store_.Add({e, type_, ca});
  ClassStatsResult result = ComputeClassStats(store_, options_, nullptr);
  EXPECT_EQ(CountOf(result, ca), 1u);
  EXPECT_EQ(CountOf(result, cb), 1u);
  EXPECT_EQ(result.num_entities, 1u);
}

TEST_F(ClassStatsFixture, RollupOffCountsDirectTypesOnly) {
  store_.Add({physicist_, subclass_, scientist_});
  TermId einstein = Iri("Einstein");
  store_.Add({einstein, type_, physicist_});
  options_.rollup = false;
  ClassStatsResult result = ComputeClassStats(store_, options_, nullptr);
  EXPECT_EQ(CountOf(result, physicist_), 1u);
  EXPECT_EQ(CountOf(result, scientist_), 0u);
}

TEST_F(ClassStatsFixture, DuplicateTypeAssertionsCountOnce) {
  TermId einstein = Iri("Einstein");
  store_.Add({einstein, type_, physicist_});
  store_.Add({einstein, type_, physicist_});
  ClassStatsResult result = ComputeClassStats(store_, options_, nullptr);
  EXPECT_EQ(CountOf(result, physicist_), 1u);
  EXPECT_EQ(result.num_entities, 1u);
}

TEST_F(ClassStatsFixture, ParallelMatchesSerial) {
  std::mt19937 rng(23);
  std::vector<TermId> classes;
  for (int i = 0; i < 12; ++i) {
    classes.push_back(Iri("class" + std::to_string(i)));
  }
  // Random upward taxonomy edges (child index > parent index keeps it
  // acyclic, but cycles would be fine too).
  for (int i = 1; i < 12; ++i) {
    store_.Add({classes[i], subclass_, classes[rng() % i]});
  }
  for (int i = 0; i < 200; ++i) {
    TermId e = Iri("entity" + std::to_string(i));
    store_.Add({e, type_, classes[rng() % classes.size()]});
    if (rng() % 3 == 0) {
      store_.Add({e, type_, classes[rng() % classes.size()]});
    }
  }
  ClassStatsResult serial = ComputeClassStats(store_, options_, nullptr);
  ThreadPool pool(4);
  ClassStatsResult parallel = ComputeClassStats(store_, options_, &pool);
  EXPECT_EQ(serial.counts, parallel.counts);
  EXPECT_EQ(serial.num_entities, parallel.num_entities);
  EXPECT_EQ(serial.num_classes, parallel.num_classes);
}

TEST(ClassStatsInsertTest, WritesCountFactsIntoKb) {
  core::KnowledgeBase kb;
  core::FactMeta meta;
  meta.confidence = 1.0;
  ASSERT_TRUE(kb.AssertFact("A", "worksFor", "B", meta));
  ClassStatsResult stats;
  stats.counts = {{kb.PropertyTerm("worksFor"), 7}};
  stats.num_classes = 1;
  size_t before = kb.NumTriples();
  size_t inserted = InsertClassStatsFacts(stats, "entityCount", &kb);
  EXPECT_EQ(inserted, 1u);
  EXPECT_EQ(kb.NumTriples(), before + 1);
  TermId prop = kb.PropertyTerm("entityCount");
  auto counts = kb.store().MatchFullScan({rdf::kAnyTerm, prop, rdf::kAnyTerm});
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_TRUE(kb.store().dict().term(counts[0].o).is_literal());
}

}  // namespace
}  // namespace analytics
}  // namespace kb
