#include <gtest/gtest.h>

#include "commonsense/property_miner.h"
#include "commonsense/rule_application.h"
#include "commonsense/rule_miner.h"
#include "corpus/generator.h"

namespace kb {
namespace commonsense {
namespace {

class CommonsenseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 81;
    wopts.num_persons = 60;
    corpus::CorpusOptions copts;
    copts.seed = 82;
    copts.news_docs = 10;
    copts.web_docs = 400;  // commonsense lives in web documents
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    tagger_ = new nlp::PosTagger();
  }
  static void TearDownTestSuite() {
    delete tagger_;
    delete corpus_;
  }
  static corpus::Corpus* corpus_;
  static nlp::PosTagger* tagger_;
};

corpus::Corpus* CommonsenseFixture::corpus_ = nullptr;
nlp::PosTagger* CommonsenseFixture::tagger_ = nullptr;

TEST_F(CommonsenseFixture, MinesPlantedProperties) {
  PropertyMiner miner(tagger_);
  auto mined = miner.Mine(corpus_->docs);
  ASSERT_FALSE(mined.empty());
  auto find = [&](const std::string& c, const std::string& r,
                  const std::string& v) -> const MinedAssertion* {
    for (const auto& a : mined) {
      if (a.concept_noun == c && a.relation == r && a.value == v) return &a;
    }
    return nullptr;
  };
  EXPECT_NE(find("apple", "hasProperty", "red"), nullptr);
  EXPECT_NE(find("apple", "hasProperty", "juicy"), nullptr);
  EXPECT_NE(find("wheel", "partOf", "car"), nullptr);
  EXPECT_NE(find("clarinet", "hasShape", "cylindrical"), nullptr);
}

TEST_F(CommonsenseFixture, TruthfulAssertionsOutscoreNoise) {
  PropertyMiner miner(tagger_);
  auto mined = miner.Mine(corpus_->docs);
  auto support_of = [&](const std::string& c, const std::string& v) {
    for (const auto& a : mined) {
      if (a.concept_noun == c && a.value == v) return a.support;
    }
    return 0;
  };
  // Planted noise ("apples are funny") occurs, but much more rarely.
  int red = support_of("apple", "red");
  int funny = support_of("apple", "funny");
  EXPECT_GT(red, funny * 2);
}

TEST_F(CommonsenseFixture, TypicalityThresholdTradesYieldForPrecision) {
  PropertyMiner miner(tagger_);
  auto mined = miner.Mine(corpus_->docs);
  auto precision_at = [&](double min_typicality) {
    size_t correct = 0, total = 0;
    for (const auto& a : mined) {
      if (a.typicality < min_typicality) continue;
      ++total;
      for (const auto& gold : corpus_->world.commonsense()) {
        if (gold.noun == a.concept_noun && gold.relation == a.relation &&
            gold.value == a.value) {
          if (gold.truthful) ++correct;
          break;
        }
      }
    }
    return total == 0
               ? 1.0
               : static_cast<double>(correct) / static_cast<double>(total);
  };
  double loose = precision_at(0.0);
  double strict = precision_at(0.7);
  EXPECT_GE(strict + 1e-9, loose);
  EXPECT_GT(strict, 0.9);
  EXPECT_LT(loose, 1.0);  // the noise is visible without the threshold
}

// ---------------------------------------------------------------- Rules

std::vector<extraction::ExtractedFact> GoldAsFacts(
    const corpus::World& world) {
  std::vector<extraction::ExtractedFact> facts;
  for (const corpus::GoldFact& f : world.facts()) {
    if (corpus::GetRelationInfo(f.relation).literal_object) continue;
    extraction::ExtractedFact e;
    e.subject = f.subject;
    e.relation = f.relation;
    e.object = f.object;
    e.confidence = 1.0;
    facts.push_back(e);
  }
  return facts;
}

TEST_F(CommonsenseFixture, MinesPlantedChainRule) {
  auto facts = GoldAsFacts(corpus_->world);
  RuleMinerOptions options;
  options.min_support = 5;
  options.min_confidence = 0.5;
  auto rules = MineRules(facts, options);
  ASSERT_FALSE(rules.empty());
  bool found_citizen_rule = false;
  for (const MinedRule& rule : rules) {
    if (rule.head == corpus::Relation::kCitizenOf &&
        rule.body1 == corpus::Relation::kBornIn &&
        rule.body2 == corpus::Relation::kLocatedIn) {
      found_citizen_rule = true;
      // Planted at 0.9 follow-rate.
      EXPECT_GT(rule.confidence, 0.75);
      EXPECT_LT(rule.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found_citizen_rule);
}

TEST_F(CommonsenseFixture, MinesPlantedSingleAtomRule) {
  auto facts = GoldAsFacts(corpus_->world);
  RuleMinerOptions options;
  options.min_support = 3;
  options.min_confidence = 0.5;
  auto rules = MineRules(facts, options);
  bool found = false;
  for (const MinedRule& rule : rules) {
    if (rule.head == corpus::Relation::kLocatedIn &&
        rule.body1 == corpus::Relation::kCapitalOf && !rule.is_chain()) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);  // capitals lie inside
    }
  }
  EXPECT_TRUE(found);
}


// ---------------------------------------------------------------- Apply

TEST_F(CommonsenseFixture, RuleApplicationCompletesMissingFacts) {
  // Drop 30% of citizenOf facts, mine rules from the rest, and check
  // that applying them recovers most of the dropped facts.
  auto facts = GoldAsFacts(corpus_->world);
  std::vector<extraction::ExtractedFact> partial;
  std::vector<extraction::ExtractedFact> dropped;
  int counter = 0;
  for (const auto& f : facts) {
    if (f.relation == corpus::Relation::kCitizenOf && ++counter % 3 == 0) {
      dropped.push_back(f);
    } else {
      partial.push_back(f);
    }
  }
  ASSERT_GT(dropped.size(), 10u);
  RuleMinerOptions options;
  options.min_support = 5;
  options.min_confidence = 0.5;
  auto rules = MineRules(partial, options);
  auto completion = ApplyRules(partial, rules);
  ASSERT_GT(completion.inferred.size(), 0u);
  // Recovered = inferred facts matching a dropped gold fact.
  size_t recovered = 0;
  for (const auto& inf : completion.inferred) {
    for (const auto& gold : dropped) {
      if (inf.SameStatement(gold)) ++recovered;
    }
  }
  // citizenOf follows birthplace-country 90% of the time, so ~90% of
  // the dropped facts are derivable.
  EXPECT_GT(static_cast<double>(recovered) / dropped.size(), 0.75);
  // And inferred confidences carry the rule confidence.
  for (const auto& inf : completion.inferred) {
    EXPECT_LE(inf.confidence, 1.0);
    EXPECT_GT(inf.confidence, 0.3);
  }
}

TEST_F(CommonsenseFixture, RuleApplicationNeverContradictsFunctional) {
  auto facts = GoldAsFacts(corpus_->world);
  RuleMinerOptions options;
  options.min_support = 5;
  options.min_confidence = 0.4;
  auto rules = MineRules(facts, options);
  auto completion = ApplyRules(facts, rules);
  // Every subject that already has a functional value must not get a
  // second one.
  std::set<std::pair<uint32_t, int>> functional_subjects;
  for (const auto& f : facts) {
    if (corpus::GetRelationInfo(f.relation).functional) {
      functional_subjects.insert(
          {f.subject, static_cast<int>(f.relation)});
    }
  }
  for (const auto& inf : completion.inferred) {
    if (!corpus::GetRelationInfo(inf.relation).functional) continue;
    EXPECT_EQ(functional_subjects.count(
                  {inf.subject, static_cast<int>(inf.relation)}),
              0u)
        << "inferred a second value for a functional relation";
  }
}

TEST(RuleMinerTest, EmptyInputYieldsNoRules) {
  EXPECT_TRUE(MineRules({}).empty());
}

TEST(MinedRuleTest, ToStringFormats) {
  MinedRule rule;
  rule.head = corpus::Relation::kCitizenOf;
  rule.body1 = corpus::Relation::kBornIn;
  rule.body2 = corpus::Relation::kLocatedIn;
  EXPECT_EQ(rule.ToString(),
            "citizenOf(x,z) <= bornIn(x,y) AND locatedIn(y,z)");
  rule.body2 = corpus::Relation::kNumRelations;
  rule.body1 = corpus::Relation::kCapitalOf;
  rule.head = corpus::Relation::kLocatedIn;
  EXPECT_EQ(rule.ToString(), "locatedIn(x,z) <= capitalOf(x,z)");
}

}  // namespace
}  // namespace commonsense
}  // namespace kb
