// Concurrency hammer tests: these exist to be run under
// KBFORGE_SANITIZE=tsan/asan builds, where the sanitizer (not just the
// assertions) is the oracle. Each test drives a shared component from
// at least eight threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/harvester.h"
#include "core/knowledge_base.h"
#include "rdf/namespaces.h"
#include "storage/fault_injection_env.h"
#include "storage/kv_store.h"
#include "storage/sharded_kv_store.h"
#include "util/metrics_registry.h"
#include "util/thread_pool.h"

namespace kb {
namespace {

constexpr size_t kThreads = 8;

std::string TempDir(const std::string& name) {
  auto path = std::filesystem::temp_directory_path() / ("kbforge_" + name);
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path.string();
}

// ------------------------------------------------------------- Harvest

class ConcurrentHarvestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 301;
    wopts.num_persons = 60;
    wopts.num_cities = 15;
    wopts.num_companies = 20;
    corpus::CorpusOptions copts;
    copts.seed = 302;
    copts.news_docs = 80;
    copts.web_docs = 15;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
  }
  static void TearDownTestSuite() { delete corpus_; }
  static corpus::Corpus* corpus_;
};

corpus::Corpus* ConcurrentHarvestFixture::corpus_ = nullptr;

TEST_F(ConcurrentHarvestFixture, EightThreadHarvestMatchesSingleThread) {
  core::HarvestOptions serial;
  serial.threads = 1;
  core::HarvestResult one = core::Harvester(serial).Harvest(*corpus_);

  core::HarvestOptions parallel;
  parallel.threads = kThreads;
  core::HarvestResult eight = core::Harvester(parallel).Harvest(*corpus_);

  // The map phase shards documents; the merge order is canonicalized,
  // so the output must be bit-identical regardless of thread count.
  EXPECT_EQ(eight.stats.documents, one.stats.documents);
  EXPECT_EQ(eight.stats.sentences, one.stats.sentences);
  EXPECT_EQ(eight.stats.candidate_facts, one.stats.candidate_facts);
  EXPECT_EQ(eight.stats.accepted_facts, one.stats.accepted_facts);
  EXPECT_EQ(eight.kb.NumTriples(), one.kb.NumTriples());
  EXPECT_EQ(eight.kb.NumEntities(), one.kb.NumEntities());
  EXPECT_GT(eight.stats.accepted_facts, 0u);
}

TEST_F(ConcurrentHarvestFixture, ConcurrentHarvestsDoNotInterfere) {
  // Several full pipelines at once: all share the global metrics
  // registry and the extractors' static tables.
  std::vector<core::HarvestResult> results(4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([this, t, &results] {
      core::HarvestOptions options;
      options.threads = 2;
      results[t] = core::Harvester(options).Harvest(*corpus_);
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[t].stats.accepted_facts,
              results[0].stats.accepted_facts);
    EXPECT_EQ(results[t].kb.NumTriples(), results[0].kb.NumTriples());
  }
}

// ------------------------------------------------------------- KVStore

TEST(ConcurrencyTest, KvStoreConcurrentReadsWritesScansFlushes) {
  std::string dir = TempDir("concurrent_kv");
  storage::StoreOptions options;
  options.memtable_flush_bytes = 16 << 10;  // force frequent flushes
  options.l0_compaction_trigger = 3;
  auto store_or = storage::KVStore::Open(options, dir);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<storage::KVStore> store = std::move(store_or).value();

  constexpr int kKeysPerThread = 400;
  std::atomic<size_t> get_hits{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key =
            "k" + std::to_string(t) + "_" + std::to_string(i);
        std::string value = "v" + std::to_string(t * 100000 + i);
        ASSERT_TRUE(store->Put(Slice(key), Slice(value)).ok());
        // Read back own write (other threads' flushes/compactions may
        // run concurrently).
        std::string got;
        if (store->Get(Slice(key), &got).ok()) {
          ASSERT_EQ(got, value);
          get_hits.fetch_add(1);
        }
        if (i % 97 == 0) {
          ASSERT_TRUE(store->Flush().ok());
        }
        if (i % 163 == 0) {
          size_t seen = 0;
          store->Scan(Slice("k"), Slice(),
                      [&seen](const Slice&, const Slice&) {
                        ++seen;
                        return seen < 50;  // bounded walk
                      });
        }
        if (i % 211 == 0 && t == 0) {
          ASSERT_TRUE(store->CompactAll().ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Own-writes must always be visible.
  EXPECT_EQ(get_hits.load(), kThreads * kKeysPerThread);

  // Every key survives the concurrent churn.
  for (size_t t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      std::string key = "k" + std::to_string(t) + "_" + std::to_string(i);
      std::string got;
      ASSERT_TRUE(store->Get(Slice(key), &got).ok()) << key;
    }
  }
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, KvStoreConcurrentDeletesStayConsistent) {
  std::string dir = TempDir("concurrent_kv_del");
  storage::StoreOptions options;
  options.memtable_flush_bytes = 8 << 10;
  auto store_or = storage::KVStore::Open(options, dir);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<storage::KVStore> store = std::move(store_or).value();

  // Pre-populate, then half the threads delete even keys while the
  // other half read odd keys.
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(store->Put(Slice(key), Slice("value")).ok());
  }
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        for (int i = static_cast<int>(t); i < kKeys; i += 2 * kThreads) {
          ASSERT_TRUE(store->Delete(
              Slice("key" + std::to_string(2 * (i / 2)))).ok());
        }
      } else {
        std::string got;
        for (int i = 1; i < kKeys; i += 2) {
          ASSERT_TRUE(
              store->Get(Slice("key" + std::to_string(i)), &got).ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Odd keys all survive.
  std::string got;
  for (int i = 1; i < kKeys; i += 2) {
    ASSERT_TRUE(store->Get(Slice("key" + std::to_string(i)), &got).ok());
  }
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, ReadersProgressWhileCompactionIsInFlight) {
  std::string dir = TempDir("concurrent_kv_bg");
  storage::FaultInjectionEnv env(storage::Env::Default());
  storage::StoreOptions options;
  options.env = &env;
  options.sync_wal = false;
  options.memtable_flush_bytes = 4 << 10;
  options.l0_compaction_trigger = 3;
  auto store_or = storage::KVStore::Open(options, dir);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<storage::KVStore> store = std::move(store_or).value();

  // Preload a fast (undelayed) working set for the readers.
  constexpr int kPreload = 200;
  const std::string value(64, 'v');
  for (int i = 0; i < kPreload; ++i) {
    ASSERT_TRUE(store->Put(Slice("r" + std::to_string(i)), Slice(value)).ok());
  }
  ASSERT_TRUE(store->Flush().ok());

  // From here on every table/WAL file write stalls 50ms, so background
  // flushes and compactions stay in flight for a long, visible window.
  storage::FaultInjectionEnv::Options slow;
  slow.write_delay_micros = 50000;
  env.Reset(slow);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_done{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&, t] {
      std::string got;
      uint64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string key = "r" + std::to_string(i++ % kPreload);
        ASSERT_TRUE(store->Get(Slice(key), &got).ok()) << key;
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer: pump enough data through the small memtable to schedule
  // several slow background flushes and a compaction, then wait for
  // them to finish.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store->Put(Slice("w" + std::to_string(i)), Slice(value)).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  ASSERT_TRUE(store->CompactAll().ok());
  stop.store(true);
  for (auto& t : readers) t.join();

  storage::StoreStats stats = store->stats();
  EXPECT_GE(stats.flushes, 2u);
  EXPECT_GE(stats.compactions, 1u);
  // Background table IO totalled hundreds of milliseconds of injected
  // delay. Readers blocked behind it would have managed a handful of
  // reads; unblocked readers do thousands.
  EXPECT_GT(reads_done.load(), 500u);
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencyTest, ScanVisitorsReenterGetUnderWrites) {
  std::string dir = TempDir("concurrent_kv_reenter");
  storage::StoreOptions options;
  options.sync_wal = false;
  options.memtable_flush_bytes = 16 << 10;
  options.l0_compaction_trigger = 3;
  auto store_or = storage::KVStore::Open(options, dir);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<storage::KVStore> store = std::move(store_or).value();
  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(store->Put(Slice("s" + std::to_string(i)),
                           Slice("v" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(store->Flush().ok());

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        // Scanner whose visitor calls straight back into the store.
        for (int round = 0; round < 10; ++round) {
          size_t seen = 0;
          Status s = store->Scan(
              Slice("s"), Slice(), [&](const Slice& key, const Slice&) {
                std::string got;
                Status g = store->Get(key, &got);
                // The key may have been rewritten since the snapshot
                // was pinned, but reentry itself must always be safe.
                EXPECT_TRUE(g.ok() || g.IsNotFound());
                return ++seen < 100;
              });
          ASSERT_TRUE(s.ok());
        }
      } else {
        for (int i = 0; i < 500; ++i) {
          std::string key = "s" + std::to_string(i % kKeys);
          ASSERT_TRUE(
              store->Put(Slice(key), Slice("t" + std::to_string(t))).ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  store.reset();
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------- ShardedKVStore

TEST(ConcurrencyTest, ShardedStoreMixedLoadHammer) {
  std::string dir = TempDir("concurrent_sharded");
  storage::ShardedStoreOptions options;
  options.num_shards = 4;
  options.background_threads = 2;
  options.store.sync_wal = false;
  options.store.memtable_flush_bytes = 8 << 10;
  options.store.l0_compaction_trigger = 3;
  auto store_or = storage::ShardedKVStore::Open(options, dir);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<storage::ShardedKVStore> store = std::move(store_or).value();

  constexpr int kOpsPerThread = 400;
  std::atomic<size_t> own_write_hits{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "k" + std::to_string(t) + "_" + std::to_string(i);
        std::string value = "v" + std::to_string(t * 100000 + i);
        ASSERT_TRUE(store->Put(Slice(key), Slice(value)).ok());
        std::string got;
        ASSERT_TRUE(store->Get(Slice(key), &got).ok());
        ASSERT_EQ(got, value);
        own_write_hits.fetch_add(1);
        if (i % 113 == 0) {
          size_t seen = 0;
          ASSERT_TRUE(store
                          ->Scan(Slice("k"), Slice(),
                                 [&seen](const Slice&, const Slice&) {
                                   return ++seen < 64;
                                 })
                          .ok());
        }
        if (i % 157 == 0 && t == 0) {
          ASSERT_TRUE(store->Flush().ok());
        }
        if (i % 211 == 0 && t == 1) {
          ASSERT_TRUE(store->CompactAll().ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(own_write_hits.load(), kThreads * kOpsPerThread);
  // Full merged scan sees every key exactly once, in order.
  std::vector<std::string> keys;
  ASSERT_TRUE(store
                  ->Scan(Slice(), Slice(),
                         [&](const Slice& k, const Slice&) {
                           keys.push_back(k.ToString());
                           return true;
                         })
                  .ok());
  EXPECT_EQ(keys.size(), kThreads * kOpsPerThread);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  store.reset();
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------- TripleStore

TEST(ConcurrencyTest, TripleStoreConcurrentScansWhileAppending) {
  // Multi-reader hammer for the old lazy-index race: Scan used to
  // merge pending triples into mutable index vectors on first read, so
  // two concurrent readers raced on the rebuild. Reads now pin an
  // immutable snapshot; TSan is the oracle here.
  rdf::TripleStore store;
  std::vector<rdf::TermId> subjects, predicates;
  {
    for (int i = 0; i < 16; ++i) {
      subjects.push_back(
          store.dict().Intern(rdf::Term::Iri("s" + std::to_string(i))));
    }
    for (int i = 0; i < 4; ++i) {
      predicates.push_back(
          store.dict().Intern(rdf::Term::Iri("p" + std::to_string(i))));
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<size_t> scans_done{0};
  std::vector<std::thread> threads;
  // One writer keeps appending…
  threads.emplace_back([&] {
    for (int i = 0; i < 4000; ++i) {
      store.Add({subjects[i % subjects.size()],
                 predicates[i % predicates.size()],
                 subjects[(i * 7) % subjects.size()]});
    }
    stop.store(true);
  });
  // …while the other threads scan every pattern shape concurrently.
  // Each reader does a floor of iterations even if the writer finishes
  // before it gets scheduled, so the readers always overlap each other
  // (and almost always the writer too).
  for (size_t t = 1; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t iter = 0; iter < 16 || !stop.load(); ++iter) {
        rdf::TriplePattern pattern;
        if (t % 3 == 0) pattern.s = subjects[t % subjects.size()];
        if (t % 3 == 1) pattern.p = predicates[t % predicates.size()];
        if (t % 3 == 2) {
          pattern.s = subjects[t % subjects.size()];
          pattern.o = subjects[(t * 5) % subjects.size()];
        }
        size_t n = 0;
        store.Scan(pattern, [&n](const rdf::Triple&) {
          ++n;
          return true;
        });
        // The store only grows, so a later count can never undercut an
        // earlier scan of the same pattern.
        ASSERT_GE(store.CountMatches(pattern), n);
        scans_done.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(scans_done.load(), 0u);
}

TEST(ConcurrencyTest, TripleStoreSnapshotReadersSeeFrozenState) {
  rdf::TripleStore store;
  auto s = store.dict().Intern(rdf::Term::Iri("s"));
  auto p = store.dict().Intern(rdf::Term::Iri("p"));
  for (rdf::TermId o = 1; o <= 100; ++o) {
    store.Add({s, p, o + 1000});
  }
  auto snapshot = store.Snapshot();
  const size_t frozen_size = snapshot->size();

  std::vector<std::thread> threads;
  // Writer keeps growing the store; readers iterate the snapshot and
  // must see exactly the frozen triples every time.
  threads.emplace_back([&] {
    for (rdf::TermId o = 0; o < 2000; ++o) {
      store.Add({s, p, o + 10000});
      if (o % 500 == 0) (void)store.Snapshot();  // concurrent re-merge
    }
  });
  for (size_t t = 1; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        size_t n = 0;
        for (auto it = snapshot->NewScan(rdf::TriplePattern()); it->Valid();
             it->Next()) {
          ++n;
        }
        ASSERT_EQ(n, frozen_size);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(store.size(), frozen_size);
}

// ------------------------------------------------------- KnowledgeBase

TEST(ConcurrencyTest, KnowledgeBaseConcurrentAssertsAndQueries) {
  core::KnowledgeBase kb;
  std::atomic<size_t> asserted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::FactMeta meta;
      meta.confidence = 0.5 + 0.05 * static_cast<double>(t);
      for (int i = 0; i < 200; ++i) {
        std::string subject = "E" + std::to_string(t) + "_" +
                              std::to_string(i);
        if (kb.AssertFact(subject, "rel", "Target", meta)) {
          asserted.fetch_add(1);
        }
        // Contended fact: every thread asserts the same statement, so
        // meta merge runs under contention.
        kb.AssertFact("Shared", "rel", "Target", meta);
        kb.AssertType(subject, "thing");
        if (i % 50 == 0) {
          auto rows = kb.Query("SELECT ?s WHERE { ?s <" +
                               rdf::PropertyIri("rel") + "> <" +
                               rdf::EntityIri("Target") + "> . }");
          ASSERT_TRUE(rows.ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(asserted.load(), kThreads * 200u);

  auto rows = kb.Query("SELECT ?s WHERE { ?s <" + rdf::PropertyIri("rel") +
                       "> <" + rdf::EntityIri("Target") + "> . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), kThreads * 200u + 1);  // +1 for "Shared"

  // The contended fact merged all supports and kept the max confidence.
  rdf::Triple contended(kb.EntityTerm("Shared"), kb.PropertyTerm("rel"),
                        kb.EntityTerm("Target"));
  const core::FactMeta* meta = kb.MetaOf(contended);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->support, kThreads * 200u);
  EXPECT_DOUBLE_EQ(meta->confidence,
                   0.5 + 0.05 * static_cast<double>(kThreads - 1));
}

// ------------------------------------------------------------- Metrics

TEST(ConcurrencyTest, MetricsRegistryHammer) {
  MetricsRegistry registry;
  ThreadPool pool(kThreads);
  constexpr int kOps = 2000;
  pool.ParallelFor(kThreads, [&registry](size_t t) {
    for (int i = 0; i < kOps; ++i) {
      registry.counter("hammer.count").Increment();
      registry.gauge("hammer.gauge").Set(static_cast<int64_t>(i));
      registry.histogram("hammer.hist").Observe(0.5 * (t + 1));
      if (i % 100 == 0) {
        // Snapshots race against updates; they must be safe (values
        // are torn only across instruments, never within a counter).
        MetricsSnapshot snap = registry.Snapshot();
        (void)snap.ToText();
      }
    }
  });
  pool.Wait();
  EXPECT_EQ(registry.counter("hammer.count").value(),
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(registry.histogram("hammer.hist").count(),
            static_cast<uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace kb
