#include <gtest/gtest.h>

#include "core/harvester.h"
#include "core/entity_card.h"
#include "core/knowledge_base.h"
#include "extraction/evaluation.h"
#include "rdf/namespaces.h"
#include "util/metrics_registry.h"

namespace kb {
namespace core {
namespace {

// ---------------------------------------------------------------- KB

TEST(KnowledgeBaseTest, AssertAndQueryFacts) {
  KnowledgeBase kb;
  FactMeta meta;
  meta.confidence = 0.9;
  EXPECT_TRUE(kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", meta));
  EXPECT_FALSE(kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", meta));
  kb.AssertType("Steve_Jobs", "entrepreneur");
  kb.AssertSubclass("entrepreneur", "person");

  auto rows = kb.Query(
      "SELECT ?c WHERE { <" + rdf::EntityIri("Steve_Jobs") + "> <" +
      rdf::PropertyIri("founded") + "> ?c . }");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
}

TEST(KnowledgeBaseTest, MetadataMergesOnRepeatedAssert) {
  KnowledgeBase kb;
  FactMeta low;
  low.confidence = 0.5;
  FactMeta high;
  high.confidence = 0.9;
  kb.AssertFact("A", "rel", "B", low);
  kb.AssertFact("A", "rel", "B", high);
  rdf::Triple t(kb.EntityTerm("A"), kb.PropertyTerm("rel"),
                kb.EntityTerm("B"));
  const FactMeta* meta = kb.MetaOf(t);
  ASSERT_NE(meta, nullptr);
  EXPECT_DOUBLE_EQ(meta->confidence, 0.9);
  EXPECT_EQ(meta->support, 2u);
}

TEST(KnowledgeBaseTest, TaxonomyAndStoreStayInSync) {
  KnowledgeBase kb;
  kb.AssertSubclass("singer", "person");
  taxonomy::ClassId singer = kb.taxonomy().Lookup("singer");
  taxonomy::ClassId person = kb.taxonomy().Lookup("person");
  ASSERT_NE(singer, taxonomy::kInvalidClassId);
  EXPECT_TRUE(kb.taxonomy().IsSubclassOf(singer, person));
  // The rdfs:subClassOf triple exists too.
  auto rows = kb.Query("SELECT ?super WHERE { <" + rdf::ClassIri("singer") +
                       "> <http://www.w3.org/2000/01/rdf-schema#subClassOf>"
                       " ?super . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(KnowledgeBaseTest, ExportRoundTrips) {
  KnowledgeBase kb;
  kb.AssertFact("A", "rel", "B", FactMeta());
  kb.AssertYearFact("B", "foundedYear", 1976, FactMeta());
  kb.AssertLabel("A", "The A", "en");
  std::string ntriples = kb.ExportNTriples();
  rdf::TripleStore restored;
  ASSERT_TRUE(rdf::ReadNTriples(ntriples, &restored).ok());
  EXPECT_EQ(restored.size(), kb.NumTriples());
}

// ---------------------------------------------------------------- Pipeline

class HarvestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 101;
    wopts.num_persons = 80;
    wopts.num_cities = 20;
    wopts.num_companies = 25;
    corpus::CorpusOptions copts;
    copts.seed = 102;
    copts.news_docs = 100;
    copts.web_docs = 20;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    Harvester harvester;
    result_ = new HarvestResult(harvester.Harvest(*corpus_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete corpus_;
  }
  static corpus::Corpus* corpus_;
  static HarvestResult* result_;
};

corpus::Corpus* HarvestFixture::corpus_ = nullptr;
HarvestResult* HarvestFixture::result_ = nullptr;

TEST_F(HarvestFixture, PipelineProducesSubstantialKb) {
  const HarvestStats& stats = result_->stats;
  EXPECT_EQ(stats.documents, corpus_->docs.size());
  EXPECT_GT(stats.sentences, 500u);
  EXPECT_GT(stats.infobox_facts, 100u);
  EXPECT_GT(stats.pattern_facts, 100u);
  EXPECT_GT(stats.accepted_facts, 200u);
  EXPECT_GT(result_->kb.NumTriples(), 1000u);
  EXPECT_GT(result_->kb.NumEntities(),
            corpus_->world.entities().size() / 2);
}

TEST_F(HarvestFixture, HarvestedFactsAreAccurate) {
  auto base = extraction::ExpressedFacts(corpus_->docs);
  PrecisionRecall pr =
      extraction::EvaluateFacts(corpus_->world, result_->accepted, base);
  EXPECT_GT(pr.precision(), 0.85) << "P=" << pr.precision();
  EXPECT_GT(pr.recall(), 0.6) << "R=" << pr.recall();
}

TEST_F(HarvestFixture, ReasoningImprovesPrecision) {
  HarvestOptions no_reasoning;
  no_reasoning.use_reasoning = false;
  Harvester harvester(no_reasoning);
  HarvestResult unreasoned = harvester.Harvest(*corpus_);
  auto base = extraction::ExpressedFacts(corpus_->docs);
  PrecisionRecall with =
      extraction::EvaluateFacts(corpus_->world, result_->accepted, base);
  PrecisionRecall without =
      extraction::EvaluateFacts(corpus_->world, unreasoned.accepted, base);
  EXPECT_GT(with.precision(), without.precision());
}

TEST_F(HarvestFixture, KbAnswersSemanticQueries) {
  // Every accepted bornIn fact must be queryable.
  auto rows = result_->kb.Query(
      "SELECT ?p ?c WHERE { ?p <" + rdf::PropertyIri("bornIn") +
      "> ?c . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows->size(), 30u);
}

TEST_F(HarvestFixture, TypesAndTaxonomyAssembled) {
  const taxonomy::Taxonomy& tax = result_->kb.taxonomy();
  taxonomy::ClassId singer = tax.Lookup("singer");
  taxonomy::ClassId person = tax.Lookup("person");
  ASSERT_NE(singer, taxonomy::kInvalidClassId);
  ASSERT_NE(person, taxonomy::kInvalidClassId);
  EXPECT_TRUE(tax.IsSubclassOf(singer, person));
  // Some typed entities exist.
  auto rows = result_->kb.Query(
      "SELECT ?e WHERE { ?e "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <" +
      rdf::ClassIri("singer") + "> . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows->size(), 5u);
}

TEST_F(HarvestFixture, MultilingualLabelsAttached) {
  auto rows = result_->kb.Query(
      "SELECT ?e ?l WHERE { ?e "
      "<http://www.w3.org/2000/01/rdf-schema#label> ?l . }");
  ASSERT_TRUE(rows.ok());
  // At least en + most de/fr labels.
  EXPECT_GT(rows->size(), corpus_->world.entities().size());
}

TEST_F(HarvestFixture, TemporalScopesSurvive) {
  size_t scoped = 0;
  for (const auto& f : result_->accepted) {
    if (f.span.valid()) ++scoped;
  }
  EXPECT_GT(scoped, 10u);
}

TEST_F(HarvestFixture, StageTogglesReduceWork) {
  HarvestOptions minimal;
  minimal.use_bootstrap = false;
  minimal.use_statistical = false;
  minimal.use_temporal = false;
  Harvester harvester(minimal);
  HarvestResult small = harvester.Harvest(*corpus_);
  EXPECT_EQ(small.stats.bootstrap_facts, 0u);
  EXPECT_EQ(small.stats.statistical_facts, 0u);
  EXPECT_LT(small.stats.accepted_facts, result_->stats.accepted_facts);
}


TEST_F(HarvestFixture, DetectedMentionPipelineDegradesGracefully) {
  HarvestOptions options;
  options.use_gold_mentions = false;
  Harvester harvester(options);
  HarvestResult detected = harvester.Harvest(*corpus_);
  auto base = extraction::ExpressedFacts(corpus_->docs);
  PrecisionRecall gold_pr =
      extraction::EvaluateFacts(corpus_->world, result_->accepted, base);
  PrecisionRecall detected_pr =
      extraction::EvaluateFacts(corpus_->world, detected.accepted, base);
  // The no-gold pipeline must still work, just below the perfect-NER
  // ceiling.
  EXPECT_GT(detected_pr.precision(), 0.7)
      << "P=" << detected_pr.precision();
  EXPECT_GT(detected_pr.recall(), 0.4) << "R=" << detected_pr.recall();
  EXPECT_LE(detected_pr.f1(), gold_pr.f1() + 0.02);
}


// ---------------------------------------------------------------- Cards

TEST(EntityCardTest, BuildsRankedCard) {
  KnowledgeBase kb;
  FactMeta strong;
  strong.confidence = 0.95;
  strong.support = 5;
  FactMeta weak;
  weak.confidence = 0.6;
  weak.support = 1;
  kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", strong);
  kb.AssertFact("Steve_Jobs", "worksFor", "Pixar", weak);
  kb.AssertType("Steve_Jobs", "entrepreneur");
  kb.AssertType("Steve_Jobs", "person");
  kb.AssertSubclass("entrepreneur", "person");
  kb.AssertLabel("Steve_Jobs", "Steve Jobs", "en");
  kb.AssertLabel("Steve_Jobs", "Stefan Hiob", "de");

  auto card = BuildEntityCard(kb, "Steve_Jobs");
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(card->display_name, "Steve Jobs");
  // Most specific type first.
  ASSERT_EQ(card->types.size(), 2u);
  EXPECT_EQ(card->types[0], "entrepreneur");
  // Stronger fact ranks first.
  ASSERT_EQ(card->facts.size(), 2u);
  EXPECT_EQ(card->facts[0].property, "founded");
  EXPECT_GT(card->facts[0].salience, card->facts[1].salience);
  std::string rendered = RenderEntityCard(*card);
  EXPECT_NE(rendered.find("founded: kb:Apple_Inc"), std::string::npos);
  EXPECT_NE(rendered.find("label@de"), std::string::npos);
}

TEST(EntityCardTest, MissingEntityIsNotFound) {
  KnowledgeBase kb;
  EXPECT_TRUE(BuildEntityCard(kb, "Nobody").status().IsNotFound());
}

TEST_F(HarvestFixture, CardsForHarvestedEntities) {
  // Cards work straight off the harvested KB, capped at max_facts.
  EntityCardOptions options;
  options.max_facts = 4;
  size_t with_facts = 0;
  for (uint32_t id :
       corpus_->world.ByKind(corpus::EntityKind::kPerson)) {
    auto card = BuildEntityCard(
        result_->kb, corpus_->world.entity(id).canonical, options);
    if (!card.ok()) continue;
    EXPECT_LE(card->facts.size(), 4u);
    if (!card->facts.empty()) ++with_facts;
  }
  EXPECT_GT(with_facts,
            corpus_->world.ByKind(corpus::EntityKind::kPerson).size() / 2);
}

TEST_F(HarvestFixture, MetricsRecordTheHarvest) {
  // The fixture harvest ran in SetUpTestSuite, so the process-wide
  // registry must already hold per-stage latencies and extractor yields.
  MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();

  EXPECT_GE(snap.counter("harvest.runs"), 1u);
  EXPECT_GE(snap.counter("harvest.documents"), corpus_->docs.size());
  EXPECT_GT(snap.counter("harvest.sentences"), 0u);
  EXPECT_GT(snap.counter("harvest.facts.accepted"), 0u);

  for (const char* name :
       {"harvest.stage.annotate_ms", "harvest.stage.extract_ms",
        "harvest.stage.reason_ms", "harvest.stage.assemble_ms",
        "harvest.total_ms"}) {
    const HistogramSnapshot* h = snap.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
    EXPECT_GT(h->sum, 0.0) << name;
  }
  // The map phase timed each document annotation.
  const HistogramSnapshot* per_doc =
      snap.histogram("harvest.map.annotate_doc_ms");
  ASSERT_NE(per_doc, nullptr);
  EXPECT_GE(per_doc->count, corpus_->docs.size());

  // Per-extractor yield counters and confidence histograms.
  EXPECT_GT(snap.counter("extraction.infobox.facts"), 0u);
  EXPECT_GT(snap.counter("extraction.pattern.facts"), 0u);
  EXPECT_GT(snap.counter("extraction.bootstrap.batches"), 0u);
  EXPECT_GT(snap.counter("extraction.statistical.batches"), 0u);
  const HistogramSnapshot* conf =
      snap.histogram("extraction.infobox.confidence");
  ASSERT_NE(conf, nullptr);
  EXPECT_GT(conf->count, 0u);
  EXPECT_GT(conf->max, 0.0);

  // The snapshot renders with the recorded values inside.
  std::string text = snap.ToText();
  EXPECT_NE(text.find("harvest.stage.extract_ms"), std::string::npos);
}

TEST_F(HarvestFixture, DeterministicAcrossRuns) {
  Harvester harvester;
  HarvestResult again = harvester.Harvest(*corpus_);
  EXPECT_EQ(again.stats.accepted_facts, result_->stats.accepted_facts);
  EXPECT_EQ(again.kb.NumTriples(), result_->kb.NumTriples());
}

}  // namespace
}  // namespace core
}  // namespace kb
