#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "corpus/generator.h"
#include "corpus/names.h"
#include "corpus/relations.h"
#include "corpus/world.h"

namespace kb {
namespace corpus {
namespace {

WorldOptions SmallWorld() {
  WorldOptions options;
  options.seed = 11;
  options.num_persons = 60;
  options.num_cities = 15;
  options.num_countries = 3;
  options.num_companies = 20;
  options.num_universities = 5;
  options.num_bands = 8;
  options.num_albums = 12;
  options.num_films = 10;
  return options;
}

// ---------------------------------------------------------------- Relations

TEST(RelationsTest, TableIsConsistent) {
  for (int i = 0; i < kNumRelations; ++i) {
    Relation r = static_cast<Relation>(i);
    const RelationInfo& info = GetRelationInfo(r);
    EXPECT_EQ(info.relation, r);
    EXPECT_FALSE(info.name.empty());
    EXPECT_EQ(RelationByName(info.name), r);
  }
  EXPECT_EQ(RelationByName("noSuchRelation"), Relation::kNumRelations);
}

// ---------------------------------------------------------------- World

TEST(WorldTest, DeterministicForSeed) {
  World a = World::Generate(SmallWorld());
  World b = World::Generate(SmallWorld());
  ASSERT_EQ(a.entities().size(), b.entities().size());
  ASSERT_EQ(a.facts().size(), b.facts().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].canonical, b.entities()[i].canonical);
  }
}

TEST(WorldTest, EntityCountsMatchOptions) {
  WorldOptions options = SmallWorld();
  World world = World::Generate(options);
  EXPECT_EQ(world.ByKind(EntityKind::kPerson).size(), options.num_persons);
  EXPECT_EQ(world.ByKind(EntityKind::kCity).size(), options.num_cities);
  EXPECT_EQ(world.ByKind(EntityKind::kCountry).size(),
            options.num_countries);
  EXPECT_EQ(world.ByKind(EntityKind::kCompany).size(),
            options.num_companies);
}

TEST(WorldTest, CanonicalNamesAreUnique) {
  World world = World::Generate(SmallWorld());
  std::unordered_set<std::string> seen;
  for (const Entity& e : world.entities()) {
    EXPECT_TRUE(seen.insert(e.canonical).second) << e.canonical;
  }
}

TEST(WorldTest, FactsRespectRelationSignatures) {
  World world = World::Generate(SmallWorld());
  for (const GoldFact& f : world.facts()) {
    const RelationInfo& info = GetRelationInfo(f.relation);
    EXPECT_EQ(world.entity(f.subject).kind, info.subject_kind)
        << info.name;
    if (!info.literal_object) {
      ASSERT_NE(f.object, UINT32_MAX) << info.name;
      EXPECT_EQ(world.entity(f.object).kind, info.object_kind)
          << info.name;
    }
  }
}

TEST(WorldTest, FunctionalRelationsHaveOneValuePerSubject) {
  World world = World::Generate(SmallWorld());
  std::set<std::pair<uint32_t, int>> seen;
  for (const GoldFact& f : world.facts()) {
    if (!GetRelationInfo(f.relation).functional) continue;
    auto key = std::make_pair(f.subject, static_cast<int>(f.relation));
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate functional fact " << GetRelationInfo(f.relation).name
        << " for subject " << world.entity(f.subject).canonical;
  }
}

TEST(WorldTest, EveryPersonHasBirthFacts) {
  World world = World::Generate(SmallWorld());
  for (uint32_t id : world.ByKind(EntityKind::kPerson)) {
    EXPECT_TRUE(world.entity(id).birth_date.valid());
    bool has_born_in = false;
    for (const GoldFact* f : world.FactsOf(id)) {
      if (f->relation == Relation::kBornIn) has_born_in = true;
    }
    EXPECT_TRUE(has_born_in) << world.entity(id).canonical;
  }
}

TEST(WorldTest, TemporalFactsHaveSpans) {
  World world = World::Generate(SmallWorld());
  int temporal = 0;
  for (const GoldFact& f : world.facts()) {
    if (f.relation == Relation::kMayorOf ||
        f.relation == Relation::kWorksFor) {
      EXPECT_TRUE(f.span.begin.valid());
      ++temporal;
    }
  }
  EXPECT_GT(temporal, 0);
}

TEST(WorldTest, SurnameAmbiguityExists) {
  World world = World::Generate(SmallWorld());
  std::map<std::string, int> surname_count;
  for (uint32_t id : world.ByKind(EntityKind::kPerson)) {
    const Entity& e = world.entity(id);
    ASSERT_FALSE(e.aliases.empty());
    surname_count[e.aliases[0]]++;
  }
  int shared = 0;
  for (const auto& [surname, count] : surname_count) {
    if (count > 1) ++shared;
  }
  EXPECT_GT(shared, 0) << "no ambiguous surnames generated";
}

TEST(WorldTest, MultilingualLabelsPresent) {
  World world = World::Generate(SmallWorld());
  for (const Entity& e : world.entities()) {
    EXPECT_EQ(e.labels.count("en"), 1u);
    EXPECT_EQ(e.labels.count("de"), 1u);
    EXPECT_EQ(e.labels.count("fr"), 1u);
    EXPECT_NE(e.labels.at("de"), "") << e.canonical;
  }
}

TEST(WorldTest, HasFactLookupAgreesWithList) {
  World world = World::Generate(SmallWorld());
  for (const GoldFact& f : world.facts()) {
    EXPECT_TRUE(
        world.HasFact(f.subject, f.relation, f.object, f.literal_year));
  }
  EXPECT_FALSE(world.HasFact(0, Relation::kBornIn, UINT32_MAX - 1));
}

TEST(WorldTest, GoldRulesArePlanted) {
  World world = World::Generate(SmallWorld());
  ASSERT_GE(world.gold_rules().size(), 2u);
  // R1: citizenOf follows bornIn+locatedIn for ~90% of persons.
  int match = 0, total = 0;
  for (uint32_t person : world.ByKind(EntityKind::kPerson)) {
    uint32_t born_city = UINT32_MAX, citizen_of = UINT32_MAX;
    for (const GoldFact* f : world.FactsOf(person)) {
      if (f->relation == Relation::kBornIn) born_city = f->object;
      if (f->relation == Relation::kCitizenOf) citizen_of = f->object;
    }
    ASSERT_NE(born_city, UINT32_MAX);
    ASSERT_NE(citizen_of, UINT32_MAX);
    ++total;
    if (world.entity(born_city).country == citizen_of) ++match;
  }
  EXPECT_GT(match, total * 7 / 10);
  EXPECT_LT(match, total);  // the exception exists
}

// ---------------------------------------------------------------- Names

TEST(NamesTest, LocalizeIsDeterministicAndDistinct) {
  std::string de = NameGenerator::Localize("Marcus Hallberg", "de");
  EXPECT_EQ(de, NameGenerator::Localize("Marcus Hallberg", "de"));
  EXPECT_NE(de, "Marcus Hallberg");
  EXPECT_EQ(NameGenerator::Localize("X", "en"), "X");
}

// ---------------------------------------------------------------- Docs

class CorpusFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions copts;
    copts.seed = 13;
    copts.news_docs = 50;
    copts.web_docs = 20;
    corpus_ = new Corpus(BuildCorpus(SmallWorld(), copts));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static Corpus* corpus_;
};

Corpus* CorpusFixture::corpus_ = nullptr;

TEST_F(CorpusFixture, OneArticlePerEntityPlusExtras) {
  const Corpus& c = *corpus_;
  EXPECT_EQ(c.docs.size(),
            c.world.entities().size() + c.options.news_docs +
                c.options.web_docs);
  for (size_t i = 0; i < c.world.entities().size(); ++i) {
    EXPECT_EQ(c.docs[i].kind, DocKind::kArticle);
    EXPECT_EQ(c.docs[i].subject, i);
  }
}

TEST_F(CorpusFixture, MentionOffsetsAreExact) {
  for (const Document& doc : corpus_->docs) {
    for (const Mention& m : doc.mentions) {
      ASSERT_LE(m.end, doc.text.size());
      std::string surface = doc.text.substr(m.begin, m.end - m.begin);
      const Entity& e = corpus_->world.entity(m.entity);
      bool matches = surface == e.full_name;
      for (const std::string& alias : e.aliases) {
        matches = matches || surface == alias;
      }
      EXPECT_TRUE(matches) << "surface '" << surface << "' for entity "
                           << e.canonical << " in doc " << doc.title;
    }
  }
}

TEST_F(CorpusFixture, ExpressedFactIdsAreValid) {
  for (const Document& doc : corpus_->docs) {
    for (uint32_t fact_id : doc.fact_ids) {
      ASSERT_LT(fact_id, corpus_->world.facts().size());
    }
  }
}

TEST_F(CorpusFixture, ArticlesCarryInfoboxAndCategories) {
  size_t with_infobox = 0, with_categories = 0;
  for (const Document& doc : corpus_->docs) {
    if (doc.kind != DocKind::kArticle) continue;
    if (!doc.infobox.empty()) ++with_infobox;
    if (!doc.categories.empty()) ++with_categories;
    EXPECT_NE(doc.text.find("{{Infobox"), std::string::npos);
  }
  EXPECT_GT(with_infobox, corpus_->world.entities().size() / 2);
  EXPECT_EQ(with_categories, corpus_->world.entities().size());
}

TEST_F(CorpusFixture, InfoboxSlotsAppearInMarkup) {
  for (const Document& doc : corpus_->docs) {
    for (const InfoboxSlot& slot : doc.infobox) {
      EXPECT_NE(doc.text.find("| " + slot.key + " = "), std::string::npos)
          << doc.title;
    }
  }
}

TEST_F(CorpusFixture, InterwikiLinksAppearInMarkup) {
  size_t total = 0;
  for (const Document& doc : corpus_->docs) {
    for (const auto& [lang, label] : doc.interwiki) {
      ++total;
      std::string link = "[[" + lang + ":";
      EXPECT_NE(doc.text.find(link), std::string::npos);
    }
  }
  EXPECT_GT(total, 0u);
}

TEST_F(CorpusFixture, NewsDocsProvideRedundancy) {
  // At least some facts are expressed in more than one document.
  std::map<uint32_t, int> coverage;
  for (const Document& doc : corpus_->docs) {
    for (uint32_t fact_id : doc.fact_ids) coverage[fact_id]++;
  }
  int redundant = 0;
  for (const auto& [fact, count] : coverage) {
    if (count > 1) ++redundant;
  }
  EXPECT_GT(redundant, 10);
}

TEST_F(CorpusFixture, DeterministicGeneration) {
  CorpusOptions copts;
  copts.seed = 13;
  copts.news_docs = 50;
  copts.web_docs = 20;
  Corpus again = BuildCorpus(SmallWorld(), copts);
  ASSERT_EQ(again.docs.size(), corpus_->docs.size());
  for (size_t i = 0; i < again.docs.size(); ++i) {
    EXPECT_EQ(again.docs[i].text, corpus_->docs[i].text) << i;
  }
}

}  // namespace
}  // namespace corpus
}  // namespace kb
