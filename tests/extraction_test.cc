#include <gtest/gtest.h>

#include <unordered_map>

#include "corpus/generator.h"
#include "extraction/annotation.h"
#include "extraction/bootstrap.h"
#include "extraction/distant_supervision.h"
#include "extraction/evaluation.h"
#include "extraction/infobox_extractor.h"
#include "extraction/pattern_extractor.h"

namespace kb {
namespace extraction {
namespace {

class ExtractionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 31;
    wopts.num_persons = 100;
    wopts.num_cities = 25;
    wopts.num_companies = 30;
    wopts.num_universities = 8;
    wopts.num_bands = 10;
    wopts.num_albums = 20;
    wopts.num_films = 15;
    corpus::CorpusOptions copts;
    copts.seed = 32;
    copts.news_docs = 150;
    copts.web_docs = 20;
    copts.fact_error_rate = 0.05;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    tagger_ = new nlp::PosTagger();
    sentences_ = new std::vector<AnnotatedSentence>(
        AnnotateDocuments(corpus_->world, corpus_->docs, *tagger_));
  }
  static void TearDownTestSuite() {
    delete sentences_;
    delete tagger_;
    delete corpus_;
  }

  static std::unordered_map<std::string, uint32_t> CanonicalIndex() {
    std::unordered_map<std::string, uint32_t> out;
    for (const corpus::Entity& e : corpus_->world.entities()) {
      out[e.canonical] = e.id;
    }
    return out;
  }

  static corpus::Corpus* corpus_;
  static nlp::PosTagger* tagger_;
  static std::vector<AnnotatedSentence>* sentences_;
};

corpus::Corpus* ExtractionFixture::corpus_ = nullptr;
nlp::PosTagger* ExtractionFixture::tagger_ = nullptr;
std::vector<AnnotatedSentence>* ExtractionFixture::sentences_ = nullptr;

// ---------------------------------------------------------------- Annotation

TEST_F(ExtractionFixture, AnnotationAlignsMentionsToTokens) {
  size_t mentions = 0;
  for (const AnnotatedSentence& as : *sentences_) {
    for (const SentenceMention& m : as.mentions) {
      ASSERT_LT(m.token_begin, m.token_end);
      ASSERT_LE(m.token_end, as.sentence.tokens.size());
      ++mentions;
      // The mention's first token must be part of a surface form of
      // the entity.
      const corpus::Entity& e = corpus_->world.entity(m.entity);
      const std::string& first = as.sentence.tokens[m.token_begin].text;
      bool found = e.full_name.find(first) != std::string::npos;
      for (const std::string& alias : e.aliases) {
        found = found || alias.find(first) != std::string::npos;
      }
      EXPECT_TRUE(found) << first << " vs " << e.full_name;
    }
  }
  EXPECT_GT(mentions, 1000u);
}

TEST_F(ExtractionFixture, MarkupSentencesFiltered) {
  for (const AnnotatedSentence& as : *sentences_) {
    for (const nlp::Token& t : as.sentence.tokens) {
      EXPECT_NE(t.text, "Infobox");
      EXPECT_NE(t.text, "Category");
    }
  }
}

TEST(DeduplicateFactsTest, MergesAndCounts) {
  ExtractedFact a;
  a.subject = 1;
  a.relation = corpus::Relation::kBornIn;
  a.object = 2;
  a.confidence = 0.5;
  ExtractedFact b = a;
  b.confidence = 0.9;
  ExtractedFact c = a;
  c.object = 3;
  std::vector<int> support;
  auto out = DeduplicateFacts({a, b, c}, &support);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].confidence, 0.9);
  EXPECT_EQ(support[0], 2);
  EXPECT_EQ(support[1], 1);
}

// ---------------------------------------------------------------- Patterns

TEST_F(ExtractionFixture, PatternExtractionHasHighPrecision) {
  PatternExtractor extractor(DefaultPatterns());
  auto facts = extractor.Extract(*sentences_);
  ASSERT_GT(facts.size(), 100u);
  auto base = ExpressedFacts(corpus_->docs);
  PrecisionRecall pr = EvaluateFacts(corpus_->world, facts, base);
  EXPECT_GT(pr.precision(), 0.85) << "P=" << pr.precision();
  EXPECT_GT(pr.recall(), 0.3) << "R=" << pr.recall();
  EXPECT_LT(pr.recall(), 0.95);  // hand patterns must not be complete
}

TEST_F(ExtractionFixture, PatternExtractorRespectsKindSignatures) {
  PatternExtractor extractor(DefaultPatterns());
  auto facts = extractor.Extract(*sentences_);
  for (const ExtractedFact& f : facts) {
    const auto& info = corpus::GetRelationInfo(f.relation);
    EXPECT_EQ(corpus_->world.entity(f.subject).kind, info.subject_kind);
    if (!info.literal_object) {
      EXPECT_EQ(corpus_->world.entity(f.object).kind, info.object_kind);
    }
  }
}

TEST(IsYearTokenTest, Bounds) {
  nlp::Token t;
  t.lower = "1955";
  t.pos = nlp::Pos::kNumber;
  int year = 0;
  EXPECT_TRUE(IsYearToken(t, &year));
  EXPECT_EQ(year, 1955);
  t.lower = "123";
  EXPECT_FALSE(IsYearToken(t, &year));
  t.lower = "99999";
  EXPECT_FALSE(IsYearToken(t, &year));
  t.pos = nlp::Pos::kNoun;
  t.lower = "1955";
  EXPECT_FALSE(IsYearToken(t, &year));
}

// ---------------------------------------------------------------- Infobox

TEST_F(ExtractionFixture, InfoboxExtractionIsNearPerfect) {
  InfoboxExtractor extractor(CanonicalIndex());
  auto facts = extractor.Extract(corpus_->docs);
  ASSERT_GT(facts.size(), 200u);
  size_t correct = 0;
  for (const ExtractedFact& f : facts) {
    if (corpus_->world.HasFact(f.subject, f.relation, f.object,
                               f.literal_year)) {
      ++correct;
    }
  }
  // Corrupted slots are dropped by the parser, so precision stays high.
  EXPECT_GT(static_cast<double>(correct) / facts.size(), 0.97);
}

TEST_F(ExtractionFixture, InfoboxCorruptionIsDetected) {
  InfoboxExtractor extractor(CanonicalIndex());
  auto facts = extractor.Extract(corpus_->docs);
  (void)facts;
  EXPECT_GT(extractor.malformed_slots(), 0u);
}

// ---------------------------------------------------------------- Bootstrap

TEST_F(ExtractionFixture, BootstrapLearnsUnseenTemplates) {
  // Seeds: infobox facts for studiedAt ("graduated from" is NOT in the
  // hand-written pattern set).
  InfoboxExtractor infobox(CanonicalIndex());
  auto seeds = infobox.Extract(corpus_->docs);
  Bootstrapper bootstrapper;
  auto result = bootstrapper.Run(corpus::Relation::kStudiedAt, seeds,
                                 *sentences_);
  ASSERT_FALSE(result.learned_patterns.empty());
  bool learned_graduated = false;
  for (const SurfacePattern& p : result.learned_patterns) {
    if (!p.between.empty() && p.between[0] == "graduated") {
      learned_graduated = true;
    }
  }
  EXPECT_TRUE(learned_graduated);
}

TEST_F(ExtractionFixture, BootstrapBeatsPatternRecall) {
  PatternExtractor patterns(DefaultPatterns());
  auto pattern_facts = patterns.Extract(*sentences_);
  InfoboxExtractor infobox(CanonicalIndex());
  auto seeds = infobox.Extract(corpus_->docs);

  auto base = ExpressedFacts(corpus_->docs);
  // Compare on one relation where the generator uses excluded
  // templates: kStudiedAt ("graduated from").
  auto only = [](std::vector<ExtractedFact> facts, corpus::Relation r) {
    std::vector<ExtractedFact> out;
    for (const ExtractedFact& f : facts) {
      if (f.relation == r) out.push_back(f);
    }
    return out;
  };
  Bootstrapper bootstrapper;
  auto boot = bootstrapper.Run(corpus::Relation::kStudiedAt, seeds,
                               *sentences_);
  PrecisionRecall pattern_pr = EvaluateFacts(
      corpus_->world, only(pattern_facts, corpus::Relation::kStudiedAt),
      base);
  PrecisionRecall boot_pr =
      EvaluateFacts(corpus_->world,
                    only(boot.facts, corpus::Relation::kStudiedAt), base);
  EXPECT_GT(boot_pr.recall(), pattern_pr.recall());
}

// ---------------------------------------------------------------- DS

TEST_F(ExtractionFixture, DistantSupervisionLearnsExtractor) {
  InfoboxExtractor infobox(CanonicalIndex());
  auto seeds = infobox.Extract(corpus_->docs);
  RelationClassifier classifier;
  classifier.Train(*sentences_, seeds);
  EXPECT_GT(classifier.num_features(), 100u);
  auto facts = classifier.Extract(*sentences_, 0.5);
  ASSERT_GT(facts.size(), 100u);
  auto base = ExpressedFacts(corpus_->docs);
  PrecisionRecall pr = EvaluateFacts(corpus_->world, facts, base);
  EXPECT_GT(pr.precision(), 0.6) << "P=" << pr.precision();
  EXPECT_GT(pr.recall(), 0.5) << "R=" << pr.recall();
}

TEST_F(ExtractionFixture, StatisticalRecallBeatsPatterns) {
  PatternExtractor patterns(DefaultPatterns());
  auto pattern_facts = patterns.Extract(*sentences_);
  InfoboxExtractor infobox(CanonicalIndex());
  auto seeds = infobox.Extract(corpus_->docs);
  RelationClassifier classifier;
  classifier.Train(*sentences_, seeds);
  auto ds_facts = classifier.Extract(*sentences_, 0.5);

  auto base = ExpressedFacts(corpus_->docs);
  PrecisionRecall pattern_pr =
      EvaluateFacts(corpus_->world, pattern_facts, base);
  PrecisionRecall ds_pr = EvaluateFacts(corpus_->world, ds_facts, base);
  EXPECT_GT(ds_pr.recall(), pattern_pr.recall());
}

}  // namespace
}  // namespace extraction
}  // namespace kb
