#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/harvest_checkpoint.h"
#include "core/harvester.h"
#include "core/kb_snapshot.h"
#include "core/knowledge_base.h"
#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "storage/kv_store.h"
#include "storage/wal.h"
#include "util/retry.h"

namespace kb {
namespace storage {
namespace {

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_" + name)).string();
  std::filesystem::remove_all(path);
  return path;
}

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%05d", i);
  return buf;
}

std::string Value(int i) { return "value" + std::to_string(i); }

// ------------------------------------------------- FaultInjectionEnv

TEST(FaultInjectionEnvTest, FailsAtNthOpAndStaysDown) {
  FaultInjectionEnv::Options fopts;
  fopts.fail_at_op = 3;
  fopts.torn_writes = false;
  FaultInjectionEnv env(Env::Default(), fopts);
  std::string dir = TempDir("faultenv_nth");
  ASSERT_TRUE(env.CreateDirIfMissing(dir).ok());       // op 1
  ASSERT_TRUE(env.WriteStringToFile(dir + "/a", "x").ok());  // op 2
  Status s = env.WriteStringToFile(dir + "/b", "y");   // op 3: crash
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(env.crashed());
  // Every further mutating op fails without side effects.
  EXPECT_TRUE(env.WriteStringToFile(dir + "/c", "z").IsIOError());
  EXPECT_FALSE(env.FileExists(dir + "/b"));
  EXPECT_FALSE(env.FileExists(dir + "/c"));
  // Reads still work after the crash.
  auto contents = env.ReadFileToString(dir + "/a");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "x");
  EXPECT_GE(env.injected_errors(), 2u);
}

TEST(FaultInjectionEnvTest, TornWriteKeepsSeededPrefix) {
  FaultInjectionEnv::Options fopts;
  fopts.fail_at_op = 2;
  fopts.seed = 7;
  FaultInjectionEnv env(Env::Default(), fopts);
  std::string dir = TempDir("faultenv_torn");
  ASSERT_TRUE(env.CreateDirIfMissing(dir).ok());  // op 1
  std::string payload(256, 'p');
  EXPECT_TRUE(env.WriteStringToFile(dir + "/torn", payload).IsIOError());
  if (env.FileExists(dir + "/torn")) {
    auto contents = Env::Default()->ReadFileToString(dir + "/torn");
    ASSERT_TRUE(contents.ok());
    EXPECT_LT(contents->size(), payload.size());
    EXPECT_EQ(*contents, payload.substr(0, contents->size()));
  }
}

TEST(FaultInjectionEnvTest, DropUnsyncedDataTruncatesToSyncedLength) {
  FaultInjectionEnv env(Env::Default());
  std::string dir = TempDir("faultenv_drop");
  ASSERT_TRUE(env.CreateDirIfMissing(dir).ok());
  std::string path = dir + "/file";
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(Slice("synced")).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(Slice("-unsynced")).ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  auto contents = env.ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "synced");
}

TEST(FaultInjectionEnvTest, ProbabilisticFailuresAreTransientAndSeeded) {
  FaultInjectionEnv::Options fopts;
  fopts.fail_probability = 0.5;
  fopts.seed = 11;
  FaultInjectionEnv env(Env::Default(), fopts);
  std::string dir = TempDir("faultenv_prob");
  // Retry until the dir write sticks; transient errors never latch.
  int failures = 0;
  for (int i = 0; i < 64; ++i) {
    if (!env.CreateDirIfMissing(dir).ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 64);
  EXPECT_FALSE(env.crashed());
  EXPECT_EQ(env.injected_errors(), static_cast<uint64_t>(failures));
}

TEST(FaultInjectionEnvTest, FlipBitOnReadCorruptsExactlyThatBit) {
  FaultInjectionEnv env(Env::Default());
  std::string dir = TempDir("faultenv_flip");
  ASSERT_TRUE(env.CreateDirIfMissing(dir).ok());
  std::string path = dir + "/file";
  ASSERT_TRUE(env.WriteStringToFile(path, "abcd").ok());
  env.FlipBitOnRead(path, 2, 0);
  auto corrupt = env.ReadFileToString(path);
  ASSERT_TRUE(corrupt.ok());
  EXPECT_EQ((*corrupt)[2], 'c' ^ 1);
  env.ClearReadCorruption();
  auto clean = env.ReadFileToString(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, "abcd");
}

// ----------------------------------------------------- WAL satellites

TEST(WalRobustnessTest, CloseIsIdempotent) {
  std::string dir = TempDir("wal_double_close");
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  WalWriter wal;
  ASSERT_TRUE(WalWriter::Open(dir + "/wal.log", &wal).ok());
  ASSERT_TRUE(wal.Append(EntryType::kPut, Slice("k"), Slice("v")).ok());
  EXPECT_TRUE(wal.Close().ok());
  EXPECT_FALSE(wal.is_open());
  EXPECT_TRUE(wal.Close().ok());  // second Close is a no-op
  // Appending after Close fails cleanly.
  EXPECT_TRUE(wal.Append(EntryType::kPut, Slice("k2"), Slice("v")).IsIOError());
}

TEST(WalRobustnessTest, DestructorClosesWithoutExplicitClose) {
  std::string dir = TempDir("wal_dtor_close");
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  {
    WalWriter wal;
    ASSERT_TRUE(WalWriter::Open(dir + "/wal.log", &wal).ok());
    ASSERT_TRUE(wal.Append(EntryType::kPut, Slice("k"), Slice("v")).ok());
    // No Close: the destructor must release the file.
  }
  int records = 0;
  ASSERT_TRUE(ReplayWal(dir + "/wal.log",
                        [&](EntryType, const Slice&, const Slice&) {
                          ++records;
                        })
                  .ok());
  EXPECT_EQ(records, 1);
}

class WalCorruptionShapes : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("wal_shapes");
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    path_ = dir_ + "/wal.log";
    WalWriter wal;
    ASSERT_TRUE(WalWriter::Open(path_, &wal).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          wal.Append(EntryType::kPut, Slice(Key(i)), Slice(Value(i))).ok());
    }
    ASSERT_TRUE(wal.Close().ok());
    auto contents = Env::Default()->ReadFileToString(path_);
    ASSERT_TRUE(contents.ok());
    clean_ = *contents;
  }

  /// Replays and returns the recovered (key -> value) map + info.
  std::map<std::string, std::string> Replay(WalReplayInfo* info) {
    std::map<std::string, std::string> out;
    Status s = ReplayWal(Env::Default(), path_,
                         [&](EntryType, const Slice& k, const Slice& v) {
                           out[k.ToString()] = v.ToString();
                         },
                         info);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  std::string dir_, path_, clean_;
};

TEST_F(WalCorruptionShapes, TruncatedMidVarintKeepsPrefix) {
  // Cut inside the 3rd record's length varints (4 bytes past its CRC).
  size_t third_record = 2 * (clean_.size() / 5);
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(path_,
                                      clean_.substr(0, third_record + 5))
                  .ok());
  WalReplayInfo info;
  auto recovered = Replay(&info);
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(info.records, 2u);
  EXPECT_GT(info.truncated_bytes, 0u);
  EXPECT_TRUE(recovered.count(Key(0)));
  EXPECT_TRUE(recovered.count(Key(1)));
}

TEST_F(WalCorruptionShapes, BadChecksumMidLogStopsThere) {
  // Flip a payload byte inside the 2nd record; replay must keep record
  // 1 and stop at the corruption, not resynchronize past it.
  std::string damaged = clean_;
  size_t record_size = clean_.size() / 5;
  damaged[record_size + record_size / 2] ^= 0x40;
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path_, damaged).ok());
  WalReplayInfo info;
  auto recovered = Replay(&info);
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(recovered.count(Key(0)));
  EXPECT_EQ(info.valid_bytes, record_size);
  EXPECT_EQ(info.truncated_bytes, clean_.size() - record_size);
}

TEST_F(WalCorruptionShapes, ZeroLengthFileIsEmptyNotError) {
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path_, "").ok());
  WalReplayInfo info;
  auto recovered = Replay(&info);
  EXPECT_TRUE(recovered.empty());
  EXPECT_EQ(info.records, 0u);
  EXPECT_EQ(info.truncated_bytes, 0u);
}

TEST_F(WalCorruptionShapes, DeclaredLengthsExceedingFileStopReplay) {
  // Append a record whose declared value length runs past EOF.
  std::string damaged = clean_;
  std::string bogus;
  bogus.append(4, '\x00');   // checksum placeholder
  bogus.push_back('\x04');   // key_len = 4
  bogus.push_back('\x7f');   // value_len = 127, but no bytes follow
  bogus.push_back('\x00');   // type
  bogus.append("abcd");
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path_, damaged + bogus).ok());
  WalReplayInfo info;
  auto recovered = Replay(&info);
  EXPECT_EQ(recovered.size(), 5u);
  EXPECT_EQ(info.truncated_bytes, bogus.size());
}

// ------------------------------------------- corruption + quarantine

class SstCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("sst_corrupt");
    env_ = std::make_unique<FaultInjectionEnv>(Env::Default());
    StoreOptions options;
    options.env = env_.get();
    auto store = KVStore::Open(options, dir_);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*store)->Put(Slice(Key(i)), Slice(Value(i))).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_EQ((*store)->num_tables(), 1u);
    table_path_ = dir_ + "/000001.sst";
    ASSERT_TRUE(env_->FileExists(table_path_));
  }

  std::string dir_, table_path_;
  std::unique_ptr<FaultInjectionEnv> env_;
};

TEST_F(SstCorruptionTest, BitFlippedBlockIsCorruptionNotGarbage) {
  // Flip one bit inside the first data block on every read.
  env_->FlipBitOnRead(table_path_, 10, 3);
  StoreOptions options;
  options.env = env_.get();
  auto store = KVStore::Open(options, dir_);
  // Strict open may already reject the table; if it opens (only data
  // blocks damaged), the read must surface Corruption, never garbage.
  if (store.ok()) {
    std::string value;
    Status s = (*store)->Get(Slice(Key(0)), &value);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  } else {
    EXPECT_TRUE(store.status().IsCorruption()) << store.status().ToString();
  }
}

TEST_F(SstCorruptionTest, RecoverQuarantinesCorruptTable) {
  env_->FlipBitOnRead(table_path_, 10, 3);
  StoreOptions options;
  options.env = env_.get();
  RecoveryReport report;
  auto store = KVStore::Recover(options, dir_, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(report.tables_quarantined, 1u);
  EXPECT_EQ(report.tables_loaded, 0u);
  ASSERT_EQ(report.quarantined_files.size(), 1u);
  EXPECT_TRUE(env_->FileExists(report.quarantined_files[0]));
  EXPECT_FALSE(env_->FileExists(table_path_));
  // The store serves what it can prove intact — here, nothing — but
  // never the corrupt bytes.
  std::string value;
  EXPECT_TRUE((*store)->Get(Slice(Key(0)), &value).IsNotFound());
  // New writes go to fresh table numbers, not the quarantined one.
  ASSERT_TRUE((*store)->Put(Slice("new"), Slice("value")).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_TRUE((*store)->Get(Slice("new"), &value).ok());
}

TEST_F(SstCorruptionTest, RecoverOnHealthyStoreLoadsEverything) {
  StoreOptions options;
  options.env = env_.get();
  RecoveryReport report;
  auto store = KVStore::Recover(options, dir_, &report);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(report.tables_quarantined, 0u);
  EXPECT_EQ(report.tables_loaded, 1u);
  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*store)->Get(Slice(Key(i)), &value).ok());
    EXPECT_EQ(value, Value(i));
  }
}

// ------------------------------------------------- retried WAL writes

TEST(RetriedWritesTest, TransientFaultsAreAbsorbedByRetry) {
  FaultInjectionEnv::Options fopts;
  fopts.fail_probability = 0.3;
  fopts.seed = 5;
  FaultInjectionEnv env(Env::Default(), fopts);
  std::string dir = TempDir("retried_writes");
  StoreOptions options;
  options.env = &env;
  options.retry.max_attempts = 10;
  options.retry.base_backoff_ms = 0;  // immediate retries in tests
  // Open itself can hit transient faults; retry it the same way.
  StatusOr<std::unique_ptr<KVStore>> store = Status::IOError("unopened");
  for (int attempt = 0; attempt < 10 && !store.ok(); ++attempt) {
    store = KVStore::Open(options, dir);
  }
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put(Slice(Key(i)), Slice(Value(i))).ok())
        << "put " << i;
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_GT(env.injected_errors(), 0u);
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Get(Slice(Key(i)), &value).ok());
    EXPECT_EQ(value, Value(i));
  }
}

// --------------------------------------------------- crash-loop sweep

/// Writes up to `entries` rows through a fault env that crashes at
/// `fail_at_op`, machine-crashes (drops unsynced bytes), recovers, and
/// asserts the recovered store holds an exact key prefix covering at
/// least every acknowledged write.
void RunCrashPoint(uint64_t fail_at_op, int entries) {
  SCOPED_TRACE("fail_at_op=" + std::to_string(fail_at_op));
  FaultInjectionEnv::Options fopts;
  fopts.fail_at_op = fail_at_op;
  fopts.seed = 13 + fail_at_op;
  FaultInjectionEnv env(Env::Default());
  env.Reset(fopts);
  std::string dir = TempDir("crash_loop");

  StoreOptions options;
  options.env = &env;
  options.sync_wal = true;
  options.memtable_flush_bytes = 2048;  // several flushes per run
  options.l0_compaction_trigger = 3;    // exercise compaction crashes
  options.retry.max_attempts = 2;
  options.retry.base_backoff_ms = 0;

  int acked = 0;
  {
    auto store = KVStore::Open(options, dir);
    if (store.ok()) {
      for (int i = 0; i < entries; ++i) {
        if (!(*store)->Put(Slice(Key(i)), Slice(Value(i))).ok()) break;
        acked = i + 1;
      }
    }
  }  // process "dies": store destroyed with whatever state it had

  ASSERT_TRUE(env.DropUnsyncedData().ok());  // machine crash
  env.Reset(FaultInjectionEnv::Options());   // healthy disk for recovery

  RecoveryReport report;
  auto recovered = KVStore::Recover(options, dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Exact prefix: keys 0..n-1 present with correct values, nothing
  // else, and every acknowledged (synced) write survived.
  std::vector<std::string> keys;
  Status scan_status = (*recovered)->Scan(
      Slice(), Slice(), [&](const Slice& k, const Slice& v) {
        keys.push_back(k.ToString());
        EXPECT_EQ(v.ToString(),
                  Value(static_cast<int>(keys.size()) - 1));
        return true;
      });
  ASSERT_TRUE(scan_status.ok()) << scan_status.ToString();
  ASSERT_GE(static_cast<int>(keys.size()), acked)
      << "acknowledged writes lost";
  ASSERT_LE(static_cast<int>(keys.size()), entries);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], Key(static_cast<int>(i)));
  }
}

TEST(CrashLoopTest, RecoveryIsPrefixClosedAtEveryCrashPoint) {
  constexpr int kEntries = 500;
  // Clean run first to learn the op schedule length.
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv env(Env::Default());
    std::string dir = TempDir("crash_loop_clean");
    StoreOptions options;
    options.env = &env;
    options.sync_wal = true;
    options.memtable_flush_bytes = 2048;
    options.l0_compaction_trigger = 3;
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < kEntries; ++i) {
      ASSERT_TRUE((*store)->Put(Slice(Key(i)), Slice(Value(i))).ok());
    }
    total_ops = env.op_count();
  }
  ASSERT_GT(total_ops, static_cast<uint64_t>(kEntries));

  // Sweep crash points across the whole schedule. The dense sweep is
  // CI's fault-injection job (KBFORGE_FAULT_SWEEP=full); the default
  // stride keeps local runs fast.
  const char* sweep = std::getenv("KBFORGE_FAULT_SWEEP");
  uint64_t stride = (sweep != nullptr && std::string(sweep) == "full")
                        ? 7
                        : (total_ops / 40 + 1);
  for (uint64_t fail_at = 1; fail_at <= total_ops; fail_at += stride) {
    RunCrashPoint(fail_at, kEntries);
  }
  // Always include the very last op.
  RunCrashPoint(total_ops, kEntries);
}

// ----------------------------------------- group-commit crash safety

std::string ThreadKey(int t, int i) {
  char buf[24];
  snprintf(buf, sizeof(buf), "t%02d-key%05d", t, i);
  return buf;
}

std::string ThreadValue(int t, int i) {
  return "value-" + std::to_string(t) + "-" + std::to_string(i);
}

/// Runs `threads` concurrent writers against a group-committed WAL
/// (sync_wal=true) through an env that crashes at `fail_at_op`, then
/// machine-crashes (drops unsynced bytes) and recovers. Asserts the
/// batch contract: every acknowledged write survives, and each
/// writer's recovered keys form a contiguous prefix of its issue
/// order — a batch applies all-or-nothing, so a later write can never
/// persist without the earlier ones it was acknowledged after.
void RunGroupCommitCrash(uint64_t fail_at_op, int threads, int per_thread) {
  SCOPED_TRACE("fail_at_op=" + std::to_string(fail_at_op));
  FaultInjectionEnv env(Env::Default());
  FaultInjectionEnv::Options fopts;
  fopts.fail_at_op = fail_at_op;
  fopts.seed = 17 + fail_at_op;
  env.Reset(fopts);
  std::string dir = TempDir("group_commit_crash");

  StoreOptions options;
  options.env = &env;
  options.sync_wal = true;
  options.memtable_flush_bytes = 4096;
  options.retry.max_attempts = 2;
  options.retry.base_backoff_ms = 0;

  std::vector<int> acked(threads, 0);
  {
    auto store = KVStore::Open(options, dir);
    if (store.ok()) {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          for (int i = 0; i < per_thread; ++i) {
            if (!(*store)
                     ->Put(Slice(ThreadKey(t, i)), Slice(ThreadValue(t, i)))
                     .ok()) {
              break;  // crashed env: every later write fails too
            }
            acked[t] = i + 1;
          }
        });
      }
      for (auto& w : workers) w.join();
    }
  }  // process dies with whatever state it had

  ASSERT_TRUE(env.DropUnsyncedData().ok());  // machine crash
  env.Reset(FaultInjectionEnv::Options());   // healthy disk for recovery

  RecoveryReport report;
  auto recovered = KVStore::Recover(options, dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  std::vector<int> survived(threads, 0);
  Status scan_status = (*recovered)->Scan(
      Slice(), Slice(), [&](const Slice& k, const Slice& v) {
        int t = 0, i = 0;
        EXPECT_EQ(sscanf(k.ToString().c_str(), "t%02d-key%05d", &t, &i), 2)
            << "unexpected key " << k.ToString();
        EXPECT_EQ(v.ToString(), ThreadValue(t, i));
        // Scan is key-ordered, so each writer's keys must arrive
        // ascending and contiguous: exactly the prefix property.
        EXPECT_EQ(i, survived[t]) << "gap or reorder in writer " << t;
        survived[t] = i + 1;
        return true;
      });
  ASSERT_TRUE(scan_status.ok()) << scan_status.ToString();
  for (int t = 0; t < threads; ++t) {
    EXPECT_GE(survived[t], acked[t])
        << "acknowledged write lost for writer " << t;
    EXPECT_LE(survived[t], per_thread);
  }
}

TEST(GroupCommitCrashTest, AckedWritesSurviveCrashAtManyPoints) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 120;
  // Clean run first to learn roughly how long the op schedule is. The
  // schedule is nondeterministic under concurrency, but the contract
  // must hold at *every* crash point, so any sample within range is a
  // valid probe.
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv env(Env::Default());
    std::string dir = TempDir("group_commit_clean");
    StoreOptions options;
    options.env = &env;
    options.sync_wal = true;
    options.memtable_flush_bytes = 4096;
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE(
              (*store)
                  ->Put(Slice(ThreadKey(t, i)), Slice(ThreadValue(t, i)))
                  .ok());
        }
      });
    }
    for (auto& w : workers) w.join();
    total_ops = env.op_count();
  }
  ASSERT_GT(total_ops, static_cast<uint64_t>(kThreads));

  // Spread crash points across the schedule; CI's fault-injection job
  // (KBFORGE_FAULT_SWEEP=full) probes far more densely.
  const char* sweep = std::getenv("KBFORGE_FAULT_SWEEP");
  int points = (sweep != nullptr && std::string(sweep) == "full") ? 24 : 6;
  for (int p = 1; p <= points; ++p) {
    uint64_t fail_at = total_ops * p / (points + 1) + 1;
    RunGroupCommitCrash(fail_at, kThreads, kPerThread);
  }
}

TEST(GroupCommitCrashTest, UnsyncedSuffixIsLostCleanlyWithoutReorder) {
  // sync_wal=false: acks do not promise durability, but a machine
  // crash must still lose only a *suffix* of the issue order — the
  // live WAL is truncated at its last synced byte and replayed front
  // to back, never resequenced. Rotation seals each retired log with
  // a sync, so only the live tail is ever at risk.
  FaultInjectionEnv env(Env::Default());
  std::string dir = TempDir("group_commit_unsynced");
  StoreOptions options;
  options.env = &env;
  options.sync_wal = false;
  options.memtable_flush_bytes = 2048;  // several rotations mid-stream
  constexpr int kEntries = 300;
  {
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < kEntries; ++i) {
      ASSERT_TRUE((*store)->Put(Slice(Key(i)), Slice(Value(i))).ok());
    }
  }  // no Flush, no clean-shutdown sync
  ASSERT_TRUE(env.DropUnsyncedData().ok());

  RecoveryReport report;
  auto recovered = KVStore::Recover(options, dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  std::vector<std::string> keys;
  Status scan_status = (*recovered)->Scan(
      Slice(), Slice(), [&](const Slice& k, const Slice& v) {
        EXPECT_EQ(v.ToString(), Value(static_cast<int>(keys.size())));
        keys.push_back(k.ToString());
        return true;
      });
  ASSERT_TRUE(scan_status.ok()) << scan_status.ToString();
  ASSERT_LE(keys.size(), static_cast<size_t>(kEntries));
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], Key(static_cast<int>(i))) << "hole in prefix";
  }
}

// ------------------------------------------- snapshot torn/bit-flip

core::KnowledgeBase SmallKb() {
  core::KnowledgeBase kb;
  core::FactMeta meta;
  meta.confidence = 0.9;
  meta.support = 2;
  kb.AssertType("Steve_Jobs", "entrepreneur");
  kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", meta);
  kb.AssertFact("Apple_Inc", "locatedIn", "Cupertino", meta);
  kb.AssertLabel("Steve_Jobs", "Steve Jobs", "en");
  return kb;
}

TEST(SnapshotFaultTest, BitFlippedSnapshotIsRefusedOnOpen) {
  FaultInjectionEnv env(Env::Default());
  std::string dir = TempDir("snap_flip");
  ASSERT_TRUE(env.CreateDirIfMissing(dir).ok());
  std::string path = dir + "/kb.kbsnap";
  core::KnowledgeBase kb = SmallKb();
  ASSERT_TRUE(core::WriteKbSnapshot(&env, path, kb).ok());

  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  // A flip anywhere — header, section table, payload — must refuse the
  // snapshot; OpenKbSnapshot maps through the env, so FlipBitOnRead
  // corrupts exactly what a decaying disk would.
  for (uint64_t offset : {uint64_t{4}, uint64_t{40}, *size / 2, *size - 1}) {
    env.FlipBitOnRead(path, offset, 5);
    auto snap = core::OpenKbSnapshot(&env, path);
    EXPECT_FALSE(snap.ok()) << "offset " << offset;
    EXPECT_TRUE(snap.status().IsCorruption() ||
                snap.status().IsInvalidArgument())
        << snap.status().ToString();
    env.ClearReadCorruption();
  }
  // Pristine bytes attach fine afterwards.
  auto snap = core::OpenKbSnapshot(&env, path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->size(), kb.NumTriples());
}

TEST(SnapshotFaultTest, TornSnapshotWriteIsRefused) {
  std::string dir = TempDir("snap_torn");
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  std::string path = dir + "/kb.kbsnap";
  core::KnowledgeBase kb = SmallKb();
  ASSERT_TRUE(core::WriteKbSnapshot(nullptr, path, kb).ok());
  auto clean = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(clean.ok());
  // Every truncation point loses the snapshot, never mis-attaches: the
  // header's file_size field cannot match a short file.
  for (size_t cut : {size_t{0}, size_t{12}, clean->size() / 3,
                     clean->size() - 1}) {
    ASSERT_TRUE(
        Env::Default()->WriteStringToFile(path, clean->substr(0, cut)).ok());
    EXPECT_FALSE(core::OpenKbSnapshot(nullptr, path).ok()) << "cut " << cut;
  }
}

TEST(SnapshotFaultTest, VolumeFallsBackToReplayUnderReadCorruption) {
  FaultInjectionEnv env(Env::Default());
  std::string dir = TempDir("snap_volume_fallback");
  auto volume = core::KbVolume::Open(&env, dir);
  ASSERT_TRUE(volume.ok()) << volume.status();

  core::KnowledgeBase kb = SmallKb();
  ASSERT_TRUE((*volume)->SaveDelta(kb).ok());
  ASSERT_TRUE((*volume)->Checkpoint(&kb).ok());
  core::FactMeta meta;
  meta.confidence = 0.7;
  kb.AssertFact("Apple_Inc", "created", "Macintosh", meta);
  ASSERT_TRUE((*volume)->SaveDelta(kb).ok());
  const std::string full = kb.ExportNTriples();

  // Healthy load boots from the snapshot.
  auto healthy = (*volume)->Load();
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->from_snapshot);
  EXPECT_EQ(healthy->generation, 1u);

  // With the snapshot's bytes rotting on read, Load must refuse it and
  // replay delta generations 0+1 instead — same content, no snapshot.
  env.FlipBitOnRead((*volume)->SnapshotPath(1), 64, 2);
  auto degraded = (*volume)->Load();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_FALSE(degraded->from_snapshot);
  EXPECT_EQ(degraded->generation, 0u);
  ASSERT_FALSE(degraded->refused.empty());
  EXPECT_NE(degraded->refused[0].find("snapshot-000001"), std::string::npos);

  auto lines = [](const std::string& text) {
    std::set<std::string> out;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      if (end > start) out.insert(text.substr(start, end - start));
      start = end + 1;
    }
    return out;
  };
  EXPECT_EQ(lines(degraded->kb->ExportNTriples()), lines(full));
  EXPECT_EQ(lines(healthy->kb->ExportNTriples()), lines(full));
}

// -------------------------------------------- harvester degradation

corpus::Corpus SmallCorpus() {
  corpus::WorldOptions wopts;
  wopts.seed = 31;
  wopts.num_persons = 30;
  wopts.num_cities = 10;
  wopts.num_companies = 10;
  corpus::CorpusOptions copts;
  copts.seed = 32;
  copts.news_docs = 40;
  copts.web_docs = 10;
  return corpus::BuildCorpus(wopts, copts);
}

TEST(HarvestDegradationTest, PerDocumentFailuresAreCountedAndSkipped) {
  corpus::Corpus corpus = SmallCorpus();
  core::HarvestOptions options;
  options.threads = 4;
  // ~5% of documents fail.
  std::atomic<size_t> injected{0};
  options.document_fault_hook = [&](size_t i) {
    if (i % 20 == 0) {
      injected.fetch_add(1);
      throw std::runtime_error("injected document failure");
    }
  };
  core::HarvestResult result = core::Harvester(options).Harvest(corpus);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.stats.failed_documents, injected.load());
  EXPECT_GT(result.stats.failed_documents, 0u);
  // The rest of the corpus still yields a KB.
  EXPECT_GT(result.accepted.size(), 0u);
  EXPECT_GT(result.kb.NumTriples(), 0u);
}

TEST(HarvestDegradationTest, CircuitBreakerAbortsSystematicFailure) {
  corpus::Corpus corpus = SmallCorpus();
  core::HarvestOptions options;
  options.threads = 2;
  options.max_document_failures = 3;
  options.document_fault_hook = [](size_t) {
    throw std::runtime_error("everything is broken");
  };
  core::HarvestResult result = core::Harvester(options).Harvest(corpus);
  EXPECT_TRUE(result.status.IsAborted()) << result.status.ToString();
  EXPECT_GT(result.stats.failed_documents, 3u);
}

// ------------------------------------------------ checkpointed harvest

/// Statement identity set for comparing two harvests.
std::set<std::tuple<uint32_t, int, uint32_t, int32_t>> StatementSet(
    const std::vector<extraction::ExtractedFact>& facts) {
  std::set<std::tuple<uint32_t, int, uint32_t, int32_t>> out;
  for (const auto& f : facts) {
    out.emplace(f.subject, static_cast<int>(f.relation), f.object,
                f.literal_year);
  }
  return out;
}

TEST(HarvestCheckpointTest, KilledHarvestResumesWithoutLossOrDuplicates) {
  corpus::Corpus corpus = SmallCorpus();
  core::HarvestOptions hopts;
  hopts.threads = 2;
  core::CheckpointOptions copts;
  copts.batch_docs = 16;

  // Reference: the same batched harvest, never interrupted.
  std::string ref_dir = TempDir("ckpt_reference");
  auto reference =
      core::HarvestWithCheckpoints(hopts, corpus, ref_dir, copts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->completed);
  ASSERT_GT(reference->result.accepted.size(), 0u);

  // Interrupted run: die after 2 batches, then resume to completion.
  std::string dir = TempDir("ckpt_killed");
  core::CheckpointOptions killed = copts;
  killed.max_batches = 2;
  auto first = core::HarvestWithCheckpoints(hopts, corpus, dir, killed);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->completed);
  EXPECT_EQ(first->batches_run, 2u);
  EXPECT_EQ(first->docs_processed, 2 * copts.batch_docs);

  auto resumed = core::HarvestWithCheckpoints(hopts, corpus, dir, copts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed->completed);
  EXPECT_EQ(resumed->resumed_at_doc, 2 * copts.batch_docs);
  EXPECT_EQ(resumed->docs_processed, corpus.docs.size());

  // No gold-matched fact lost, none duplicated.
  EXPECT_EQ(StatementSet(resumed->result.accepted),
            StatementSet(reference->result.accepted));
  EXPECT_EQ(resumed->result.accepted.size(),
            StatementSet(resumed->result.accepted).size());
  EXPECT_EQ(resumed->result.kb.NumTriples(),
            reference->result.kb.NumTriples());
}

TEST(HarvestCheckpointTest, CompletedRunIsIdempotentOnRerun) {
  corpus::Corpus corpus = SmallCorpus();
  core::HarvestOptions hopts;
  hopts.threads = 2;
  core::CheckpointOptions copts;
  copts.batch_docs = 32;
  std::string dir = TempDir("ckpt_rerun");
  auto first = core::HarvestWithCheckpoints(hopts, corpus, dir, copts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->completed);
  // Re-running over a finished checkpoint reprocesses nothing.
  auto second = core::HarvestWithCheckpoints(hopts, corpus, dir, copts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->completed);
  EXPECT_EQ(second->batches_run, 0u);
  EXPECT_EQ(StatementSet(second->result.accepted),
            StatementSet(first->result.accepted));
}

}  // namespace
}  // namespace storage
}  // namespace kb
