// Frame-store snapshot tests: builder/attach round trip, hybrid
// (base + delta) stores, corruption refusal, and the KbVolume
// generation lifecycle with its property test against a shadow KB.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/kb_snapshot.h"
#include "core/knowledge_base.h"
#include "rdf/frame_store.h"
#include "rdf/namespaces.h"
#include "rdf/triple_store.h"
#include "storage/env.h"
#include "util/random.h"

namespace kb {
namespace {

using rdf::FrameStore;
using rdf::FrameStoreBuilder;
using rdf::Term;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_frame_" + name))
          .string();
  std::filesystem::remove_all(path);
  return path;
}

/// Attaches a FrameStore to a string's bytes (the string outlives the
/// store via the shared owner).
StatusOr<std::shared_ptr<FrameStore>> AttachToString(std::string bytes) {
  auto owner = std::make_shared<std::string>(std::move(bytes));
  return FrameStore::Attach(owner->data(), owner->size(), owner);
}

/// A small dictionary exercising every term kind.
std::vector<Term> SampleTerms() {
  return {
      Term::Iri(rdf::EntityIri("Steve_Jobs")),
      Term::Iri(rdf::EntityIri("Apple_Inc")),
      Term::Iri(rdf::PropertyIri("founded")),
      Term::Literal("plain \"quoted\"\nvalue"),
      Term::LangLiteral("Vienne", "fr"),
      Term::IntLiteral(1976),
      Term::TypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#double"),
      Term::Blank("b1"),
  };
}

TEST(FrameStoreTest, BuilderAttachRoundTrip) {
  FrameStoreBuilder builder;
  std::vector<Term> terms = SampleTerms();
  for (size_t i = 0; i < terms.size(); ++i) {
    EXPECT_EQ(builder.AddTerm(terms[i]), static_cast<TermId>(i + 1));
  }
  builder.AddTriple(Triple(1, 3, 2));
  builder.AddTriple(Triple(2, 3, 1));
  builder.AddTriple(Triple(1, 5, 6));
  builder.SetEpoch(42);
  builder.SetNumEntities(2);
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok()) << bytes.status();

  auto store = AttachToString(*bytes);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->num_terms(), terms.size());
  EXPECT_EQ((*store)->size(), 3u);
  EXPECT_EQ((*store)->epoch(), 42u);
  EXPECT_EQ((*store)->num_entities(), 2u);

  for (size_t i = 0; i < terms.size(); ++i) {
    TermId id = static_cast<TermId>(i + 1);
    EXPECT_EQ((*store)->MaterializeTerm(id), terms[i]) << terms[i].ToString();
    EXPECT_EQ((*store)->RenderTerm(id), terms[i].ToString());
    EXPECT_EQ((*store)->LookupTerm(terms[i]), id);
  }
  EXPECT_EQ((*store)->LookupTerm(Term::Iri("http://nowhere/x")),
            rdf::kInvalidTermId);

  EXPECT_TRUE((*store)->Contains(Triple(1, 3, 2)));
  EXPECT_FALSE((*store)->Contains(Triple(2, 3, 2)));
}

TEST(FrameStoreTest, ScansMatchAllPatternShapes) {
  // Mirror a TripleStore and check every pattern shape agrees.
  rdf::TripleStore model;
  Rng rng(7);
  std::vector<TermId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(model.dict().InternIri(rdf::EntityIri("e" + std::to_string(i))));
  }
  std::set<Triple> triples;
  for (int i = 0; i < 200; ++i) {
    Triple t(ids[rng.Uniform(ids.size())], ids[rng.Uniform(ids.size())],
             ids[rng.Uniform(ids.size())]);
    model.Add(t);
    triples.insert(t);
  }
  FrameStoreBuilder builder;
  for (TermId id = 1; id <= model.dict().size(); ++id) {
    builder.AddTerm(model.dict().term(id));
  }
  for (const Triple& t : triples) builder.AddTriple(t);
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto store = AttachToString(*bytes);
  ASSERT_TRUE(store.ok()) << store.status();

  auto check = [&](const TriplePattern& pattern) {
    std::vector<Triple> expect = model.Match(pattern);
    std::sort(expect.begin(), expect.end());
    std::vector<Triple> got;
    for (auto it = (*store)->NewScan(pattern); it->Valid(); it->Next()) {
      got.push_back(it->Value());
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
    EXPECT_EQ((*store)->EstimateCount(pattern), expect.size());
    EXPECT_EQ((*store)->MatchFullScan(pattern).size(), expect.size());
  };
  TermId a = ids[3], b = ids[5];
  check(TriplePattern{});                        // (*,*,*)
  check(TriplePattern{a, rdf::kAnyTerm, rdf::kAnyTerm});
  check(TriplePattern{rdf::kAnyTerm, a, rdf::kAnyTerm});
  check(TriplePattern{rdf::kAnyTerm, rdf::kAnyTerm, a});
  check(TriplePattern{a, b, rdf::kAnyTerm});
  check(TriplePattern{rdf::kAnyTerm, a, b});
  check(TriplePattern{a, rdf::kAnyTerm, b});
  check(TriplePattern{a, a, a});
}

TEST(FrameStoreTest, TermObjectAblationMatchesIdScan) {
  FrameStoreBuilder builder;
  Term s = Term::Iri(rdf::EntityIri("S"));
  Term p = Term::Iri(rdf::PropertyIri("p"));
  Term o1 = Term::Iri(rdf::EntityIri("O1"));
  Term o2 = Term::Iri(rdf::EntityIri("O2"));
  builder.AddTerm(s);
  builder.AddTerm(p);
  builder.AddTerm(o1);
  builder.AddTerm(o2);
  builder.AddTriple(Triple(1, 2, 3));
  builder.AddTriple(Triple(1, 2, 4));
  builder.AddTriple(Triple(3, 2, 4));
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto store = AttachToString(*bytes);
  ASSERT_TRUE(store.ok());

  auto by_terms = (*store)->MatchTermObjects(&s, &p, nullptr);
  auto by_ids =
      (*store)->MatchFullScan(TriplePattern{1, 2, rdf::kAnyTerm});
  std::sort(by_terms.begin(), by_terms.end());
  std::sort(by_ids.begin(), by_ids.end());
  EXPECT_EQ(by_terms, by_ids);
  EXPECT_EQ(by_terms.size(), 2u);
  EXPECT_EQ((*store)->MatchTermObjects(nullptr, nullptr, nullptr).size(), 3u);
}

TEST(FrameStoreTest, CorruptionIsRefused) {
  FrameStoreBuilder builder;
  for (const Term& t : SampleTerms()) builder.AddTerm(t);
  builder.AddTriple(Triple(1, 3, 2));
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(AttachToString(*bytes).ok());  // pristine attaches

  // Truncation (torn write): never attaches at any cut point.
  for (size_t cut : {size_t{0}, size_t{7}, size_t{55}, bytes->size() - 1}) {
    EXPECT_FALSE(AttachToString(bytes->substr(0, cut)).ok()) << cut;
  }
  // Single-bit flips across the file: header, section table, term
  // records, arena, runs — every one must be caught by a checksum.
  for (size_t off = 0; off < bytes->size(); off += 13) {
    std::string corrupt = *bytes;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x10);
    EXPECT_FALSE(AttachToString(corrupt).ok()) << "offset " << off;
  }
}

TEST(HybridStoreTest, DeltaStaysDisjointAndReadsMerge) {
  FrameStoreBuilder builder;
  builder.AddTerm(Term::Iri(rdf::EntityIri("A")));
  builder.AddTerm(Term::Iri(rdf::PropertyIri("p")));
  builder.AddTerm(Term::Iri(rdf::EntityIri("B")));
  builder.AddTriple(Triple(1, 2, 3));
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto base = AttachToString(*bytes);
  ASSERT_TRUE(base.ok());

  rdf::TripleStore hybrid(*base);
  // Base terms resolve to their snapshot ids; new terms go above.
  EXPECT_EQ(hybrid.dict().InternIri(rdf::EntityIri("A")), 1u);
  EXPECT_EQ(hybrid.dict().base_size(), 3u);
  TermId c = hybrid.dict().InternIri(rdf::EntityIri("C"));
  EXPECT_EQ(c, 4u);
  EXPECT_EQ(hybrid.dict().term(c).value(), rdf::EntityIri("C"));
  EXPECT_EQ(hybrid.dict().term(1).value(), rdf::EntityIri("A"));

  // Re-adding a base triple is a no-op; new triples land in the delta.
  EXPECT_FALSE(hybrid.Add(Triple(1, 2, 3)));
  EXPECT_TRUE(hybrid.Add(Triple(1, 2, c)));
  EXPECT_TRUE(hybrid.Add(Triple(3, 2, c)));
  EXPECT_EQ(hybrid.size(), 3u);
  EXPECT_TRUE(hybrid.Contains(Triple(1, 2, 3)));
  EXPECT_TRUE(hybrid.Contains(Triple(1, 2, c)));

  // Merged scan covers both sides, in order, without duplicates.
  std::vector<Triple> all;
  for (auto it = hybrid.NewScan(TriplePattern{}); it->Valid(); it->Next()) {
    all.push_back(it->Value());
  }
  std::vector<Triple> expect = {Triple(1, 2, 3), Triple(1, 2, c),
                                Triple(3, 2, c)};
  EXPECT_EQ(all, expect);
  EXPECT_EQ(hybrid.EstimateCount(TriplePattern{1, 2, rdf::kAnyTerm}), 2u);
  EXPECT_EQ(hybrid.Match(TriplePattern{rdf::kAnyTerm, 2, c}).size(), 2u);
}

// --------------------------------------------------- KbVolume lifecycle

core::FactMeta MetaWith(double confidence, uint32_t support) {
  core::FactMeta meta;
  meta.confidence = confidence;
  meta.support = support;
  return meta;
}

std::multiset<std::string> Lines(const std::string& ntriples) {
  std::multiset<std::string> lines;
  std::istringstream in(ntriples);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.insert(line);
  }
  return lines;
}

TEST(KbVolumeTest, CheckpointPreservesContentEpochAndMeta) {
  std::string dir = TempDir("checkpoint");
  auto volume = core::KbVolume::Open(nullptr, dir);
  ASSERT_TRUE(volume.ok()) << volume.status();

  core::KnowledgeBase kb;
  kb.AssertType("Steve_Jobs", "entrepreneur");
  kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", MetaWith(0.9, 2));
  kb.AssertLabel("Steve_Jobs", "Steve Jobs", "en");
  kb.AssertYearFact("Apple_Inc", "foundedYear", 1976, MetaWith(1.0, 1));
  const std::string before = kb.ExportNTriples();
  const uint64_t epoch_before = kb.epoch();
  const size_t entities_before = kb.NumEntities();

  auto gen = (*volume)->Checkpoint(&kb);
  ASSERT_TRUE(gen.ok()) << gen.status();
  EXPECT_EQ(*gen, 1u);
  // The swapped KB reads identically: content, epoch, entity count.
  EXPECT_EQ(Lines(kb.ExportNTriples()), Lines(before));
  EXPECT_EQ(kb.epoch(), epoch_before);
  EXPECT_EQ(kb.NumEntities(), entities_before);
  ASSERT_NE(kb.store().base(), nullptr);
  EXPECT_EQ(kb.store().Snapshot()->size(), 0u) << "delta must be empty";

  // Packed metadata serves through MetaOf and merges on re-assert.
  Triple t(kb.EntityTerm("Steve_Jobs"), kb.PropertyTerm("founded"),
           kb.EntityTerm("Apple_Inc"));
  const core::FactMeta* meta = kb.MetaOf(t);
  ASSERT_NE(meta, nullptr);
  EXPECT_DOUBLE_EQ(meta->confidence, 0.9);
  EXPECT_EQ(meta->support, 2u);
  EXPECT_FALSE(kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc",
                             MetaWith(0.5, 3)));
  meta = kb.MetaOf(t);
  ASSERT_NE(meta, nullptr);
  EXPECT_DOUBLE_EQ(meta->confidence, 0.9);  // max
  EXPECT_EQ(meta->support, 5u);             // summed

  // Taxonomy survives the swap.
  EXPECT_GE(kb.NumClasses(), 1u);
}

TEST(KbVolumeTest, LoadReplaysWritesFromEveryGeneration) {
  std::string dir = TempDir("generations");
  auto volume = core::KbVolume::Open(nullptr, dir);
  ASSERT_TRUE(volume.ok());

  core::KnowledgeBase kb;
  kb.AssertFact("A", "knows", "B", MetaWith(0.8, 1));
  ASSERT_TRUE((*volume)->SaveDelta(kb).ok());
  auto gen = (*volume)->Checkpoint(&kb);
  ASSERT_TRUE(gen.ok()) << gen.status();
  kb.AssertFact("B", "knows", "C", MetaWith(0.7, 1));
  ASSERT_TRUE((*volume)->SaveDelta(kb).ok());
  const std::string full = kb.ExportNTriples();

  // A fresh volume handle loads snapshot gen 1 + delta gen 1.
  auto reopened = core::KbVolume::Open(nullptr, dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->current_generation(), 1u);
  auto loaded = (*reopened)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->from_snapshot);
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_TRUE(loaded->refused.empty());
  EXPECT_EQ(Lines(loaded->kb->ExportNTriples()), Lines(full));
  const core::FactMeta* meta = loaded->kb->MetaOf(
      Triple(loaded->kb->EntityTerm("A"), loaded->kb->PropertyTerm("knows"),
             loaded->kb->EntityTerm("B")));
  ASSERT_NE(meta, nullptr);
  EXPECT_DOUBLE_EQ(meta->confidence, 0.8);
}

TEST(KbVolumeTest, CorruptSnapshotFallsBackToReplay) {
  std::string dir = TempDir("fallback");
  auto volume = core::KbVolume::Open(nullptr, dir);
  ASSERT_TRUE(volume.ok());

  core::KnowledgeBase kb;
  kb.AssertFact("A", "knows", "B", MetaWith(0.8, 1));
  kb.AssertType("A", "person");
  ASSERT_TRUE((*volume)->SaveDelta(kb).ok());
  ASSERT_TRUE((*volume)->Checkpoint(&kb).ok());
  kb.AssertFact("B", "knows", "C", MetaWith(0.7, 1));
  ASSERT_TRUE((*volume)->SaveDelta(kb).ok());
  const std::string full = kb.ExportNTriples();

  // Flip one bit in the middle of the published snapshot.
  const std::string snap_path = (*volume)->SnapshotPath(1);
  auto bytes = storage::ReadFileToString(snap_path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x20;
  ASSERT_TRUE(storage::WriteStringToFile(snap_path, *bytes).ok());

  auto loaded = (*volume)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->from_snapshot);
  EXPECT_EQ(loaded->generation, 0u);
  ASSERT_EQ(loaded->refused.size(), 1u);
  EXPECT_NE(loaded->refused[0].find("snapshot-000001"), std::string::npos);
  // Replay of delta-000000 + delta-000001 reproduces the full KB.
  EXPECT_EQ(Lines(loaded->kb->ExportNTriples()), Lines(full));
  EXPECT_GE(loaded->kb->NumClasses(), 1u);
  EXPECT_EQ(loaded->kb->NumEntities(), kb.NumEntities());
}

// Property test: random insert / save / checkpoint / reload
// interleavings keep the volume KB multiset-identical to a shadow KB
// that never touches the snapshot machinery.
TEST(KbVolumeTest, RandomInterleavingsMatchShadowStore) {
  Rng rng(20260808);
  for (int round = 0; round < 3; ++round) {
    std::string dir = TempDir("prop" + std::to_string(round));
    auto volume = core::KbVolume::Open(nullptr, dir);
    ASSERT_TRUE(volume.ok());
    auto kb = std::make_unique<core::KnowledgeBase>();
    core::KnowledgeBase shadow;

    auto entity = [&](Rng& r) { return "E" + std::to_string(r.Uniform(12)); };
    auto property = [&](Rng& r) { return "p" + std::to_string(r.Uniform(4)); };
    bool dirty = false;  // unsaved writes since the last SaveDelta
    for (int step = 0; step < 120; ++step) {
      uint64_t action = rng.Uniform(100);
      if (action < 70) {
        std::string s = entity(rng), p = property(rng), o = entity(rng);
        core::FactMeta meta = MetaWith(0.5 + 0.5 * rng.UniformDouble(),
                                       1 + rng.Uniform(3));
        kb->AssertFact(s, p, o, meta);
        shadow.AssertFact(s, p, o, meta);
        dirty = true;
      } else if (action < 80) {
        std::string e = entity(rng), c = "C" + std::to_string(rng.Uniform(3));
        kb->AssertType(e, c);
        shadow.AssertType(e, c);
        dirty = true;
      } else if (action < 90) {
        ASSERT_TRUE((*volume)->SaveDelta(*kb).ok());
        dirty = false;
      } else if (action < 95) {
        auto gen = (*volume)->Checkpoint(kb.get());
        ASSERT_TRUE(gen.ok()) << gen.status();
        dirty = false;
      } else {
        // Reload from disk; whatever was not saved is legitimately
        // lost, so flush first to keep the shadow comparable.
        ASSERT_TRUE((*volume)->SaveDelta(*kb).ok());
        dirty = false;
        auto loaded = (*volume)->Load();
        ASSERT_TRUE(loaded.ok()) << loaded.status();
        EXPECT_TRUE(loaded->refused.empty());
        kb = std::move(loaded->kb);
        ASSERT_EQ(Lines(kb->ExportNTriples()),
                  Lines(shadow.ExportNTriples()))
            << "round " << round << " step " << step;
      }
    }
    if (dirty) ASSERT_TRUE((*volume)->SaveDelta(*kb).ok());
    // Final reload must equal the shadow exactly.
    auto loaded = (*volume)->Load();
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(Lines(loaded->kb->ExportNTriples()),
              Lines(shadow.ExportNTriples()));
    EXPECT_EQ(loaded->kb->NumTriples(), shadow.NumTriples());
  }
}

}  // namespace
}  // namespace kb
