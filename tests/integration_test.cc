// End-to-end integration: the full lifecycle a KB service runs —
// harvest a KB from text, complete it with mined rules, persist it,
// reopen it, serve NED and queries from it, and link it against an
// independently-derived resource.

#include <gtest/gtest.h>

#include <filesystem>

#include "commonsense/rule_application.h"
#include "commonsense/rule_miner.h"
#include "core/harvester.h"
#include "core/persistence.h"
#include "extraction/evaluation.h"
#include "linkage/blocking.h"
#include "linkage/clustering.h"
#include "linkage/graph_linker.h"
#include "ned/alias_index.h"
#include "ned/coherence.h"
#include "ned/context_model.h"
#include "ned/disambiguator.h"
#include "ned/mention_detector.h"
#include "rdf/namespaces.h"

namespace kb {
namespace {

class LifecycleFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 2014;
    wopts.num_persons = 120;
    wopts.num_cities = 30;
    wopts.num_companies = 35;
    corpus::CorpusOptions copts;
    copts.seed = 713;
    copts.news_docs = 150;
    copts.web_docs = 40;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    core::Harvester harvester;
    result_ = new core::HarvestResult(harvester.Harvest(*corpus_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete corpus_;
  }
  static corpus::Corpus* corpus_;
  static core::HarvestResult* result_;
};

corpus::Corpus* LifecycleFixture::corpus_ = nullptr;
core::HarvestResult* LifecycleFixture::result_ = nullptr;

TEST_F(LifecycleFixture, HarvestCompletePersistReloadQuery) {
  // 1. Mine rules from the harvested facts and complete the KB.
  commonsense::RuleMinerOptions mine_options;
  mine_options.min_support = 5;
  mine_options.min_confidence = 0.6;
  auto rules = commonsense::MineRules(result_->accepted, mine_options);
  auto completion = commonsense::ApplyRules(result_->accepted, rules);

  core::KnowledgeBase kb;  // rebuild with completed facts
  for (const auto& f : result_->accepted) {
    const auto& info = corpus::GetRelationInfo(f.relation);
    core::FactMeta meta;
    meta.confidence = f.confidence;
    meta.extractor = f.extractor;
    if (info.literal_object) {
      kb.AssertYearFact(corpus_->world.entity(f.subject).canonical,
                        std::string(info.name), f.literal_year, meta);
    } else {
      kb.AssertFact(corpus_->world.entity(f.subject).canonical,
                    std::string(info.name),
                    corpus_->world.entity(f.object).canonical, meta);
    }
  }
  size_t before_completion = kb.NumTriples();
  for (const auto& f : completion.inferred) {
    core::FactMeta meta;
    meta.confidence = f.confidence;
    meta.extractor = f.extractor;
    kb.AssertFact(corpus_->world.entity(f.subject).canonical,
                  std::string(corpus::GetRelationInfo(f.relation).name),
                  corpus_->world.entity(f.object).canonical, meta);
  }
  EXPECT_GT(kb.NumTriples(), before_completion);

  // 2. Persist, reopen, compare.
  std::string dir = (std::filesystem::temp_directory_path() /
                     "kbforge_lifecycle")
                        .string();
  std::filesystem::remove_all(dir);
  {
    auto storage = core::KbStorage::Open(dir);
    ASSERT_TRUE(storage.ok());
    ASSERT_TRUE((*storage)->Save(kb).ok());
  }
  auto storage = core::KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto reloaded = (*storage)->Load();
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->NumTriples(), kb.NumTriples());

  // 3. Query the reopened KB with DISTINCT + LIMIT.
  auto rows = (*reloaded)->Query(
      "SELECT DISTINCT ?c WHERE { ?p <" + rdf::PropertyIri("citizenOf") +
      "> ?c . } LIMIT 3");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(LifecycleFixture, NedServesFromHarvestedModels) {
  // The KB-side models (aliases, contexts, coherence) disambiguate a
  // stream document end to end, starting from raw text (detection).
  ned::AliasIndex aliases = ned::AliasIndex::Build(corpus_->world);
  ned::ContextModel context =
      ned::ContextModel::Build(corpus_->world, corpus_->docs);
  ned::CoherenceModel coherence =
      ned::CoherenceModel::Build(corpus_->world, corpus_->docs);
  ned::MentionDetector detector(&aliases);
  ned::Disambiguator disambiguator(&aliases, &context, &coherence,
                                   ned::NedOptions());

  size_t detected_total = 0, correct = 0, resolved = 0;
  for (const corpus::Document& doc : corpus_->docs) {
    if (doc.kind != corpus::DocKind::kNews) continue;
    corpus::Document redetected = doc;
    redetected.mentions.clear();
    for (const auto& m : detector.Detect(doc.text)) {
      corpus::Mention mention;
      mention.begin = m.begin;
      mention.end = m.end;
      redetected.mentions.push_back(mention);
    }
    detected_total += redetected.mentions.size();
    auto decisions = disambiguator.DisambiguateDocument(redetected);
    // Score against gold where spans coincide.
    for (const auto& d : decisions) {
      if (d.predicted == UINT32_MAX) continue;
      const corpus::Mention& span = redetected.mentions[d.mention_index];
      for (const corpus::Mention& gold : doc.mentions) {
        if (gold.begin == span.begin && gold.end == span.end) {
          ++resolved;
          if (gold.entity == d.predicted) ++correct;
          break;
        }
      }
    }
  }
  ASSERT_GT(detected_total, 500u);
  ASSERT_GT(resolved, 400u);
  EXPECT_GT(static_cast<double>(correct) / resolved, 0.7);
}

TEST_F(LifecycleFixture, TwoResourcesFuseIntoClusters) {
  linkage::NoisyCopyOptions a_options;
  a_options.seed = 51;
  linkage::NoisyCopyOptions b_options;
  b_options.seed = 52;
  auto a = linkage::MakeNoisyRecords(corpus_->world, a_options);
  auto b = linkage::MakeNoisyRecords(corpus_->world, b_options);
  auto pairs = linkage::GenerateCandidates(a, b, linkage::BlockingOptions());
  linkage::LogisticMatcher matcher;
  matcher.Train(a, b, pairs);
  linkage::GraphLinker linker;
  auto matches = linker.Link(a, b, pairs, matcher);
  std::vector<linkage::SameAsEdge> edges;
  for (const auto& m : matches) {
    edges.push_back({{0, m.a}, {1, m.b}, m.score});
  }
  auto clusters = linkage::ClusterSameAs(edges);
  ASSERT_GT(clusters.size(), 100u);
  for (const auto& cluster : clusters) {
    EXPECT_LE(cluster.size(), 2u);  // one record per resource
  }
}

TEST_F(LifecycleFixture, HarvestQualityHoldsOnThisSeed) {
  auto base = extraction::ExpressedFacts(corpus_->docs);
  PrecisionRecall pr =
      extraction::EvaluateFacts(corpus_->world, result_->accepted, base);
  EXPECT_GT(pr.precision(), 0.9);
  EXPECT_GT(pr.recall(), 0.8);
}

}  // namespace
}  // namespace kb
