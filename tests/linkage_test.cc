#include <gtest/gtest.h>

#include "corpus/world.h"
#include "linkage/blocking.h"
#include "linkage/clustering.h"
#include "linkage/graph_linker.h"
#include "linkage/matcher.h"
#include "linkage/record.h"
#include "linkage/similarity.h"

namespace kb {
namespace linkage {
namespace {

// ---------------------------------------------------------------- Strings

TEST(SimilarityTest, LevenshteinBasics) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
}

TEST(SimilarityTest, LevenshteinSimilarityNormalized) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abxd"), 0.75, 1e-9);
}

TEST(SimilarityTest, JaroKnownValues) {
  EXPECT_DOUBLE_EQ(Jaro("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(Jaro("abc", "xyz"), 0.0);
  // Classic textbook pair.
  EXPECT_NEAR(Jaro("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroWinkler("martha", "marhta"), 0.9611, 1e-3);
}

TEST(SimilarityTest, JaroWinklerPrefixBonus) {
  double with_prefix = JaroWinkler("hallberg", "hallburg");
  double without = Jaro("hallberg", "hallburg");
  EXPECT_GT(with_prefix, without);
}

TEST(SimilarityTest, SymmetryProperty) {
  const char* samples[] = {"elena", "elan", "viktor", "victorine", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      EXPECT_DOUBLE_EQ(Jaro(a, b), Jaro(b, a));
      EXPECT_DOUBLE_EQ(JaroWinkler(a, b), JaroWinkler(b, a));
      EXPECT_DOUBLE_EQ(NgramJaccard(a, b), NgramJaccard(b, a));
      EXPECT_EQ(Levenshtein(a, b), Levenshtein(b, a));
    }
  }
}

TEST(SimilarityTest, NgramAndTokenJaccard) {
  EXPECT_DOUBLE_EQ(NgramJaccard("abc", "abc"), 1.0);
  EXPECT_GT(NgramJaccard("marcus hallberg", "marcus hallburg"), 0.5);
  EXPECT_DOUBLE_EQ(TokenJaccard("Marcus Hallberg", "marcus hallberg"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
}

TEST(SimilarityTest, NumericSimilarity) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(1955, 1955, 5), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(1955, 1960, 5), 0.0);
  EXPECT_NEAR(NumericSimilarity(1955, 1956, 5), 0.8, 1e-9);
}

// ---------------------------------------------------------------- Records

class LinkageFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 71;
    wopts.num_persons = 150;
    wopts.num_companies = 40;
    world_ = new corpus::World(corpus::World::Generate(wopts));
    NoisyCopyOptions a_opts;
    a_opts.seed = 100;
    NoisyCopyOptions b_opts;
    b_opts.seed = 200;
    a_ = new std::vector<Record>(MakeNoisyRecords(*world_, a_opts));
    b_ = new std::vector<Record>(MakeNoisyRecords(*world_, b_opts));
  }
  static void TearDownTestSuite() {
    delete b_;
    delete a_;
    delete world_;
  }
  static corpus::World* world_;
  static std::vector<Record>* a_;
  static std::vector<Record>* b_;
};

corpus::World* LinkageFixture::world_ = nullptr;
std::vector<Record>* LinkageFixture::a_ = nullptr;
std::vector<Record>* LinkageFixture::b_ = nullptr;

TEST_F(LinkageFixture, NoisyCopiesDifferButAlign) {
  EXPECT_GT(a_->size(), 100u);
  EXPECT_NE(a_->size(), world_->ByKind(corpus::EntityKind::kPerson).size() +
                            world_->ByKind(corpus::EntityKind::kCompany)
                                .size());  // drops happened
  size_t different_names = 0, comparable = 0;
  std::map<uint32_t, const Record*> by_entity;
  for (const Record& r : *b_) by_entity[r.gold_entity] = &r;
  for (const Record& r : *a_) {
    auto it = by_entity.find(r.gold_entity);
    if (it == by_entity.end()) continue;
    ++comparable;
    if (r.name != it->second->name) ++different_names;
  }
  ASSERT_GT(comparable, 50u);
  EXPECT_GT(different_names, comparable / 5);  // noise is real
}

TEST_F(LinkageFixture, BlockingReducesPairsKeepsRecall) {
  BlockingOptions none;
  none.strategy = BlockingStrategy::kNone;
  auto full = GenerateCandidates(*a_, *b_, none);
  BlockingOptions standard;
  standard.strategy = BlockingStrategy::kStandard;
  auto blocked = GenerateCandidates(*a_, *b_, standard);
  EXPECT_LT(blocked.size(), full.size() / 5);
  EXPECT_EQ(PairsCompleteness(*a_, *b_, full), 1.0);
  // First-character blocking only loses pairs whose name mutated its
  // first character (rare: typos avoid position 0, aliases keep case).
  EXPECT_GT(PairsCompleteness(*a_, *b_, blocked), 0.75);
}

TEST_F(LinkageFixture, SortedNeighborhoodWorks) {
  BlockingOptions sn;
  sn.strategy = BlockingStrategy::kSortedNeighborhood;
  sn.window = 12;
  auto pairs = GenerateCandidates(*a_, *b_, sn);
  EXPECT_GT(pairs.size(), 0u);
  EXPECT_GT(PairsCompleteness(*a_, *b_, pairs), 0.6);
}

TEST_F(LinkageFixture, LogisticBeatsThreshold) {
  BlockingOptions standard;
  auto pairs = GenerateCandidates(*a_, *b_, standard);
  auto threshold_matches = ThresholdMatch(*a_, *b_, pairs, 0.92);
  LogisticMatcher matcher;
  matcher.Train(*a_, *b_, pairs);
  auto learned_matches = matcher.MatchPairs(*a_, *b_, pairs, 0.5);

  LinkageQuality threshold_quality =
      EvaluateMatches(*a_, *b_, threshold_matches);
  LinkageQuality learned_quality =
      EvaluateMatches(*a_, *b_, learned_matches);
  EXPECT_GT(learned_quality.f1, threshold_quality.f1)
      << "logistic F1 " << learned_quality.f1 << " vs threshold "
      << threshold_quality.f1;
  EXPECT_GT(learned_quality.f1, 0.6);
}

TEST_F(LinkageFixture, GraphLinkerBeatsRawLogistic) {
  BlockingOptions standard;
  auto pairs = GenerateCandidates(*a_, *b_, standard);
  LogisticMatcher matcher;
  matcher.Train(*a_, *b_, pairs);
  auto logistic_matches = matcher.MatchPairs(*a_, *b_, pairs, 0.5);
  GraphLinker linker;
  auto graph_matches = linker.Link(*a_, *b_, pairs, matcher);

  LinkageQuality logistic_quality =
      EvaluateMatches(*a_, *b_, logistic_matches);
  LinkageQuality graph_quality = EvaluateMatches(*a_, *b_, graph_matches);
  // One-to-one constraint + propagation should raise precision and F1.
  EXPECT_GE(graph_quality.precision, logistic_quality.precision);
  EXPECT_GT(graph_quality.f1 + 0.02, logistic_quality.f1);
}

TEST_F(LinkageFixture, GraphLinkerIsOneToOne) {
  BlockingOptions standard;
  auto pairs = GenerateCandidates(*a_, *b_, standard);
  LogisticMatcher matcher;
  matcher.Train(*a_, *b_, pairs);
  GraphLinker linker;
  auto matches = linker.Link(*a_, *b_, pairs, matcher);
  std::set<uint32_t> left, right;
  for (const Match& m : matches) {
    EXPECT_TRUE(left.insert(m.a).second);
    EXPECT_TRUE(right.insert(m.b).second);
  }
}


// ---------------------------------------------------------------- Clusters

TEST(ClusteringTest, TransitiveMergeAcrossResources) {
  // A0 = B0 = C0 should form one 3-resource cluster.
  std::vector<SameAsEdge> edges = {
      {{0, 0}, {1, 0}, 0.9},
      {{1, 0}, {2, 0}, 0.8},
      {{0, 1}, {1, 1}, 0.7},
  };
  auto clusters = ClusterSameAs(edges);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 3u);
  EXPECT_EQ(clusters[1].size(), 2u);
}

TEST(ClusteringTest, OnePerResourceConstraintBlocksWeakEdge) {
  // Two records of resource 1 both claim record (0,0); only the
  // stronger link wins.
  std::vector<SameAsEdge> edges = {
      {{0, 0}, {1, 0}, 0.9},
      {{0, 0}, {1, 1}, 0.6},
  };
  auto clusters = ClusterSameAs(edges);
  ASSERT_EQ(clusters.size(), 2u);
  // The 0.9 edge formed the pair; (1,1) stays alone.
  bool found_pair = false;
  for (const auto& c : clusters) {
    if (c.size() == 2) {
      found_pair = true;
      EXPECT_EQ(c[0].resource, 0u);
      EXPECT_EQ(c[1], (ResourceRecord{1, 0}));
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(ClusteringTest, ConstraintOffMergesEverything) {
  std::vector<SameAsEdge> edges = {
      {{0, 0}, {1, 0}, 0.9},
      {{0, 0}, {1, 1}, 0.6},
  };
  ClusterOptions options;
  options.one_per_resource = false;
  auto clusters = ClusterSameAs(edges, options);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 3u);
}

TEST_F(LinkageFixture, EndToEndClusteringMatchesGold) {
  BlockingOptions standard;
  auto pairs = GenerateCandidates(*a_, *b_, standard);
  LogisticMatcher matcher;
  matcher.Train(*a_, *b_, pairs);
  GraphLinker linker;
  auto matches = linker.Link(*a_, *b_, pairs, matcher);
  std::vector<SameAsEdge> edges;
  for (const Match& m : matches) {
    edges.push_back({{0, m.a}, {1, m.b}, m.score});
  }
  auto clusters = ClusterSameAs(edges);
  size_t pure = 0;
  for (const auto& cluster : clusters) {
    if (cluster.size() != 2) continue;
    uint32_t ea = (*a_)[cluster[0].record].gold_entity;
    uint32_t eb = (*b_)[cluster[1].record].gold_entity;
    if (ea == eb) ++pure;
  }
  EXPECT_GT(static_cast<double>(pure) / clusters.size(), 0.85);
}

TEST(ComputeFeaturesTest, IdenticalRecordsScoreHigh) {
  Record r;
  r.name = "Marcus Hallberg";
  r.kind = "person";
  r.year = 1955;
  r.place = "Northfield";
  PairFeatures f = ComputeFeatures(r, r);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 1.0);
}

}  // namespace
}  // namespace linkage
}  // namespace kb
