#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "loadgen/key_chooser.h"
#include "loadgen/open_loop.h"
#include "loadgen/workload.h"
#include "util/metrics_registry.h"
#include "util/random.h"

namespace kb {
namespace loadgen {
namespace {

// ------------------------------------------------------------ choosers

TEST(UniformChooserTest, CoversRangeRoughlyEvenly) {
  Rng rng(7);
  UniformChooser chooser(10);
  std::vector<uint64_t> counts(10, 0);
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t k = chooser.Next(rng);
    ASSERT_LT(k, 10u);
    ++counts[k];
  }
  for (uint64_t c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(ZipfianChooserTest, ZetaMatchesDirectSum) {
  double direct = 0;
  for (uint64_t i = 1; i <= 1000; ++i) direct += 1.0 / std::pow(i, 0.99);
  EXPECT_NEAR(ZipfianChooser::Zeta(1000, 0.99), direct, 1e-9);
  // Incremental extension from a cached prefix equals the full sum.
  double prefix = ZipfianChooser::Zeta(600, 0.99);
  EXPECT_NEAR(ZipfianChooser::Zeta(1000, 0.99, 600, prefix), direct, 1e-9);
}

// Chi-square-style goodness-of-fit of observed rank frequencies
// against the exact Zipf pmf p_i = (1/(i+1)^theta) / zeta(n, theta).
// The Gray et al. inversion is approximate in the tail, so the check
// bands the statistic rather than applying a textbook critical value;
// a broken generator (uniform, shifted, or collapsed onto one rank)
// overshoots the band by orders of magnitude.
TEST(ZipfianChooserTest, RankFrequenciesFollowZipfPmf) {
  const uint64_t kRecords = 100;
  const double kTheta = 0.99;
  const int kDraws = 200000;
  Rng rng(42);
  ZipfianChooser chooser(kRecords, kTheta);
  std::vector<uint64_t> counts(kRecords, 0);
  for (int i = 0; i < kDraws; ++i) {
    uint64_t k = chooser.Next(rng);
    ASSERT_LT(k, kRecords);
    ++counts[k];
  }
  double zetan = ZipfianChooser::Zeta(kRecords, kTheta);
  double chi2 = 0;
  for (uint64_t i = 0; i < kRecords; ++i) {
    double expected = kDraws * (1.0 / std::pow(i + 1, kTheta)) / zetan;
    double diff = counts[i] - expected;
    chi2 += diff * diff / expected;
  }
  // 99 degrees of freedom: a faithful sampler lands in the low
  // hundreds here; a uniform sampler scores > 100000.
  EXPECT_LT(chi2, 2000.0);
  // Head behaviour: rank 0 is the mode and beats rank 1, which beats
  // the deep tail.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[kRecords - 1]);
  // Rank 0 is handled exactly by the inversion: its observed share
  // should be within 5% (relative) of 1/zetan.
  double share0 = static_cast<double>(counts[0]) / kDraws;
  EXPECT_NEAR(share0, 1.0 / zetan, 0.05 / zetan);
}

TEST(ZipfianChooserTest, DeterministicGivenSeed) {
  ZipfianChooser a(1000), b(1000);
  Rng ra(99), rb(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(ra), b.Next(rb));
}

TEST(LatestChooserTest, FavorsNewestAndTracksGrowth) {
  std::atomic<uint64_t> inserted{100};
  LatestChooser chooser(&inserted);
  Rng rng(5);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = chooser.Next(rng);
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  // Hottest record is the most recent insert, and recency decays.
  EXPECT_GT(counts[99], counts[98]);
  EXPECT_GT(counts[99], 20000u / 10);
  // Growing the key space shifts the mode to the new maximum.
  inserted.store(200);
  std::map<uint64_t, uint64_t> grown;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = chooser.Next(rng);
    ASSERT_LT(k, 200u);
    ++grown[k];
  }
  EXPECT_GT(grown[199], grown[99]);
}

// ------------------------------------------------------------ workloads

TEST(WorkloadTest, YcsbPresetsMatchTheMatrix) {
  Workload a = Workload::Ycsb('A');
  EXPECT_DOUBLE_EQ(a.mix.read, 0.5);
  EXPECT_DOUBLE_EQ(a.mix.update, 0.5);
  EXPECT_EQ(a.skew, Skew::kZipfian);
  Workload d = Workload::Ycsb('d');  // case-insensitive
  EXPECT_DOUBLE_EQ(d.mix.read, 0.95);
  EXPECT_DOUBLE_EQ(d.mix.insert, 0.05);
  EXPECT_EQ(d.skew, Skew::kLatest);
  Workload e = Workload::Ycsb('E');
  EXPECT_DOUBLE_EQ(e.mix.scan, 0.95);
  EXPECT_DOUBLE_EQ(e.mix.insert, 0.05);
}

TEST(WorkloadTest, MixRatiosHoldOverManyDraws) {
  Workload b = Workload::Ycsb('B');  // 95% read / 5% update
  Rng rng(11);
  const int kDraws = 10000;
  int reads = 0, updates = 0, inserts = 0, scans = 0;
  for (int i = 0; i < kDraws; ++i) {
    switch (b.mix.Choose(rng)) {
      case OpType::kRead: ++reads; break;
      case OpType::kUpdate: ++updates; break;
      case OpType::kInsert: ++inserts; break;
      case OpType::kScan: ++scans; break;
    }
  }
  EXPECT_EQ(inserts, 0);
  EXPECT_EQ(scans, 0);
  EXPECT_NEAR(reads / static_cast<double>(kDraws), 0.95, 0.01);
  EXPECT_NEAR(updates / static_cast<double>(kDraws), 0.05, 0.01);
}

TEST(WorkloadTest, MakeChooserMatchesSkew) {
  std::atomic<uint64_t> inserted{50};
  Workload c = Workload::Ycsb('C');
  auto zipf = c.MakeChooser(50, nullptr);
  ASSERT_NE(zipf, nullptr);
  Workload d = Workload::Ycsb('D');
  auto latest = d.MakeChooser(50, &inserted);
  ASSERT_NE(latest, nullptr);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf->Next(rng), 50u);
    EXPECT_LT(latest->Next(rng), 50u);
  }
}

// ------------------------------------------------------------ open loop

TEST(OpenLoopTest, EmitsEveryOpAtTargetRate) {
  OpenLoopOptions options;
  options.target_ops_per_sec = 2000;
  options.num_ops = 400;
  options.num_threads = 2;
  MetricsRegistry registry;
  Histogram& latency = registry.histogram("ol.lat");
  std::atomic<uint64_t> ran{0};
  OpenLoopResult result = RunOpenLoop(
      options,
      [&](uint64_t, Rng&) {
        ran.fetch_add(1);
        return true;
      },
      &latency);
  EXPECT_EQ(result.scheduled, 400u);
  EXPECT_EQ(result.completed, 400u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(ran.load(), 400u);
  EXPECT_EQ(latency.count(), 400u);
  // The schedule spans num_ops/rate = 0.2s; an open loop must not run
  // ahead of it, and on an idle op should not lag it much either.
  EXPECT_GE(result.wall_seconds, 0.18);
  EXPECT_LE(result.wall_seconds, 1.0);
  EXPECT_GE(result.achieved_ops_per_sec(), 400.0);
  EXPECT_LE(result.achieved_ops_per_sec(), 2300.0);
}

TEST(OpenLoopTest, CountsErrorsWithoutRecordingLatency) {
  OpenLoopOptions options;
  options.target_ops_per_sec = 5000;
  options.num_ops = 100;
  MetricsRegistry registry;
  Histogram& latency = registry.histogram("ol.err");
  OpenLoopResult result = RunOpenLoop(
      options, [](uint64_t i, Rng&) { return i % 4 != 0; }, &latency);
  EXPECT_EQ(result.completed, 75u);
  EXPECT_EQ(result.errors, 25u);
  EXPECT_EQ(latency.count(), 75u);
}

TEST(OpenLoopTest, PerThreadRngsAreSeededAndDeterministic) {
  std::vector<uint64_t> first, second;
  for (int round = 0; round < 2; ++round) {
    OpenLoopOptions options;
    options.target_ops_per_sec = 100000;
    options.num_ops = 64;
    options.num_threads = 4;
    options.seed = 123;
    std::mutex mu;
    std::map<uint64_t, uint64_t> draws;
    RunOpenLoop(
        options,
        [&](uint64_t i, Rng& rng) {
          uint64_t v = rng.Uniform(1u << 30);
          std::lock_guard<std::mutex> lock(mu);
          draws[i] = v;
          return true;
        },
        nullptr);
    std::vector<uint64_t>& out = round == 0 ? first : second;
    for (const auto& [i, v] : draws) out.push_back(v);
  }
  EXPECT_EQ(first, second);
}

// The coordinated-omission check: one stalled op must poison the
// latency of every op queued behind it, because each op is charged
// from its *intended* start. A closed loop would record ~0ms for all
// the delayed ops; the open loop must not.
TEST(OpenLoopTest, QueueingDelayLandsInTheHistogram) {
  OpenLoopOptions options;
  options.target_ops_per_sec = 1000;  // 1ms spacing
  options.num_ops = 50;
  options.num_threads = 1;
  MetricsRegistry registry;
  Histogram& latency = registry.histogram("ol.co");
  OpenLoopResult result = RunOpenLoop(
      options,
      [&](uint64_t i, Rng&) {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return true;
      },
      &latency);
  EXPECT_EQ(result.completed, 50u);
  // Ops 1..49 were due at 1..49ms but could not start before ~100ms,
  // so the *median* latency reflects the stall, not just the max.
  EXPECT_GT(latency.Quantile(0.5), 30.0);
  EXPECT_GT(latency.max(), 90.0);
}

}  // namespace
}  // namespace loadgen
}  // namespace kb
