#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "multilingual/aligner.h"
#include "multilingual/interwiki.h"

namespace kb {
namespace multilingual {
namespace {

class MultilingualFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 91;
    wopts.num_persons = 100;
    corpus::CorpusOptions copts;
    copts.seed = 92;
    copts.news_docs = 5;
    copts.web_docs = 5;
    copts.interwiki_coverage = 0.7;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
  }
  static void TearDownTestSuite() { delete corpus_; }
  static corpus::Corpus* corpus_;
};

corpus::Corpus* MultilingualFixture::corpus_ = nullptr;

TEST_F(MultilingualFixture, InterwikiHarvestIsAccurate) {
  auto labels = HarvestInterwikiLabels(corpus_->docs);
  ASSERT_GT(labels.size(), corpus_->world.entities().size());
  for (const MultilingualLabel& l : labels) {
    const corpus::Entity& e = corpus_->world.entity(l.entity);
    auto it = e.labels.find(l.lang);
    ASSERT_NE(it, e.labels.end()) << l.lang;
    EXPECT_EQ(l.label, it->second) << e.canonical;
  }
}

TEST_F(MultilingualFixture, InterwikiCoverageMatchesGenerator) {
  auto labels = HarvestInterwikiLabels(corpus_->docs);
  // ~70% coverage x 2 languages per entity.
  double expected =
      2.0 * 0.7 * static_cast<double>(corpus_->world.entities().size());
  EXPECT_NEAR(static_cast<double>(labels.size()), expected,
              expected * 0.2);
}

// Builds the two alignment views: English labels + link structure vs a
// foreign ("de") copy with permuted ids.
struct ViewPair {
  KbView left;
  KbView right;
  std::vector<uint32_t> gold_right_of_left;  // left id -> right id
};

ViewPair MakeViews(const corpus::World& world) {
  ViewPair views;
  size_t n = world.entities().size();
  views.left.labels.resize(n);
  views.left.neighbors.resize(n);
  views.right.labels.resize(n);
  views.right.neighbors.resize(n);
  views.gold_right_of_left.resize(n);
  // Permute foreign ids deterministically.
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = (i * 31 + 7) % n;
  // perm must be a bijection: 31 coprime with n may fail; fix by
  // using a simple swap-based shuffle instead.
  Rng rng(1234);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  rng.Shuffle(&perm);
  for (uint32_t i = 0; i < n; ++i) {
    views.left.labels[i] = world.entity(i).labels.at("en");
    views.right.labels[perm[i]] = world.entity(i).labels.at("de");
    views.gold_right_of_left[i] = perm[i];
  }
  for (const corpus::GoldFact& f : world.facts()) {
    if (corpus::GetRelationInfo(f.relation).literal_object) continue;
    views.left.neighbors[f.subject].push_back(f.object);
    views.left.neighbors[f.object].push_back(f.subject);
    views.right.neighbors[perm[f.subject]].push_back(perm[f.object]);
    views.right.neighbors[perm[f.object]].push_back(perm[f.subject]);
  }
  return views;
}

TEST_F(MultilingualFixture, AlignerRecoversMapping) {
  ViewPair views = MakeViews(corpus_->world);
  // Seeds: 10% of entities (as interwiki links would provide).
  std::vector<Alignment> seeds;
  for (uint32_t i = 0; i < views.left.labels.size(); i += 10) {
    seeds.push_back({i, views.gold_right_of_left[i], 1.0});
  }
  AlignerOptions options;
  auto alignments = AlignViews(views.left, views.right, seeds, options);
  ASSERT_GT(alignments.size(), views.left.labels.size() / 3);
  size_t correct = 0;
  for (const Alignment& a : alignments) {
    if (views.gold_right_of_left[a.left] == a.right) ++correct;
  }
  double precision =
      static_cast<double>(correct) / static_cast<double>(alignments.size());
  EXPECT_GT(precision, 0.9) << "precision " << precision << " over "
                            << alignments.size();
}

TEST_F(MultilingualFixture, StructureHelpsBeyondStrings) {
  ViewPair views = MakeViews(corpus_->world);
  std::vector<Alignment> seeds;
  for (uint32_t i = 0; i < views.left.labels.size(); i += 10) {
    seeds.push_back({i, views.gold_right_of_left[i], 1.0});
  }
  auto count_correct = [&](double structure_weight) {
    AlignerOptions options;
    options.structure_weight = structure_weight;
    auto alignments = AlignViews(views.left, views.right, seeds, options);
    size_t correct = 0;
    for (const Alignment& a : alignments) {
      if (views.gold_right_of_left[a.left] == a.right) ++correct;
    }
    return correct;
  };
  size_t with_structure = count_correct(1.5);
  size_t strings_only = count_correct(0.0);
  EXPECT_GE(with_structure, strings_only);
}

TEST(AlignerTest, EmptyViewsAlignNothing) {
  KbView empty;
  auto alignments = AlignViews(empty, empty, {}, AlignerOptions());
  EXPECT_TRUE(alignments.empty());
}

}  // namespace
}  // namespace multilingual
}  // namespace kb
