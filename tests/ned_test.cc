#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "ned/alias_index.h"
#include "ned/coherence.h"
#include "ned/context_model.h"
#include "ned/disambiguator.h"
#include "ned/mention_detector.h"

namespace kb {
namespace ned {
namespace {

class NedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 61;
    wopts.num_persons = 150;
    wopts.surname_reuse = 0.6;  // plenty of ambiguity
    corpus::CorpusOptions copts;
    copts.seed = 62;
    copts.news_docs = 120;
    copts.mention_ambiguity = 0.45;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    aliases_ = new AliasIndex(AliasIndex::Build(corpus_->world));
    context_ = new ContextModel(
        ContextModel::Build(corpus_->world, corpus_->docs));
    coherence_ = new CoherenceModel(
        CoherenceModel::Build(corpus_->world, corpus_->docs));
  }
  static void TearDownTestSuite() {
    delete coherence_;
    delete context_;
    delete aliases_;
    delete corpus_;
  }

  /// NED accuracy over news docs (test set) for a mode.
  static double Accuracy(NedMode mode, bool ambiguous_only = false) {
    NedOptions options;
    options.mode = mode;
    Disambiguator disambiguator(aliases_, context_, coherence_, options);
    size_t correct = 0, total = 0;
    for (const corpus::Document& doc : corpus_->docs) {
      if (doc.kind != corpus::DocKind::kNews) continue;
      auto decisions = disambiguator.DisambiguateDocument(doc);
      for (const Disambiguation& d : decisions) {
        if (ambiguous_only && d.num_candidates < 2) continue;
        ++total;
        if (d.predicted == doc.mentions[d.mention_index].entity) ++correct;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(correct) / total;
  }

  static corpus::Corpus* corpus_;
  static AliasIndex* aliases_;
  static ContextModel* context_;
  static CoherenceModel* coherence_;
};

corpus::Corpus* NedFixture::corpus_ = nullptr;
AliasIndex* NedFixture::aliases_ = nullptr;
ContextModel* NedFixture::context_ = nullptr;
CoherenceModel* NedFixture::coherence_ = nullptr;

// ---------------------------------------------------------------- Aliases

TEST_F(NedFixture, AliasIndexCoversAllSurfaceForms) {
  for (const corpus::Entity& e : corpus_->world.entities()) {
    const auto* candidates = aliases_->Lookup(e.full_name);
    ASSERT_NE(candidates, nullptr) << e.full_name;
    bool found = false;
    for (const Candidate& c : *candidates) found = found || c.entity == e.id;
    EXPECT_TRUE(found) << e.full_name;
  }
}

TEST_F(NedFixture, AmbiguousSurfacesExist) {
  EXPECT_GT(aliases_->num_ambiguous_surfaces(), 10u);
}

TEST_F(NedFixture, PriorsSumToOneAndSort) {
  for (const corpus::Entity& e : corpus_->world.entities()) {
    const auto* candidates = aliases_->Lookup(e.full_name);
    ASSERT_NE(candidates, nullptr);
    double sum = 0;
    double prev = 2.0;
    for (const Candidate& c : *candidates) {
      sum += c.prior;
      EXPECT_LE(c.prior, prev);
      prev = c.prior;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------- Context

TEST_F(NedFixture, EntityMatchesOwnArticleContext) {
  // An entity's article text should be most similar to its own vector.
  int checked = 0;
  for (uint32_t id : corpus_->world.ByKind(corpus::EntityKind::kPerson)) {
    if (checked >= 20) break;
    const corpus::Document& doc = corpus_->docs[id];
    auto ctx = context_->VectorizeText(doc.text);
    double own = context_->Similarity(id, ctx);
    EXPECT_GT(own, 0.3) << corpus_->world.entity(id).canonical;
    ++checked;
  }
}

TEST(ContextWordsTest, WindowAndStopwords) {
  std::string text = "The famous singer from Northfield released an album.";
  auto words = ContextWords(text, 11, 17, 100);  // around "singer"
  // Stopwords dropped; mention word excluded from the window.
  for (const std::string& w : words) {
    EXPECT_NE(w, "the");
    EXPECT_NE(w, "singer");
  }
  EXPECT_FALSE(words.empty());
}

// ---------------------------------------------------------------- Coherence

TEST_F(NedFixture, RelatedEntitiesScoreHigherThanRandom) {
  // A person and their birth city co-occur in articles: related.
  double related_sum = 0;
  double unrelated_sum = 0;
  int n = 0;
  const auto& persons = corpus_->world.ByKind(corpus::EntityKind::kPerson);
  for (uint32_t person : persons) {
    if (n >= 30) break;
    uint32_t city = UINT32_MAX;
    for (const corpus::GoldFact* f : corpus_->world.FactsOf(person)) {
      if (f->relation == corpus::Relation::kBornIn) city = f->object;
    }
    if (city == UINT32_MAX) continue;
    uint32_t random_person = persons[(person * 31 + 7) % persons.size()];
    if (random_person == person) continue;
    related_sum += coherence_->Relatedness(person, city);
    unrelated_sum += coherence_->Relatedness(person, random_person);
    ++n;
  }
  ASSERT_GT(n, 10);
  EXPECT_GT(related_sum, unrelated_sum);
}

TEST_F(NedFixture, RelatednessIsBounded) {
  for (uint32_t a = 0; a < 20; ++a) {
    for (uint32_t b = 0; b < 20; ++b) {
      double r = coherence_->Relatedness(a, b);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

// ---------------------------------------------------------------- NED

TEST_F(NedFixture, AblationOrderingHolds) {
  double prior = Accuracy(NedMode::kPrior);
  double context = Accuracy(NedMode::kContext);
  double coherence = Accuracy(NedMode::kCoherence);
  // The tutorial's claim: context helps over prior, coherence helps
  // further (AIDA shape).
  EXPECT_GT(context, prior - 0.02);
  EXPECT_GT(coherence, prior);
  EXPECT_GE(coherence + 0.01, context);
  EXPECT_GT(coherence, 0.75) << "joint NED accuracy too low";
}

TEST_F(NedFixture, AmbiguousMentionsAreTheHardCase) {
  double all = Accuracy(NedMode::kCoherence);
  double ambiguous = Accuracy(NedMode::kCoherence, true);
  EXPECT_LE(ambiguous, all + 1e-9);
  // On the ambiguous subset the joint model must beat the prior-only
  // baseline (the tutorial's "biggest gain on ambiguous mentions").
  double prior_ambiguous = Accuracy(NedMode::kPrior, true);
  EXPECT_GT(ambiguous, prior_ambiguous);
  EXPECT_GT(ambiguous, 0.35);
}

TEST_F(NedFixture, UnambiguousMentionsAreTrivial) {
  NedOptions options;
  options.mode = NedMode::kPrior;
  Disambiguator d(aliases_, context_, coherence_, options);
  for (const corpus::Document& doc : corpus_->docs) {
    if (doc.kind != corpus::DocKind::kNews) continue;
    for (const Disambiguation& dec : d.DisambiguateDocument(doc)) {
      if (dec.num_candidates == 1) {
        EXPECT_EQ(dec.predicted, doc.mentions[dec.mention_index].entity);
      }
    }
    break;
  }
}


// ---------------------------------------------------------------- Detector

TEST_F(NedFixture, DetectorFindsGoldSpans) {
  MentionDetector detector(aliases_);
  DetectionQuality total;
  for (const corpus::Document& doc : corpus_->docs) {
    if (doc.kind != corpus::DocKind::kNews) continue;
    DetectionQuality q = detector.Evaluate(doc);
    total.detected += q.detected;
    total.gold += q.gold;
    total.exact_matches += q.exact_matches;
  }
  ASSERT_GT(total.gold, 500u);
  EXPECT_GT(total.recall(), 0.9) << "R=" << total.recall();
  EXPECT_GT(total.precision(), 0.9) << "P=" << total.precision();
}

TEST_F(NedFixture, DetectorLongestMatchWins) {
  MentionDetector detector(aliases_);
  // A full name must be detected as one mention, not surname-only.
  const corpus::Entity& person =
      corpus_->world.entity(corpus_->world.ByKind(
          corpus::EntityKind::kPerson)[0]);
  std::string text = "Yesterday " + person.full_name + " arrived.";
  auto mentions = detector.Detect(text);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].surface, person.full_name);
}

TEST_F(NedFixture, DetectorIgnoresLowercaseNoise) {
  MentionDetector detector(aliases_);
  auto mentions = detector.Detect("the weather was pleasant and warm");
  EXPECT_TRUE(mentions.empty());
}

// ---------------------------------------------------------------- NIL

TEST_F(NedFixture, NilThresholdAbstainsOnWeakCandidates) {
  NedOptions options;
  options.mode = NedMode::kContext;
  options.nil_threshold = 1e9;  // absurd: everything becomes NIL
  Disambiguator d(aliases_, context_, coherence_, options);
  for (const corpus::Document& doc : corpus_->docs) {
    if (doc.kind != corpus::DocKind::kNews) continue;
    for (const Disambiguation& dec : d.DisambiguateDocument(doc)) {
      EXPECT_EQ(dec.predicted, UINT32_MAX);
    }
    break;
  }
}

TEST_F(NedFixture, UnknownSurfaceMapsToNil) {
  NedOptions options;
  Disambiguator d(aliases_, context_, coherence_, options);
  corpus::Document doc;
  doc.text = "Zzyzx Quuxbar spoke.";
  corpus::Mention m;
  m.begin = 0;
  m.end = 13;  // "Zzyzx Quuxbar"
  m.entity = 0;
  doc.mentions.push_back(m);
  auto decisions = d.DisambiguateDocument(doc);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].predicted, UINT32_MAX);
  EXPECT_EQ(decisions[0].num_candidates, 0u);
}

}  // namespace
}  // namespace ned
}  // namespace kb
