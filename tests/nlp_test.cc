#include <gtest/gtest.h>

#include "nlp/chunker.h"
#include "nlp/pos_tagger.h"
#include "nlp/stemmer.h"
#include "nlp/stopwords.h"
#include "nlp/tfidf.h"
#include "nlp/tokenizer.h"

namespace kb {
namespace nlp {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.text);
  return out;
}

// ---------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, SplitsWordsAndPunctuation) {
  auto tokens = Tokenize("Marcus founded Hallberg Systems.");
  EXPECT_EQ(Texts(tokens),
            (std::vector<std::string>{"Marcus", "founded", "Hallberg",
                                      "Systems", "."}));
}

TEST(TokenizerTest, KeepsDecimalsAndHyphens) {
  auto tokens = Tokenize("about 3.14 never-ending O'Brien");
  EXPECT_EQ(Texts(tokens),
            (std::vector<std::string>{"about", "3.14", "never-ending",
                                      "O'Brien"}));
}

TEST(TokenizerTest, OffsetsAreExact) {
  std::string text = "Elena  married Viktor.";
  auto tokens = Tokenize(text);
  for (const Token& t : tokens) {
    EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
  }
}

TEST(TokenizerTest, CommaSeparated) {
  auto tokens = Tokenize("Elena, who sang, left.");
  EXPECT_EQ(Texts(tokens),
            (std::vector<std::string>{"Elena", ",", "who", "sang", ",",
                                      "left", "."}));
}

TEST(SentenceSplitterTest, SplitsOnPeriodBeforeCapital) {
  auto sentences =
      SplitSentences("Elena sang. Viktor listened. They left.");
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(sentences[1].tokens[0].text, "Viktor");
}

TEST(SentenceSplitterTest, KeepsAbbreviations) {
  auto sentences = SplitSentences("Dr. Novak arrived. He spoke.");
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[0].tokens[0].text, "Dr");
}

TEST(SentenceSplitterTest, TokenOffsetsPointIntoDocument) {
  std::string text = "Elena sang. Viktor listened.";
  auto sentences = SplitSentences(text);
  ASSERT_EQ(sentences.size(), 2u);
  const Token& viktor = sentences[1].tokens[0];
  EXPECT_EQ(text.substr(viktor.begin, viktor.end - viktor.begin), "Viktor");
}

TEST(SentenceSplitterTest, ParagraphBreaks) {
  auto sentences = SplitSentences("First line\n\nsecond block here");
  ASSERT_EQ(sentences.size(), 2u);
}

// ---------------------------------------------------------------- Tagger

TEST(PosTaggerTest, TagsClosedClassWords) {
  PosTagger tagger;
  auto tokens = Tokenize("The singer works for the company.");
  tagger.Tag(&tokens);
  EXPECT_EQ(tokens[0].pos, Pos::kDeterminer);
  EXPECT_EQ(tokens[1].pos, Pos::kNoun);
  EXPECT_EQ(tokens[2].pos, Pos::kVerb);
  EXPECT_EQ(tokens[3].pos, Pos::kPreposition);
  EXPECT_EQ(tokens[5].pos, Pos::kNoun);
  EXPECT_EQ(tokens[6].pos, Pos::kPunctuation);
}

TEST(PosTaggerTest, CapitalizedMidSentenceIsProperNoun) {
  PosTagger tagger;
  auto tokens = Tokenize("Yesterday Elena met Viktor Petrov.");
  tagger.Tag(&tokens);
  EXPECT_EQ(tokens[1].pos, Pos::kProperNoun);
  EXPECT_EQ(tokens[3].pos, Pos::kProperNoun);
  EXPECT_EQ(tokens[4].pos, Pos::kProperNoun);
}

TEST(PosTaggerTest, NumbersAndSuffixRules) {
  PosTagger tagger;
  auto tokens = Tokenize("quickly 1976 awesomeness understanding");
  tagger.Tag(&tokens);
  EXPECT_EQ(tokens[0].pos, Pos::kAdverb);
  EXPECT_EQ(tokens[1].pos, Pos::kNumber);
  EXPECT_EQ(tokens[2].pos, Pos::kNoun);
  EXPECT_EQ(tokens[3].pos, Pos::kVerb);  // -ing
}

TEST(PosTaggerTest, AddWordOverrides) {
  PosTagger tagger;
  tagger.AddWord("zork", Pos::kVerb);
  EXPECT_EQ(tagger.TagWord("zork", false, false), Pos::kVerb);
}

// ---------------------------------------------------------------- Chunker

TEST(ChunkerTest, FindsSimpleNounPhrases) {
  PosTagger tagger;
  auto sentences = SplitSentences("The famous singer joined the new company.");
  tagger.TagSentences(&sentences);
  auto chunks = FindNounPhrases(sentences[0]);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(ChunkText(sentences[0], chunks[0]), "The famous singer");
  EXPECT_EQ(ChunkTextNoDet(sentences[0], chunks[0]), "famous singer");
  EXPECT_EQ(ChunkText(sentences[0], chunks[1]), "the new company");
}

TEST(ChunkerTest, ProperNounChains) {
  PosTagger tagger;
  auto sentences = SplitSentences("Later Viktor Petrov met Elena Novak.");
  tagger.TagSentences(&sentences);
  auto chunks = FindNounPhrases(sentences[0]);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_TRUE(chunks[0].proper);
  EXPECT_EQ(ChunkText(sentences[0], chunks[0]), "Viktor Petrov");
}

TEST(ChunkerTest, DeterminerWithoutNounIsNotAPhrase) {
  PosTagger tagger;
  auto sentences = SplitSentences("The quickly running");
  tagger.TagSentences(&sentences);
  auto chunks = FindNounPhrases(sentences[0]);
  EXPECT_TRUE(chunks.empty());
}

// ---------------------------------------------------------------- TF-IDF

TEST(TfIdfTest, StopwordListWorks) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("was"));
  EXPECT_FALSE(IsStopword("singer"));
}

TEST(TfIdfTest, CosineOfIdenticalVectorsIsOne) {
  TfIdfModel model;
  model.AddDocument({"singer", "album", "band"});
  model.AddDocument({"company", "founder"});
  auto v = model.Vectorize({"singer", "album"});
  EXPECT_NEAR(Cosine(v, v), 1.0, 1e-9);
}

TEST(TfIdfTest, DisjointVectorsAreOrthogonal) {
  TfIdfModel model;
  model.AddDocument({"singer", "album"});
  model.AddDocument({"company", "founder"});
  auto a = model.Vectorize({"singer"});
  auto b = model.Vectorize({"company"});
  EXPECT_EQ(Cosine(a, b), 0.0);
}

TEST(TfIdfTest, RareWordsWeighMore) {
  TfIdfModel model;
  for (int i = 0; i < 50; ++i) model.AddDocument({"common", "filler"});
  model.AddDocument({"common", "rare"});
  auto v = model.Vectorize({"common", "rare"});
  uint32_t common_id = model.LookupWordId("common");
  uint32_t rare_id = model.LookupWordId("rare");
  EXPECT_GT(v[rare_id], v[common_id]);
}

TEST(TfIdfTest, UnknownWordsIgnored) {
  TfIdfModel model;
  model.AddDocument({"known"});
  auto v = model.Vectorize({"unseen", "unseen2"});
  EXPECT_TRUE(v.empty());
}


// ---------------------------------------------------------------- Stemmer

TEST(StemmerTest, PluralsAndInflections) {
  EXPECT_EQ(Stem("singers"), Stem("singer"));
  EXPECT_EQ(Stem("cities"), "city");
  EXPECT_EQ(Stem("founded"), Stem("founding"));
  EXPECT_EQ(Stem("planned"), "plan");
  EXPECT_EQ(Stem("released"), "release");
  EXPECT_EQ(Stem("quickly"), "quick");
}

TEST(StemmerTest, ShortAndNonSuffixWordsUntouched) {
  EXPECT_EQ(Stem("is"), "is");
  EXPECT_EQ(Stem("bus"), "bus");
  EXPECT_EQ(Stem("glass"), "glass");
  EXPECT_EQ(Stem("red"), "red");  // 'ed' guard: no vowel-bearing stem
}

TEST(StemmerTest, Idempotent) {
  for (const char* w : {"singers", "founded", "cities", "releasing",
                        "quickly", "engines"}) {
    std::string once = Stem(w);
    EXPECT_EQ(Stem(once), once) << w;
  }
}

}  // namespace
}  // namespace nlp
}  // namespace kb
