#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "extraction/annotation.h"
#include "nlp/tokenizer.h"
#include "openie/reverb.h"

namespace kb {
namespace openie {
namespace {

extraction::AnnotatedSentence Annotate(const std::string& text) {
  nlp::PosTagger tagger;
  auto sentences = nlp::SplitSentences(text);
  tagger.TagSentences(&sentences);
  extraction::AnnotatedSentence as;
  as.sentence = sentences.at(0);
  return as;
}

TEST(NormalizeRelationTest, StripsAuxiliaries) {
  EXPECT_EQ(NormalizeRelationPhrase("was founded by"), "founded by");
  EXPECT_EQ(NormalizeRelationPhrase("is married to"), "married to");
  EXPECT_EQ(NormalizeRelationPhrase("founded"), "founded");
  // A bare copula survives (it IS the relation).
  EXPECT_EQ(NormalizeRelationPhrase("is"), "is");
}

TEST(OpenIEConfidenceTest, ProperArgumentsRaiseConfidence) {
  double proper = OpenIEConfidence(2, true, true, true, 10);
  double common = OpenIEConfidence(2, false, false, true, 10);
  EXPECT_GT(proper, common);
  double long_rel = OpenIEConfidence(9, true, true, true, 10);
  EXPECT_GT(proper, long_rel);
}

TEST(OpenIETest, ExtractsSimpleVerbTriple) {
  OpenIEExtractor extractor;
  auto triples =
      extractor.ExtractFromSentence(Annotate("Marcus founded Vance Systems."));
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].arg1, "Marcus");
  EXPECT_EQ(triples[0].relation, "founded");
  EXPECT_EQ(triples[0].arg2, "Vance Systems");
}

TEST(OpenIETest, ExtractsVerbPrepositionTriple) {
  OpenIEExtractor extractor;
  auto triples = extractor.ExtractFromSentence(
      Annotate("Elena works for Keller Labs."));
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].relation, "works for");
}

TEST(OpenIETest, ExtractsVWStarPPattern) {
  OpenIEExtractor extractor;
  auto triples = extractor.ExtractFromSentence(
      Annotate("Novak Industries has its headquarters in Northfield."));
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].relation, "has its headquarters in");
  EXPECT_EQ(triples[0].arg2, "Northfield");
}

TEST(OpenIETest, PassiveNormalization) {
  OpenIEExtractor extractor;
  auto triples = extractor.ExtractFromSentence(
      Annotate("Keller Labs was founded by Elena Keller."));
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].normalized_relation, "founded by");
}

TEST(OpenIETest, NoTripleWithoutVerb) {
  OpenIEExtractor extractor;
  auto triples = extractor.ExtractFromSentence(
      Annotate("The red apple on the old table."));
  EXPECT_TRUE(triples.empty());
}

class OpenIECorpusFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 51;
    wopts.num_persons = 80;
    corpus::CorpusOptions copts;
    copts.seed = 52;
    copts.news_docs = 100;
    copts.web_docs = 30;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    nlp::PosTagger tagger;
    sentences_ = new std::vector<extraction::AnnotatedSentence>(
        extraction::AnnotateDocuments(corpus_->world, corpus_->docs,
                                      tagger));
  }
  static void TearDownTestSuite() {
    delete sentences_;
    delete corpus_;
  }
  static corpus::Corpus* corpus_;
  static std::vector<extraction::AnnotatedSentence>* sentences_;
};

corpus::Corpus* OpenIECorpusFixture::corpus_ = nullptr;
std::vector<extraction::AnnotatedSentence>* OpenIECorpusFixture::sentences_ =
    nullptr;

TEST_F(OpenIECorpusFixture, YieldExceedsClosedInventory) {
  OpenIEExtractor extractor;
  auto triples = extractor.Extract(*sentences_);
  ASSERT_GT(triples.size(), 500u);
  // Open IE finds relation phrases beyond the closed inventory: count
  // distinct normalized relations.
  std::set<std::string> relations;
  for (const auto& t : triples) relations.insert(t.normalized_relation);
  EXPECT_GT(relations.size(), 15u);
}

TEST_F(OpenIECorpusFixture, ConfidenceThresholdRaisesAlignmentPrecision) {
  OpenIEExtractor extractor;
  auto triples = extractor.Extract(*sentences_);
  auto aligned_precision = [&](double min_confidence) {
    size_t aligned = 0, total = 0;
    for (const auto& t : triples) {
      if (t.confidence < min_confidence) continue;
      ++total;
      if (t.arg1_entity != UINT32_MAX && t.arg2_entity != UINT32_MAX) {
        ++aligned;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(aligned) / total;
  };
  // Higher confidence slice should be at least as entity-grounded.
  EXPECT_GE(aligned_precision(0.8) + 0.02, aligned_precision(0.0));
}

TEST_F(OpenIECorpusFixture, LexicalConstraintPrunesRareRelations) {
  OpenIEOptions strict;
  strict.min_relation_support = 5;
  OpenIEExtractor strict_extractor(strict);
  OpenIEExtractor loose_extractor;
  auto strict_triples = strict_extractor.Extract(*sentences_);
  auto loose_triples = loose_extractor.Extract(*sentences_);
  EXPECT_LT(strict_triples.size(), loose_triples.size());
  EXPECT_GT(strict_triples.size(), 0u);
}

}  // namespace
}  // namespace openie
}  // namespace kb
