#include <gtest/gtest.h>

#include <filesystem>

#include "core/harvester.h"
#include "core/persistence.h"
#include "storage/triple_codec.h"
#include "rdf/namespaces.h"

namespace kb {
namespace core {
namespace {

std::string TempDir(const std::string& name) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("kbforge_persist_" + name))
                         .string();
  std::filesystem::remove_all(path);
  return path;
}

TEST(PersistenceTest, SmallKbRoundTrip) {
  std::string dir = TempDir("small");
  KnowledgeBase kb;
  FactMeta meta;
  meta.confidence = 0.875;
  meta.support = 3;
  meta.extractor = rdf::kExtractorPattern;
  meta.valid_time.begin = Date{1976, 4, 1};
  meta.valid_time.end = Date{1985, 0, 0};
  kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", meta);
  kb.AssertType("Steve_Jobs", "entrepreneur");
  kb.AssertSubclass("entrepreneur", "person");
  kb.AssertLabel("Steve_Jobs", "Steve Jobs", "en");
  kb.AssertYearFact("Apple_Inc", "foundedYear", 1976, FactMeta());

  {
    auto storage = KbStorage::Open(dir);
    ASSERT_TRUE(storage.ok());
    ASSERT_TRUE((*storage)->Save(kb).ok());
  }
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto loaded = (*storage)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ((*loaded)->NumTriples(), kb.NumTriples());
  EXPECT_EQ((*loaded)->ExportNTriples(), kb.ExportNTriples());

  // Metadata survives, including the timespan.
  rdf::Triple t((*loaded)->EntityTerm("Steve_Jobs"),
                (*loaded)->PropertyTerm("founded"),
                (*loaded)->EntityTerm("Apple_Inc"));
  const FactMeta* restored = (*loaded)->MetaOf(t);
  ASSERT_NE(restored, nullptr);
  EXPECT_DOUBLE_EQ(restored->confidence, 0.875);
  EXPECT_EQ(restored->support, 3u);
  EXPECT_EQ(restored->extractor,
            static_cast<uint32_t>(rdf::kExtractorPattern));
  EXPECT_EQ(restored->valid_time.begin.ToString(), "1976-04-01");
  EXPECT_EQ(restored->valid_time.end.ToString(), "1985");

  // Derived indexes rebuilt: taxonomy subsumption works.
  taxonomy::ClassId sub = (*loaded)->taxonomy().Lookup("entrepreneur");
  taxonomy::ClassId super = (*loaded)->taxonomy().Lookup("person");
  ASSERT_NE(sub, taxonomy::kInvalidClassId);
  EXPECT_TRUE((*loaded)->taxonomy().IsSubclassOf(sub, super));
}

TEST(PersistenceTest, HarvestedKbSurvivesReopen) {
  std::string dir = TempDir("harvest");
  corpus::WorldOptions world_options;
  world_options.seed = 111;
  world_options.num_persons = 60;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 112;
  corpus_options.news_docs = 50;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  Harvester harvester;
  HarvestResult result = harvester.Harvest(corpus);

  {
    auto storage = KbStorage::Open(dir);
    ASSERT_TRUE(storage.ok());
    ASSERT_TRUE((*storage)->Save(result.kb).ok());
    ASSERT_TRUE((*storage)->Compact().ok());
  }
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto loaded = (*storage)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumTriples(), result.kb.NumTriples());
  EXPECT_EQ((*loaded)->NumEntities(), result.kb.NumEntities());

  // Queries run identically against the reopened KB.
  std::string sparql = "SELECT ?p ?c WHERE { ?p <" +
                       rdf::PropertyIri("bornIn") + "> ?c . }";
  auto before = result.kb.Query(sparql);
  auto after = (*loaded)->Query(sparql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->size(), after->size());
  EXPECT_GT(after->size(), 10u);
}

TEST(PersistenceTest, LoadFromEmptyStoreGivesEmptyKb) {
  std::string dir = TempDir("empty");
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto loaded = (*storage)->Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumTriples(), 0u);
}

TEST(PersistenceTest, CorruptMetadataDetected) {
  std::string dir = TempDir("corrupt");
  KnowledgeBase kb;
  FactMeta meta;
  meta.confidence = 0.5;
  kb.AssertFact("A", "rel", "B", meta);
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  ASSERT_TRUE((*storage)->Save(kb).ok());
  // Clobber the metadata of the SPO entry.
  rdf::Triple t(kb.EntityTerm("A"), kb.PropertyTerm("rel"),
                kb.EntityTerm("B"));
  std::string key =
      storage::EncodeTripleKey(storage::TripleOrder::kSpo, t);
  ASSERT_TRUE((*storage)->store()->Put(key, "xx").ok());
  auto loaded = (*storage)->Load();
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace core
}  // namespace kb
