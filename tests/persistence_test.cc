#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/harvester.h"
#include "core/persistence.h"
#include "storage/triple_codec.h"
#include "rdf/namespaces.h"

namespace kb {
namespace core {
namespace {

std::string TempDir(const std::string& name) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("kbforge_persist_" + name))
                         .string();
  std::filesystem::remove_all(path);
  return path;
}

TEST(PersistenceTest, SmallKbRoundTrip) {
  std::string dir = TempDir("small");
  KnowledgeBase kb;
  FactMeta meta;
  meta.confidence = 0.875;
  meta.support = 3;
  meta.extractor = rdf::kExtractorPattern;
  meta.valid_time.begin = Date{1976, 4, 1};
  meta.valid_time.end = Date{1985, 0, 0};
  kb.AssertFact("Steve_Jobs", "founded", "Apple_Inc", meta);
  kb.AssertType("Steve_Jobs", "entrepreneur");
  kb.AssertSubclass("entrepreneur", "person");
  kb.AssertLabel("Steve_Jobs", "Steve Jobs", "en");
  kb.AssertYearFact("Apple_Inc", "foundedYear", 1976, FactMeta());

  {
    auto storage = KbStorage::Open(dir);
    ASSERT_TRUE(storage.ok());
    ASSERT_TRUE((*storage)->Save(kb).ok());
  }
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto loaded = (*storage)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ((*loaded)->NumTriples(), kb.NumTriples());
  EXPECT_EQ((*loaded)->ExportNTriples(), kb.ExportNTriples());

  // Metadata survives, including the timespan.
  rdf::Triple t((*loaded)->EntityTerm("Steve_Jobs"),
                (*loaded)->PropertyTerm("founded"),
                (*loaded)->EntityTerm("Apple_Inc"));
  const FactMeta* restored = (*loaded)->MetaOf(t);
  ASSERT_NE(restored, nullptr);
  EXPECT_DOUBLE_EQ(restored->confidence, 0.875);
  EXPECT_EQ(restored->support, 3u);
  EXPECT_EQ(restored->extractor,
            static_cast<uint32_t>(rdf::kExtractorPattern));
  EXPECT_EQ(restored->valid_time.begin.ToString(), "1976-04-01");
  EXPECT_EQ(restored->valid_time.end.ToString(), "1985");

  // Derived indexes rebuilt: taxonomy subsumption works.
  taxonomy::ClassId sub = (*loaded)->taxonomy().Lookup("entrepreneur");
  taxonomy::ClassId super = (*loaded)->taxonomy().Lookup("person");
  ASSERT_NE(sub, taxonomy::kInvalidClassId);
  EXPECT_TRUE((*loaded)->taxonomy().IsSubclassOf(sub, super));
}

TEST(PersistenceTest, HarvestedKbSurvivesReopen) {
  std::string dir = TempDir("harvest");
  corpus::WorldOptions world_options;
  world_options.seed = 111;
  world_options.num_persons = 60;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 112;
  corpus_options.news_docs = 50;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  Harvester harvester;
  HarvestResult result = harvester.Harvest(corpus);

  {
    auto storage = KbStorage::Open(dir);
    ASSERT_TRUE(storage.ok());
    ASSERT_TRUE((*storage)->Save(result.kb).ok());
    ASSERT_TRUE((*storage)->Compact().ok());
  }
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto loaded = (*storage)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumTriples(), result.kb.NumTriples());
  EXPECT_EQ((*loaded)->NumEntities(), result.kb.NumEntities());

  // Queries run identically against the reopened KB.
  std::string sparql = "SELECT ?p ?c WHERE { ?p <" +
                       rdf::PropertyIri("bornIn") + "> ?c . }";
  auto before = result.kb.Query(sparql);
  auto after = (*loaded)->Query(sparql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->size(), after->size());
  EXPECT_GT(after->size(), 10u);
}

TEST(PersistenceTest, LoadFromEmptyStoreGivesEmptyKb) {
  std::string dir = TempDir("empty");
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  auto loaded = (*storage)->Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumTriples(), 0u);
}

TEST(PersistenceTest, QueriesRunDirectlyOffTheLsmStore) {
  std::string dir = TempDir("stored_source");
  KnowledgeBase kb;
  FactMeta meta;
  kb.AssertFact("Alice", "worksFor", "Acme", meta);
  kb.AssertFact("Bob", "worksFor", "Acme", meta);
  kb.AssertFact("Carol", "worksFor", "Globex", meta);
  kb.AssertFact("Acme", "locatedIn", "Springfield", meta);
  kb.AssertType("Alice", "person");
  kb.AssertType("Bob", "person");
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  ASSERT_TRUE((*storage)->Save(kb).ok());

  // The on-disk dictionary reproduces the in-memory term ids (Save
  // wrote this same KB), so one parsed query runs against both.
  auto dict = (*storage)->LoadDictionary();
  ASSERT_TRUE(dict.ok()) << dict.status();
  ASSERT_EQ(dict->size(), kb.store().dict().size());
  auto source = (*storage)->NewTripleSource(/*batch_size=*/2);

  std::string sparql = "SELECT ?who WHERE { ?who <" +
                       rdf::PropertyIri("worksFor") + "> <" +
                       rdf::EntityIri("Acme") + "> . }";
  auto parsed = query::ParseSparql(sparql, *dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  query::QueryEngine disk_engine(source.get());
  query::QueryEngine mem_engine(&kb.store());
  auto from_disk = disk_engine.Execute(*parsed);
  auto from_mem = mem_engine.Execute(*parsed);
  ASSERT_EQ(from_disk.size(), 2u);
  std::sort(from_disk.begin(), from_disk.end());
  std::sort(from_mem.begin(), from_mem.end());
  EXPECT_EQ(from_disk, from_mem);

  // Streaming with LIMIT terminates early against the LSM store too.
  parsed->limit = 1;
  query::QueryStats stats;
  auto limited = disk_engine.Execute(*parsed, {}, &stats);
  EXPECT_EQ(limited.size(), 1u);
  EXPECT_LT(stats.intermediate_rows, kb.NumTriples());

  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, StoredSourceAgreesWithLoadedKbOnJoins) {
  std::string dir = TempDir("stored_join");
  KnowledgeBase kb;
  FactMeta meta;
  for (int i = 0; i < 12; ++i) {
    std::string person = "P" + std::to_string(i);
    std::string company = "C" + std::to_string(i % 3);
    kb.AssertFact(person, "worksFor", company, meta);
    kb.AssertFact(company, "locatedIn", i % 3 == 0 ? "Springfield" : "Ogden",
                  meta);
  }
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  ASSERT_TRUE((*storage)->Save(kb).ok());

  auto dict = (*storage)->LoadDictionary();
  ASSERT_TRUE(dict.ok());
  auto source = (*storage)->NewTripleSource();
  std::string sparql = "SELECT ?p WHERE { ?p <" +
                       rdf::PropertyIri("worksFor") + "> ?c . ?c <" +
                       rdf::PropertyIri("locatedIn") + "> <" +
                       rdf::EntityIri("Springfield") + "> . }";
  auto parsed = query::ParseSparql(sparql, *dict);
  ASSERT_TRUE(parsed.ok());
  query::QueryEngine disk_engine(source.get());
  query::QueryEngine mem_engine(&kb.store());
  auto from_disk = disk_engine.Execute(*parsed);
  auto from_mem = mem_engine.Execute(*parsed);
  EXPECT_EQ(from_disk.size(), 4u);  // P0, P3, P6, P9
  std::sort(from_disk.begin(), from_disk.end());
  std::sort(from_mem.begin(), from_mem.end());
  EXPECT_EQ(from_disk, from_mem);

  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, CorruptMetadataDetected) {
  std::string dir = TempDir("corrupt");
  KnowledgeBase kb;
  FactMeta meta;
  meta.confidence = 0.5;
  kb.AssertFact("A", "rel", "B", meta);
  auto storage = KbStorage::Open(dir);
  ASSERT_TRUE(storage.ok());
  ASSERT_TRUE((*storage)->Save(kb).ok());
  // Clobber the metadata of the SPO entry.
  rdf::Triple t(kb.EntityTerm("A"), kb.PropertyTerm("rel"),
                kb.EntityTerm("B"));
  std::string key =
      storage::EncodeTripleKey(storage::TripleOrder::kSpo, t);
  ASSERT_TRUE((*storage)->store()->Put(key, "xx").ok());
  auto loaded = (*storage)->Load();
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace core
}  // namespace kb
