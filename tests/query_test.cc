#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "query/engine.h"
#include "rdf/namespaces.h"
#include "rdf/term.h"

namespace kb {
namespace query {
namespace {

using rdf::Term;
using rdf::TermId;

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small family/work graph.
    auto iri = [&](const std::string& s) {
      return store_.dict().Intern(Term::Iri(s));
    };
    type_ = iri("type");
    person_ = iri("Person");
    company_ = iri("Company");
    works_for_ = iri("worksFor");
    located_in_ = iri("locatedIn");
    alice_ = iri("Alice");
    bob_ = iri("Bob");
    carol_ = iri("Carol");
    acme_ = iri("Acme");
    globex_ = iri("Globex");
    springfield_ = iri("Springfield");

    store_.Add({alice_, type_, person_});
    store_.Add({bob_, type_, person_});
    store_.Add({carol_, type_, person_});
    store_.Add({acme_, type_, company_});
    store_.Add({globex_, type_, company_});
    store_.Add({alice_, works_for_, acme_});
    store_.Add({bob_, works_for_, acme_});
    store_.Add({carol_, works_for_, globex_});
    store_.Add({acme_, located_in_, springfield_});
  }

  rdf::TripleStore store_;
  TermId type_, person_, company_, works_for_, located_in_;
  TermId alice_, bob_, carol_, acme_, globex_, springfield_;
};

TEST_F(QueryFixture, SinglePatternAllBindings) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryFixture, TwoPatternJoin) {
  // Who works for a company located in Springfield?
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(located_in_),
                     QueryTerm::Bound(springfield_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  ASSERT_EQ(rows.size(), 2u);
  std::set<TermId> who;
  for (const Binding& row : rows) who.insert(row.at("who"));
  EXPECT_TRUE(who.count(alice_));
  EXPECT_TRUE(who.count(bob_));
}

TEST_F(QueryFixture, ThreeWayJoinWithTypeConstraint) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(company_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryFixture, RepeatedVariableMustAgree) {
  // ?x worksFor ?x never holds here.
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("x")});
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(q).empty());
}

TEST_F(QueryFixture, ReorderingDoesNotChangeResults) {
  SelectQuery q;
  // Deliberately bad written order: unselective first.
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Var("r"),
                     QueryTerm::Var("o")});
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Bound(acme_)});
  QueryEngine engine(&store_);
  ExecutionOptions optimized;
  ExecutionOptions naive;
  naive.reorder_patterns = false;
  QueryStats stats_opt, stats_naive;
  auto rows_opt = engine.Execute(q, optimized, &stats_opt);
  auto rows_naive = engine.Execute(q, naive, &stats_naive);
  EXPECT_EQ(rows_opt.size(), rows_naive.size());
  EXPECT_LE(stats_opt.intermediate_rows, stats_naive.intermediate_rows);
}

TEST_F(QueryFixture, ProjectionLimitsColumns) {
  SelectQuery q;
  q.projection = {"c"};
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  for (const Binding& row : rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_TRUE(row.count("c"));
  }
}

TEST_F(QueryFixture, UnknownConstantYieldsEmpty) {
  SelectQuery q;
  QueryTerm ghost = QueryTerm::Bound(rdf::kInvalidTermId);
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(works_for_),
                     ghost});
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(q).empty());
}

// ---------------------------------------------------------------- Parser

TEST_F(QueryFixture, ParseAndRunSparql) {
  auto parsed = ParseSparql(
      "SELECT ?who WHERE { ?who <worksFor> ?c . ?c <locatedIn> "
      "<Springfield> . }",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(QueryFixture, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseSparql("FETCH ?x WHERE { }", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x ?y ?z }", store_.dict()).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x ?y }", store_.dict()).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x ?y ?z . ", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }", store_.dict()).ok());
}

TEST_F(QueryFixture, ParseHandlesLiterals) {
  store_.AddTerms(Term::Iri("Alice"), Term::Iri("name"),
                  Term::Literal("Alice Smith"));
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <name> \"Alice Smith\" . }", store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), 1u);
}

TEST_F(QueryFixture, ParseUnknownConstantRunsEmpty) {
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <worksFor> <Initech> . }", store_.dict());
  ASSERT_TRUE(parsed.ok());
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(*parsed).empty());
}


TEST_F(QueryFixture, DistinctDropsDuplicateRows) {
  SelectQuery q;
  q.projection = {"c"};
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  auto plain = engine.Execute(q);
  EXPECT_EQ(plain.size(), 3u);  // acme twice, globex once
  q.distinct = true;
  auto distinct = engine.Execute(q);
  EXPECT_EQ(distinct.size(), 2u);
}

TEST_F(QueryFixture, LimitStopsEarly) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  q.limit = 2;
  QueryEngine engine(&store_);
  QueryStats stats;
  auto rows = engine.Execute(q, {}, &stats);
  EXPECT_EQ(rows.size(), 2u);
  // Early termination: far fewer intermediate rows than the store.
  EXPECT_LT(stats.intermediate_rows, store_.size());
}

TEST_F(QueryFixture, ParseDistinctAndLimit) {
  auto parsed = ParseSparql(
      "SELECT DISTINCT ?c WHERE { ?p <worksFor> ?c . } LIMIT 1",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->distinct);
  EXPECT_EQ(parsed->limit, 1u);
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), 1u);
  EXPECT_FALSE(ParseSparql(
      "SELECT ?x WHERE { ?x ?y ?z . } LIMIT -3", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql(
      "SELECT ?x WHERE { ?x ?y ?z . } GARBAGE", store_.dict()).ok());
}

// ------------------------------------------------------ Streaming cursor

TEST_F(QueryFixture, CursorStreamsRowsOnDemand) {
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Bound(acme_)});
  QueryEngine engine(&store_);
  Cursor cursor = engine.Open(q);
  ASSERT_EQ(cursor.columns().size(), 1u);
  EXPECT_EQ(cursor.columns()[0], "who");
  std::set<TermId> who;
  Row row;
  while (cursor.Next(&row)) {
    ASSERT_EQ(row.size(), 1u);
    who.insert(row[0]);
    Binding b = cursor.ToBinding(row);
    EXPECT_EQ(b.at("who"), row[0]);
  }
  EXPECT_EQ(who, (std::set<TermId>{alice_, bob_}));
  EXPECT_EQ(cursor.stats().rows_streamed, 2u);
}

TEST_F(QueryFixture, AbandonedCursorDoesNoExtraWork) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  QueryEngine engine(&store_);
  Cursor cursor = engine.Open(q);
  Row row;
  ASSERT_TRUE(cursor.Next(&row));
  // One row pulled: the pipeline visited one triple, not the store.
  EXPECT_EQ(cursor.stats().rows_streamed, 1u);
  EXPECT_LT(cursor.stats().intermediate_rows, store_.size());
}

TEST_F(QueryFixture, SnapshotIsolatesCursorFromAppends) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  QueryEngine engine(&store_);
  Cursor cursor = engine.Open(q);
  // Appends after Open are invisible to the running query.
  store_.Add({springfield_, type_, person_});
  size_t n = 0;
  for (Row row; cursor.Next(&row);) ++n;
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(engine.Execute(q).size(), 4u);
}

TEST_F(QueryFixture, LimitPushdownAblation) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  q.limit = 2;
  QueryEngine engine(&store_);
  ExecutionOptions no_pushdown;
  no_pushdown.pushdown_limit = false;
  QueryStats with_stats, without_stats;
  auto with = engine.Execute(q, {}, &with_stats);
  auto without = engine.Execute(q, no_pushdown, &without_stats);
  EXPECT_EQ(with.size(), 2u);
  EXPECT_EQ(without.size(), 2u);
  // Pushdown stops after 2 triples; the ablation drains all 9.
  EXPECT_LT(with_stats.intermediate_rows, without_stats.intermediate_rows);
  EXPECT_EQ(without_stats.intermediate_rows, store_.size());
}

TEST_F(QueryFixture, MaterializeTermsAblationChangesNothingButCounters) {
  // The E17 term-object ablation drags every visited triple's three
  // Terms off the heap; results and row order must be identical to the
  // id-native path, only the materialization counter moves.
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(company_)});
  QueryEngine engine(&store_);
  ExecutionOptions id_native;
  ExecutionOptions term_objects;
  term_objects.materialize_terms = &store_.dict();
  QueryStats id_stats, term_stats;
  auto id_rows = engine.Execute(q, id_native, &id_stats);
  auto term_rows = engine.Execute(q, term_objects, &term_stats);
  EXPECT_EQ(id_rows, term_rows);
  EXPECT_EQ(id_rows.size(), 3u);
  EXPECT_EQ(id_stats.terms_materialized, 0u);
  // Three terms per visited triple, across scan and join levels.
  EXPECT_EQ(term_stats.terms_materialized,
            3 * term_stats.intermediate_rows);
  EXPECT_GT(term_stats.terms_materialized, 0u);
}

// ----------------------------------------------------------- Plan cache

TEST_F(QueryFixture, PlanCacheHitsOnRepeatedShape) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  QueryStats first, second;
  engine.Execute(q, {}, &first);
  engine.Execute(q, {}, &second);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);

  // LIMIT is not part of the plan, so variants share the entry.
  q.limit = 1;
  QueryStats limited;
  EXPECT_EQ(engine.Execute(q, {}, &limited).size(), 1u);
  EXPECT_TRUE(limited.plan_cache_hit);

  // A different shape misses.
  q.limit = 0;
  q.distinct = true;
  QueryStats distinct_stats;
  engine.Execute(q, {}, &distinct_stats);
  EXPECT_FALSE(distinct_stats.plan_cache_hit);

  ExecutionOptions uncached;
  uncached.use_plan_cache = false;
  QueryStats uncached_stats;
  engine.Execute(q, uncached, &uncached_stats);
  EXPECT_FALSE(uncached_stats.plan_cache_hit);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  auto plan = std::make_shared<CompiledPlan>();
  cache.Insert("a", plan);
  cache.Insert("b", plan);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refreshes "a"
  cache.Insert("c", plan);                // evicts "b"
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

// -------------------------------------------- Parser edge cases (more)

TEST_F(QueryFixture, ParseSelectStar) {
  auto parsed = ParseSparql("SELECT * WHERE { ?x <worksFor> ?c . }",
                            store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->projection.empty());
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 2u);  // both ?x and ?c
}

TEST_F(QueryFixture, ParseMoreMalformedQueries) {
  EXPECT_FALSE(ParseSparql("", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ? <p> <o> . }",
                           store_.dict()).ok());  // bare '?'
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <p> . }",
                           store_.dict()).ok());  // 2-term pattern
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x ?y ?z . } LIMIT",
                           store_.dict()).ok());  // LIMIT without count
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x ?y ?z . } LIMIT two",
                           store_.dict()).ok());
}

TEST_F(QueryFixture, ParseLimitZeroMeansNoLimit) {
  auto parsed = ParseSparql("SELECT ?x WHERE { ?x ?y ?z . } LIMIT 0",
                            store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), store_.size());
}

TEST_F(QueryFixture, ParseLiteralObjectWithSpaces) {
  store_.AddTerms(Term::Iri("Acme"), Term::Iri("motto"),
                  Term::Literal("We make everything"));
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <motto> \"We make everything\" . }",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("x"), acme_);
}

// ------------------------------------------------- Equivalence property

// Canonical form for multiset comparison across executors.
std::vector<std::vector<std::pair<std::string, TermId>>> Canonical(
    std::vector<Binding> rows) {
  std::vector<std::vector<std::pair<std::string, TermId>>> out;
  out.reserve(rows.size());
  for (const Binding& row : rows) {
    out.emplace_back(row.begin(), row.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Reference evaluator: nested loops over MatchFullScan (no indexes, no
// reordering, no streaming) — deliberately the dumbest correct join.
std::vector<Binding> BruteForce(const rdf::TripleStore& store,
                                const SelectQuery& q) {
  std::vector<Binding> out;
  std::set<Binding> seen;
  auto all = store.MatchFullScan(rdf::TriplePattern());
  Binding binding;
  std::function<void(size_t)> rec = [&](size_t depth) {
    if (depth == q.where.size()) {
      Binding row;
      if (q.projection.empty()) {
        row = binding;
      } else {
        for (const std::string& var : q.projection) {
          auto it = binding.find(var);
          if (it != binding.end()) row[var] = it->second;
        }
      }
      if (q.distinct && !seen.insert(row).second) return;
      out.push_back(std::move(row));
      return;
    }
    const QueryPattern& qp = q.where[depth];
    for (const rdf::Triple& t : all) {
      Binding saved = binding;
      auto bind = [&](const QueryTerm& term, TermId value) {
        if (!term.is_var) {
          return term.id != rdf::kInvalidTermId && term.id == value;
        }
        auto it = binding.find(term.var);
        if (it != binding.end()) return it->second == value;
        binding[term.var] = value;
        return true;
      };
      if (bind(qp.s, t.s) && bind(qp.p, t.p) && bind(qp.o, t.o)) {
        rec(depth + 1);
      }
      binding = std::move(saved);
    }
  };
  rec(0);
  return out;
}

TEST(QueryPropertyTest, ExecutorsAgreeOnRandomStoresAndQueries) {
  for (uint32_t seed : {1u, 7u, 42u}) {
    std::mt19937 rng(seed);
    rdf::TripleStore store;
    std::vector<TermId> entities, predicates;
    for (int i = 0; i < 10; ++i) {
      entities.push_back(store.dict().Intern(
          rdf::Term::Iri("e" + std::to_string(i))));
    }
    for (int i = 0; i < 4; ++i) {
      predicates.push_back(store.dict().Intern(
          rdf::Term::Iri("p" + std::to_string(i))));
    }
    auto pick = [&rng](const std::vector<TermId>& pool) {
      return pool[rng() % pool.size()];
    };
    for (int i = 0; i < 60; ++i) {
      store.Add({pick(entities), pick(predicates), pick(entities)});
    }

    QueryEngine engine(&store);
    const char* vars[] = {"x", "y", "z"};
    for (int trial = 0; trial < 40; ++trial) {
      SelectQuery q;
      q.distinct = (rng() % 4) == 0;
      size_t num_patterns = 1 + rng() % 3;
      for (size_t i = 0; i < num_patterns; ++i) {
        auto term = [&](bool predicate_pos) {
          if (rng() % 2) return QueryTerm::Var(vars[rng() % 3]);
          return QueryTerm::Bound(
              predicate_pos ? pick(predicates) : pick(entities));
        };
        q.where.push_back({term(false), term(true), term(false)});
      }
      auto expected = Canonical(BruteForce(store, q));

      ExecutionOptions streaming;  // defaults
      ExecutionOptions materialized;
      materialized.streaming = false;
      ExecutionOptions no_indexes;
      no_indexes.use_indexes = false;
      ExecutionOptions written_order;
      written_order.reorder_patterns = false;
      EXPECT_EQ(Canonical(engine.Execute(q, streaming)), expected)
          << "seed=" << seed << " trial=" << trial;
      EXPECT_EQ(Canonical(engine.Execute(q, materialized)), expected)
          << "seed=" << seed << " trial=" << trial;
      EXPECT_EQ(Canonical(engine.Execute(q, no_indexes)), expected)
          << "seed=" << seed << " trial=" << trial;
      EXPECT_EQ(Canonical(engine.Execute(q, written_order)), expected)
          << "seed=" << seed << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace query
}  // namespace kb
