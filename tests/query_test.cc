#include <gtest/gtest.h>

#include "query/engine.h"
#include "rdf/namespaces.h"
#include "rdf/term.h"

namespace kb {
namespace query {
namespace {

using rdf::Term;
using rdf::TermId;

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small family/work graph.
    auto iri = [&](const std::string& s) {
      return store_.dict().Intern(Term::Iri(s));
    };
    type_ = iri("type");
    person_ = iri("Person");
    company_ = iri("Company");
    works_for_ = iri("worksFor");
    located_in_ = iri("locatedIn");
    alice_ = iri("Alice");
    bob_ = iri("Bob");
    carol_ = iri("Carol");
    acme_ = iri("Acme");
    globex_ = iri("Globex");
    springfield_ = iri("Springfield");

    store_.Add({alice_, type_, person_});
    store_.Add({bob_, type_, person_});
    store_.Add({carol_, type_, person_});
    store_.Add({acme_, type_, company_});
    store_.Add({globex_, type_, company_});
    store_.Add({alice_, works_for_, acme_});
    store_.Add({bob_, works_for_, acme_});
    store_.Add({carol_, works_for_, globex_});
    store_.Add({acme_, located_in_, springfield_});
  }

  rdf::TripleStore store_;
  TermId type_, person_, company_, works_for_, located_in_;
  TermId alice_, bob_, carol_, acme_, globex_, springfield_;
};

TEST_F(QueryFixture, SinglePatternAllBindings) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryFixture, TwoPatternJoin) {
  // Who works for a company located in Springfield?
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(located_in_),
                     QueryTerm::Bound(springfield_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  ASSERT_EQ(rows.size(), 2u);
  std::set<TermId> who;
  for (const Binding& row : rows) who.insert(row.at("who"));
  EXPECT_TRUE(who.count(alice_));
  EXPECT_TRUE(who.count(bob_));
}

TEST_F(QueryFixture, ThreeWayJoinWithTypeConstraint) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(company_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryFixture, RepeatedVariableMustAgree) {
  // ?x worksFor ?x never holds here.
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("x")});
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(q).empty());
}

TEST_F(QueryFixture, ReorderingDoesNotChangeResults) {
  SelectQuery q;
  // Deliberately bad written order: unselective first.
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Var("r"),
                     QueryTerm::Var("o")});
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Bound(acme_)});
  QueryEngine engine(&store_);
  ExecutionOptions optimized;
  ExecutionOptions naive;
  naive.reorder_patterns = false;
  QueryStats stats_opt, stats_naive;
  auto rows_opt = engine.Execute(q, optimized, &stats_opt);
  auto rows_naive = engine.Execute(q, naive, &stats_naive);
  EXPECT_EQ(rows_opt.size(), rows_naive.size());
  EXPECT_LE(stats_opt.intermediate_rows, stats_naive.intermediate_rows);
}

TEST_F(QueryFixture, ProjectionLimitsColumns) {
  SelectQuery q;
  q.projection = {"c"};
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  for (const Binding& row : rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_TRUE(row.count("c"));
  }
}

TEST_F(QueryFixture, UnknownConstantYieldsEmpty) {
  SelectQuery q;
  QueryTerm ghost = QueryTerm::Bound(rdf::kInvalidTermId);
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(works_for_),
                     ghost});
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(q).empty());
}

// ---------------------------------------------------------------- Parser

TEST_F(QueryFixture, ParseAndRunSparql) {
  auto parsed = ParseSparql(
      "SELECT ?who WHERE { ?who <worksFor> ?c . ?c <locatedIn> "
      "<Springfield> . }",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(QueryFixture, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseSparql("FETCH ?x WHERE { }", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x ?y ?z }", store_.dict()).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x ?y }", store_.dict()).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x ?y ?z . ", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }", store_.dict()).ok());
}

TEST_F(QueryFixture, ParseHandlesLiterals) {
  store_.AddTerms(Term::Iri("Alice"), Term::Iri("name"),
                  Term::Literal("Alice Smith"));
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <name> \"Alice Smith\" . }", store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), 1u);
}

TEST_F(QueryFixture, ParseUnknownConstantRunsEmpty) {
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <worksFor> <Initech> . }", store_.dict());
  ASSERT_TRUE(parsed.ok());
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(*parsed).empty());
}


TEST_F(QueryFixture, DistinctDropsDuplicateRows) {
  SelectQuery q;
  q.projection = {"c"};
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  auto plain = engine.Execute(q);
  EXPECT_EQ(plain.size(), 3u);  // acme twice, globex once
  q.distinct = true;
  auto distinct = engine.Execute(q);
  EXPECT_EQ(distinct.size(), 2u);
}

TEST_F(QueryFixture, LimitStopsEarly) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  q.limit = 2;
  QueryEngine engine(&store_);
  QueryStats stats;
  auto rows = engine.Execute(q, {}, &stats);
  EXPECT_EQ(rows.size(), 2u);
  // Early termination: far fewer intermediate rows than the store.
  EXPECT_LT(stats.intermediate_rows, store_.size());
}

TEST_F(QueryFixture, ParseDistinctAndLimit) {
  auto parsed = ParseSparql(
      "SELECT DISTINCT ?c WHERE { ?p <worksFor> ?c . } LIMIT 1",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->distinct);
  EXPECT_EQ(parsed->limit, 1u);
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), 1u);
  EXPECT_FALSE(ParseSparql(
      "SELECT ?x WHERE { ?x ?y ?z . } LIMIT -3", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql(
      "SELECT ?x WHERE { ?x ?y ?z . } GARBAGE", store_.dict()).ok());
}

}  // namespace
}  // namespace query
}  // namespace kb
