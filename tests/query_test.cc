#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>

#include "query/engine.h"
#include "rdf/frame_store.h"
#include "rdf/namespaces.h"
#include "rdf/term.h"

namespace kb {
namespace query {
namespace {

using rdf::Term;
using rdf::TermId;

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small family/work graph.
    auto iri = [&](const std::string& s) {
      return store_.dict().Intern(Term::Iri(s));
    };
    type_ = iri("type");
    person_ = iri("Person");
    company_ = iri("Company");
    works_for_ = iri("worksFor");
    located_in_ = iri("locatedIn");
    alice_ = iri("Alice");
    bob_ = iri("Bob");
    carol_ = iri("Carol");
    acme_ = iri("Acme");
    globex_ = iri("Globex");
    springfield_ = iri("Springfield");

    store_.Add({alice_, type_, person_});
    store_.Add({bob_, type_, person_});
    store_.Add({carol_, type_, person_});
    store_.Add({acme_, type_, company_});
    store_.Add({globex_, type_, company_});
    store_.Add({alice_, works_for_, acme_});
    store_.Add({bob_, works_for_, acme_});
    store_.Add({carol_, works_for_, globex_});
    store_.Add({acme_, located_in_, springfield_});
  }

  rdf::TripleStore store_;
  TermId type_, person_, company_, works_for_, located_in_;
  TermId alice_, bob_, carol_, acme_, globex_, springfield_;
};

TEST_F(QueryFixture, SinglePatternAllBindings) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryFixture, TwoPatternJoin) {
  // Who works for a company located in Springfield?
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(located_in_),
                     QueryTerm::Bound(springfield_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  ASSERT_EQ(rows.size(), 2u);
  std::set<TermId> who;
  for (const Binding& row : rows) who.insert(row.at("who"));
  EXPECT_TRUE(who.count(alice_));
  EXPECT_TRUE(who.count(bob_));
}

TEST_F(QueryFixture, ThreeWayJoinWithTypeConstraint) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(company_)});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(QueryFixture, RepeatedVariableMustAgree) {
  // ?x worksFor ?x never holds here.
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("x")});
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(q).empty());
}

TEST_F(QueryFixture, ReorderingDoesNotChangeResults) {
  SelectQuery q;
  // Deliberately bad written order: unselective first.
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Var("r"),
                     QueryTerm::Var("o")});
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Bound(acme_)});
  QueryEngine engine(&store_);
  ExecutionOptions optimized;
  ExecutionOptions naive;
  naive.reorder_patterns = false;
  QueryStats stats_opt, stats_naive;
  auto rows_opt = engine.Execute(q, optimized, &stats_opt);
  auto rows_naive = engine.Execute(q, naive, &stats_naive);
  EXPECT_EQ(rows_opt.size(), rows_naive.size());
  EXPECT_LE(stats_opt.intermediate_rows, stats_naive.intermediate_rows);
}

TEST_F(QueryFixture, ProjectionLimitsColumns) {
  SelectQuery q;
  q.projection = {"c"};
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  auto rows = engine.Execute(q);
  for (const Binding& row : rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_TRUE(row.count("c"));
  }
}

TEST_F(QueryFixture, UnknownConstantYieldsEmpty) {
  SelectQuery q;
  QueryTerm ghost = QueryTerm::Bound(rdf::kInvalidTermId);
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(works_for_),
                     ghost});
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(q).empty());
}

// ---------------------------------------------------------------- Parser

TEST_F(QueryFixture, ParseAndRunSparql) {
  auto parsed = ParseSparql(
      "SELECT ?who WHERE { ?who <worksFor> ?c . ?c <locatedIn> "
      "<Springfield> . }",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(QueryFixture, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseSparql("FETCH ?x WHERE { }", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x ?y ?z }", store_.dict()).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x ?y }", store_.dict()).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x ?y ?z . ", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }", store_.dict()).ok());
}

TEST_F(QueryFixture, ParseHandlesLiterals) {
  store_.AddTerms(Term::Iri("Alice"), Term::Iri("name"),
                  Term::Literal("Alice Smith"));
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <name> \"Alice Smith\" . }", store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), 1u);
}

TEST_F(QueryFixture, ParseUnknownConstantRunsEmpty) {
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <worksFor> <Initech> . }", store_.dict());
  ASSERT_TRUE(parsed.ok());
  QueryEngine engine(&store_);
  EXPECT_TRUE(engine.Execute(*parsed).empty());
}


TEST_F(QueryFixture, DistinctDropsDuplicateRows) {
  SelectQuery q;
  q.projection = {"c"};
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  auto plain = engine.Execute(q);
  EXPECT_EQ(plain.size(), 3u);  // acme twice, globex once
  q.distinct = true;
  auto distinct = engine.Execute(q);
  EXPECT_EQ(distinct.size(), 2u);
}

TEST_F(QueryFixture, LimitStopsEarly) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  q.limit = 2;
  QueryEngine engine(&store_);
  QueryStats stats;
  auto rows = engine.Execute(q, {}, &stats);
  EXPECT_EQ(rows.size(), 2u);
  // Early termination: far fewer intermediate rows than the store.
  EXPECT_LT(stats.intermediate_rows, store_.size());
}

TEST_F(QueryFixture, ParseDistinctAndLimit) {
  auto parsed = ParseSparql(
      "SELECT DISTINCT ?c WHERE { ?p <worksFor> ?c . } LIMIT 1",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->distinct);
  EXPECT_EQ(parsed->limit, 1u);
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), 1u);
  EXPECT_FALSE(ParseSparql(
      "SELECT ?x WHERE { ?x ?y ?z . } LIMIT -3", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql(
      "SELECT ?x WHERE { ?x ?y ?z . } GARBAGE", store_.dict()).ok());
}

// ------------------------------------------------------ Streaming cursor

TEST_F(QueryFixture, CursorStreamsRowsOnDemand) {
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Bound(acme_)});
  QueryEngine engine(&store_);
  Cursor cursor = engine.Open(q);
  ASSERT_EQ(cursor.columns().size(), 1u);
  EXPECT_EQ(cursor.columns()[0], "who");
  std::set<TermId> who;
  Row row;
  while (cursor.Next(&row)) {
    ASSERT_EQ(row.size(), 1u);
    who.insert(row[0]);
    Binding b = cursor.ToBinding(row);
    EXPECT_EQ(b.at("who"), row[0]);
  }
  EXPECT_EQ(who, (std::set<TermId>{alice_, bob_}));
  EXPECT_EQ(cursor.stats().rows_streamed, 2u);
}

TEST_F(QueryFixture, AbandonedCursorDoesNoExtraWork) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  QueryEngine engine(&store_);
  Cursor cursor = engine.Open(q);
  Row row;
  ASSERT_TRUE(cursor.Next(&row));
  // One row pulled: the pipeline visited one triple, not the store.
  EXPECT_EQ(cursor.stats().rows_streamed, 1u);
  EXPECT_LT(cursor.stats().intermediate_rows, store_.size());
}

TEST_F(QueryFixture, SnapshotIsolatesCursorFromAppends) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(person_)});
  QueryEngine engine(&store_);
  Cursor cursor = engine.Open(q);
  // Appends after Open are invisible to the running query.
  store_.Add({springfield_, type_, person_});
  size_t n = 0;
  for (Row row; cursor.Next(&row);) ++n;
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(engine.Execute(q).size(), 4u);
}

TEST_F(QueryFixture, LimitPushdownAblation) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("x"), QueryTerm::Var("y"),
                     QueryTerm::Var("z")});
  q.limit = 2;
  QueryEngine engine(&store_);
  ExecutionOptions no_pushdown;
  no_pushdown.pushdown_limit = false;
  QueryStats with_stats, without_stats;
  auto with = engine.Execute(q, {}, &with_stats);
  auto without = engine.Execute(q, no_pushdown, &without_stats);
  EXPECT_EQ(with.size(), 2u);
  EXPECT_EQ(without.size(), 2u);
  // Pushdown stops after 2 triples; the ablation drains all 9.
  EXPECT_LT(with_stats.intermediate_rows, without_stats.intermediate_rows);
  EXPECT_EQ(without_stats.intermediate_rows, store_.size());
}

TEST_F(QueryFixture, MaterializeTermsAblationChangesNothingButCounters) {
  // The E17 term-object ablation drags every visited triple's three
  // Terms off the heap; results and row order must be identical to the
  // id-native path, only the materialization counter moves.
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(type_),
                     QueryTerm::Bound(company_)});
  QueryEngine engine(&store_);
  ExecutionOptions id_native;
  ExecutionOptions term_objects;
  term_objects.materialize_terms = &store_.dict();
  QueryStats id_stats, term_stats;
  auto id_rows = engine.Execute(q, id_native, &id_stats);
  auto term_rows = engine.Execute(q, term_objects, &term_stats);
  EXPECT_EQ(id_rows, term_rows);
  EXPECT_EQ(id_rows.size(), 3u);
  EXPECT_EQ(id_stats.terms_materialized, 0u);
  // Three terms per visited triple, across scan and join levels.
  EXPECT_EQ(term_stats.terms_materialized,
            3 * term_stats.intermediate_rows);
  EXPECT_GT(term_stats.terms_materialized, 0u);
}

// ----------------------------------------------------------- Plan cache

TEST_F(QueryFixture, PlanCacheHitsOnRepeatedShape) {
  SelectQuery q;
  q.where.push_back({QueryTerm::Var("p"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  QueryEngine engine(&store_);
  QueryStats first, second;
  engine.Execute(q, {}, &first);
  engine.Execute(q, {}, &second);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);

  // LIMIT is not part of the plan, so variants share the entry.
  q.limit = 1;
  QueryStats limited;
  EXPECT_EQ(engine.Execute(q, {}, &limited).size(), 1u);
  EXPECT_TRUE(limited.plan_cache_hit);

  // A different shape misses.
  q.limit = 0;
  q.distinct = true;
  QueryStats distinct_stats;
  engine.Execute(q, {}, &distinct_stats);
  EXPECT_FALSE(distinct_stats.plan_cache_hit);

  ExecutionOptions uncached;
  uncached.use_plan_cache = false;
  QueryStats uncached_stats;
  engine.Execute(q, uncached, &uncached_stats);
  EXPECT_FALSE(uncached_stats.plan_cache_hit);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  auto plan = std::make_shared<CompiledPlan>();
  cache.Insert("a", plan);
  cache.Insert("b", plan);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refreshes "a"
  cache.Insert("c", plan);                // evicts "b"
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

// -------------------------------------------- Parser edge cases (more)

TEST_F(QueryFixture, ParseSelectStar) {
  auto parsed = ParseSparql("SELECT * WHERE { ?x <worksFor> ?c . }",
                            store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->projection.empty());
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 2u);  // both ?x and ?c
}

TEST_F(QueryFixture, ParseMoreMalformedQueries) {
  EXPECT_FALSE(ParseSparql("", store_.dict()).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ? <p> <o> . }",
                           store_.dict()).ok());  // bare '?'
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <p> . }",
                           store_.dict()).ok());  // 2-term pattern
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x ?y ?z . } LIMIT",
                           store_.dict()).ok());  // LIMIT without count
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x ?y ?z . } LIMIT two",
                           store_.dict()).ok());
}

TEST_F(QueryFixture, ParseLimitZeroMeansNoLimit) {
  auto parsed = ParseSparql("SELECT ?x WHERE { ?x ?y ?z . } LIMIT 0",
                            store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  EXPECT_EQ(engine.Execute(*parsed).size(), store_.size());
}

TEST_F(QueryFixture, ParseLiteralObjectWithSpaces) {
  store_.AddTerms(Term::Iri("Acme"), Term::Iri("motto"),
                  Term::Literal("We make everything"));
  auto parsed = ParseSparql(
      "SELECT ?x WHERE { ?x <motto> \"We make everything\" . }",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("x"), acme_);
}

// ------------------------------------------------- Equivalence property

// Canonical form for multiset comparison across executors.
std::vector<std::vector<std::pair<std::string, TermId>>> Canonical(
    std::vector<Binding> rows) {
  std::vector<std::vector<std::pair<std::string, TermId>>> out;
  out.reserve(rows.size());
  for (const Binding& row : rows) {
    out.emplace_back(row.begin(), row.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Reference evaluator: nested loops over MatchFullScan (no indexes, no
// reordering, no streaming) — deliberately the dumbest correct join.
std::vector<Binding> BruteForce(const rdf::TripleStore& store,
                                const SelectQuery& q) {
  std::vector<Binding> out;
  std::set<Binding> seen;
  auto all = store.MatchFullScan(rdf::TriplePattern());
  Binding binding;
  std::function<void(size_t)> rec = [&](size_t depth) {
    if (depth == q.where.size()) {
      Binding row;
      if (q.projection.empty()) {
        row = binding;
      } else {
        for (const std::string& var : q.projection) {
          auto it = binding.find(var);
          if (it != binding.end()) row[var] = it->second;
        }
      }
      if (q.distinct && !seen.insert(row).second) return;
      out.push_back(std::move(row));
      return;
    }
    const QueryPattern& qp = q.where[depth];
    for (const rdf::Triple& t : all) {
      Binding saved = binding;
      auto bind = [&](const QueryTerm& term, TermId value) {
        if (!term.is_var) {
          return term.id != rdf::kInvalidTermId && term.id == value;
        }
        auto it = binding.find(term.var);
        if (it != binding.end()) return it->second == value;
        binding[term.var] = value;
        return true;
      };
      if (bind(qp.s, t.s) && bind(qp.p, t.p) && bind(qp.o, t.o)) {
        rec(depth + 1);
      }
      binding = std::move(saved);
    }
  };
  rec(0);
  return out;
}

TEST(QueryPropertyTest, ExecutorsAgreeOnRandomStoresAndQueries) {
  for (uint32_t seed : {1u, 7u, 42u}) {
    std::mt19937 rng(seed);
    rdf::TripleStore store;
    std::vector<TermId> entities, predicates;
    for (int i = 0; i < 10; ++i) {
      entities.push_back(store.dict().Intern(
          rdf::Term::Iri("e" + std::to_string(i))));
    }
    for (int i = 0; i < 4; ++i) {
      predicates.push_back(store.dict().Intern(
          rdf::Term::Iri("p" + std::to_string(i))));
    }
    auto pick = [&rng](const std::vector<TermId>& pool) {
      return pool[rng() % pool.size()];
    };
    for (int i = 0; i < 60; ++i) {
      store.Add({pick(entities), pick(predicates), pick(entities)});
    }

    QueryEngine engine(&store);
    const char* vars[] = {"x", "y", "z"};
    for (int trial = 0; trial < 40; ++trial) {
      SelectQuery q;
      q.distinct = (rng() % 4) == 0;
      size_t num_patterns = 1 + rng() % 3;
      for (size_t i = 0; i < num_patterns; ++i) {
        auto term = [&](bool predicate_pos) {
          if (rng() % 2) return QueryTerm::Var(vars[rng() % 3]);
          return QueryTerm::Bound(
              predicate_pos ? pick(predicates) : pick(entities));
        };
        q.where.push_back({term(false), term(true), term(false)});
      }
      auto expected = Canonical(BruteForce(store, q));

      ExecutionOptions streaming;  // defaults
      ExecutionOptions materialized;
      materialized.streaming = false;
      ExecutionOptions no_indexes;
      no_indexes.use_indexes = false;
      ExecutionOptions written_order;
      written_order.reorder_patterns = false;
      EXPECT_EQ(Canonical(engine.Execute(q, streaming)), expected)
          << "seed=" << seed << " trial=" << trial;
      EXPECT_EQ(Canonical(engine.Execute(q, materialized)), expected)
          << "seed=" << seed << " trial=" << trial;
      EXPECT_EQ(Canonical(engine.Execute(q, no_indexes)), expected)
          << "seed=" << seed << " trial=" << trial;
      EXPECT_EQ(Canonical(engine.Execute(q, written_order)), expected)
          << "seed=" << seed << " trial=" << trial;
    }
  }
}

// ------------------------------------------------------------ Aggregates

TEST_F(QueryFixture, ParseAggregateGroupByAndExecute) {
  auto parsed = ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } GROUP BY ?c",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->agg.func, AggFunc::kCount);
  EXPECT_EQ(parsed->agg.var, "p");
  EXPECT_EQ(parsed->agg.out_name, "n");
  EXPECT_EQ(parsed->agg.group_by, (std::vector<std::string>{"c"}));
  QueryEngine engine(&store_);
  QueryStats stats;
  auto rows = engine.Execute(*parsed, {}, &stats);
  ASSERT_EQ(rows.size(), 2u);
  std::map<TermId, TermId> counts;
  for (const Binding& row : rows) counts[row.at("c")] = row.at("n");
  EXPECT_EQ(counts[acme_], 2u);
  EXPECT_EQ(counts[globex_], 1u);
  EXPECT_EQ(stats.agg_groups, 2u);
}

TEST_F(QueryFixture, CountStarIsOneGlobalGroup) {
  auto parsed = ParseSparql(
      "SELECT (COUNT(*) AS ?total) WHERE { ?x <type> ?t . }", store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("total"), 5u);
}

TEST_F(QueryFixture, CountDistinctCollapsesDuplicates) {
  auto parsed = ParseSparql(
      "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?p <worksFor> ?c . }",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("n"), 2u);  // acme, globex

  auto plain = ParseSparql(
      "SELECT (COUNT(?c) AS ?n) WHERE { ?p <worksFor> ?c . }",
      store_.dict());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(engine.Execute(*plain)[0].at("n"), 3u);
}

TEST_F(QueryFixture, TopKGroupByIsOrderedAndBounded) {
  auto parsed = ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
      "GROUP BY ?c ORDER BY DESC(?n) LIMIT 1",
      store_.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->agg.top_k, 1u);
  EXPECT_EQ(parsed->limit, 0u);  // the bounded heap subsumes LIMIT
  QueryEngine engine(&store_);
  auto rows = engine.Execute(*parsed);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("c"), acme_);
  EXPECT_EQ(rows[0].at("n"), 2u);

  // k larger than the group count: every group, still count-descending.
  auto all = ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
      "GROUP BY ?c ORDER BY DESC(?n) LIMIT 10",
      store_.dict());
  ASSERT_TRUE(all.ok());
  auto ordered = engine.Execute(*all);
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0].at("c"), acme_);
  EXPECT_EQ(ordered[1].at("c"), globex_);
}

TEST_F(QueryFixture, AggregateParseErrors) {
  const rdf::Dictionary& dict = store_.dict();
  // GROUP BY / ORDER BY require an aggregate.
  EXPECT_FALSE(ParseSparql(
      "SELECT ?c WHERE { ?p <worksFor> ?c . } GROUP BY ?c", dict).ok());
  EXPECT_FALSE(ParseSparql(
      "SELECT ?c WHERE { ?p <worksFor> ?c . } ORDER BY DESC(?c) LIMIT 1",
      dict).ok());
  // Top-k needs a LIMIT to bound the heap.
  EXPECT_FALSE(ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
      "GROUP BY ?c ORDER BY DESC(?n)", dict).ok());
  // Sort key must be the aggregate output.
  EXPECT_FALSE(ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
      "GROUP BY ?c ORDER BY DESC(?c) LIMIT 1", dict).ok());
  // SELECT DISTINCT does not combine with an aggregate.
  EXPECT_FALSE(ParseSparql(
      "SELECT DISTINCT (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . }",
      dict).ok());
  // COUNT(DISTINCT *) is not a thing.
  EXPECT_FALSE(ParseSparql(
      "SELECT (COUNT(DISTINCT *) AS ?n) WHERE { ?p <worksFor> ?c . }",
      dict).ok());
  // Projection must equal GROUP BY.
  EXPECT_FALSE(ParseSparql(
      "SELECT ?p (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } GROUP BY ?c",
      dict).ok());
  // Projected aggregate without GROUP BY cannot keep plain variables.
  EXPECT_FALSE(ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . }",
      dict).ok());
  // Output name colliding with a grouped variable.
  EXPECT_FALSE(ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?c) WHERE { ?p <worksFor> ?c . } GROUP BY ?c",
      dict).ok());
  // Only one aggregate per query.
  EXPECT_FALSE(ParseSparql(
      "SELECT (COUNT(?p) AS ?n) (COUNT(?c) AS ?m) "
      "WHERE { ?p <worksFor> ?c . }", dict).ok());
}

TEST_F(QueryFixture, AggregatePlanKeyDistinctFromPlainShape) {
  // Regression: an aggregate and a plain query over the same WHERE
  // shape must not share a plan (or, downstream, a result-cache key).
  auto plain = ParseSparql(
      "SELECT ?c WHERE { ?p <worksFor> ?c . }", store_.dict());
  auto agg = ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } GROUP BY ?c",
      store_.dict());
  ASSERT_TRUE(plain.ok() && agg.ok());
  EXPECT_NE(PlanCacheKey(*plain, true), PlanCacheKey(*agg, true));

  QueryEngine engine(&store_);
  QueryStats plain_stats, agg_stats;
  engine.Execute(*plain, {}, &plain_stats);
  auto rows = engine.Execute(*agg, {}, &agg_stats);
  EXPECT_FALSE(agg_stats.plan_cache_hit);
  ASSERT_FALSE(rows.empty());
  EXPECT_TRUE(rows[0].count("n"));

  // Top-k is not part of the plan: the k-variant reuses the agg plan.
  auto topk = ParseSparql(
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
      "GROUP BY ?c ORDER BY DESC(?n) LIMIT 1",
      store_.dict());
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(PlanCacheKey(*agg, true), PlanCacheKey(*topk, true));
  QueryStats topk_stats;
  engine.Execute(*topk, {}, &topk_stats);
  EXPECT_TRUE(topk_stats.plan_cache_hit);
}

// ------------------------------------------------------- Batch execution

TEST_F(QueryFixture, BatchModeMatchesRowModeOnJoins) {
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(located_in_),
                     QueryTerm::Bound(springfield_)});
  QueryEngine engine(&store_);
  auto expected = Canonical(engine.Execute(q));
  for (size_t batch : {1u, 2u, 1024u}) {
    ExecutionOptions opts;
    opts.batch_size = batch;
    QueryStats stats;
    EXPECT_EQ(Canonical(engine.Execute(q, opts, &stats)), expected)
        << "batch_size=" << batch;
    EXPECT_GE(stats.batches, 1u);
  }
}

TEST_F(QueryFixture, BatchBloomPrefilterSkipsNonMatchingOuterRows) {
  // Written order (reordering off): the unselective scan feeds the
  // join, the selective level gets a Bloom prefilter built from its
  // one-row inner side.
  SelectQuery q;
  q.projection = {"who"};
  q.where.push_back({QueryTerm::Var("who"), QueryTerm::Bound(works_for_),
                     QueryTerm::Var("c")});
  q.where.push_back({QueryTerm::Var("c"), QueryTerm::Bound(located_in_),
                     QueryTerm::Bound(springfield_)});
  QueryEngine engine(&store_);
  ExecutionOptions opts;
  opts.batch_size = 16;
  opts.reorder_patterns = false;
  QueryStats stats;
  auto rows = engine.Execute(q, opts, &stats);
  EXPECT_EQ(rows.size(), 2u);
  // Three outer rows probed; the two acme rows pass, globex is
  // eliminated without ever touching the index.
  EXPECT_EQ(stats.bloom_probes, 3u);
  EXPECT_EQ(stats.bloom_hits, 2u);
}

TEST_F(QueryFixture, BatchModeMatchesRowModeOnAggregates) {
  for (const char* sparql :
       {"SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
        "GROUP BY ?c",
        "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?p <worksFor> ?c . }",
        "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <worksFor> ?c . } "
        "GROUP BY ?c ORDER BY DESC(?n) LIMIT 1"}) {
    auto parsed = ParseSparql(sparql, store_.dict());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    QueryEngine engine(&store_);
    auto expected = Canonical(engine.Execute(*parsed));
    ExecutionOptions opts;
    opts.batch_size = 2;
    EXPECT_EQ(Canonical(engine.Execute(*parsed, opts)), expected) << sparql;
  }
}

// -------------------------------------------- Aggregate property tests

/// Reference aggregate evaluator: brute-force join rows, then fold by
/// hand. Mirrors the planner's documented semantics for variables
/// absent from WHERE (dropped from grouping; COUNT degrades to *).
std::vector<std::vector<TermId>> BruteForceAgg(const rdf::TripleStore& store,
                                               const SelectQuery& q) {
  SelectQuery inner = q;
  inner.agg = AggSpec{};
  inner.projection.clear();
  inner.distinct = false;
  inner.limit = 0;
  std::vector<Binding> rows = BruteForce(store, inner);

  std::vector<std::string> group_vars;
  for (const std::string& var : q.agg.group_by) {
    if (!rows.empty() && rows.front().count(var)) group_vars.push_back(var);
    if (rows.empty()) group_vars.push_back(var);  // moot: no rows
  }
  bool count_var_known =
      !q.agg.var.empty() && !rows.empty() && rows.front().count(q.agg.var);
  std::map<std::vector<TermId>, uint64_t> counts;
  std::map<std::vector<TermId>, std::set<TermId>> distincts;
  for (const Binding& row : rows) {
    std::vector<TermId> key;
    for (const std::string& var : group_vars) key.push_back(row.at(var));
    if (q.agg.func == AggFunc::kCountDistinct && count_var_known) {
      distincts[key].insert(row.at(q.agg.var));
    } else {
      ++counts[key];
    }
  }
  if (q.agg.func == AggFunc::kCountDistinct && count_var_known) {
    for (const auto& [key, values] : distincts) {
      counts[key] = values.size();
    }
  }
  std::vector<std::vector<TermId>> out;
  for (const auto& [key, count] : counts) {
    std::vector<TermId> row = key;
    row.push_back(static_cast<TermId>(count));
    out.push_back(std::move(row));
  }
  if (q.agg.top_k > 0) {
    std::sort(out.begin(), out.end(),
              [](const std::vector<TermId>& a, const std::vector<TermId>& b) {
                if (a.back() != b.back()) return a.back() > b.back();
                return std::vector<TermId>(a.begin(), a.end() - 1) <
                       std::vector<TermId>(b.begin(), b.end() - 1);
              });
    if (out.size() > q.agg.top_k) out.resize(q.agg.top_k);
  }
  return out;
}

/// Engine output -> [group values..., count] rows in group_by order.
std::vector<std::vector<TermId>> AggRows(const std::vector<Binding>& rows,
                                         const SelectQuery& q) {
  std::vector<std::vector<TermId>> out;
  for (const Binding& row : rows) {
    std::vector<TermId> flat;
    for (const std::string& var : q.agg.group_by) {
      auto it = row.find(var);
      if (it != row.end()) flat.push_back(it->second);
    }
    flat.push_back(row.at(q.agg.out_name));
    out.push_back(std::move(flat));
  }
  return out;
}

TEST(QueryPropertyTest, AggregatesMatchBruteForceAcrossModesAndStores) {
  for (uint32_t seed : {3u, 11u, 29u}) {
    std::mt19937 rng(seed);
    rdf::TripleStore store;
    std::vector<TermId> entities, predicates;
    for (int i = 0; i < 8; ++i) {
      entities.push_back(
          store.dict().Intern(rdf::Term::Iri("e" + std::to_string(i))));
    }
    for (int i = 0; i < 3; ++i) {
      predicates.push_back(
          store.dict().Intern(rdf::Term::Iri("p" + std::to_string(i))));
    }
    auto pick = [&rng](const std::vector<TermId>& pool) {
      return pool[rng() % pool.size()];
    };
    for (int i = 0; i < 50; ++i) {
      store.Add({pick(entities), pick(predicates), pick(entities)});
    }

    // Mirror the store into a FrameStore (same term ids), so every
    // trial also runs against the mmap-shaped source.
    rdf::FrameStoreBuilder builder;
    for (TermId id = 1; id <= store.dict().size(); ++id) {
      builder.AddTerm(store.dict().term(id));
    }
    for (const rdf::Triple& t : store.MatchFullScan(rdf::TriplePattern())) {
      builder.AddTriple(t);
    }
    auto bytes = builder.Serialize();
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    auto owner = std::make_shared<std::string>(std::move(*bytes));
    auto frame = rdf::FrameStore::Attach(owner->data(), owner->size(), owner);
    ASSERT_TRUE(frame.ok()) << frame.status();

    QueryEngine store_engine(&store);
    QueryEngine frame_engine(frame->get());
    const char* vars[] = {"x", "y", "z"};
    for (int trial = 0; trial < 30; ++trial) {
      SelectQuery q;
      size_t num_patterns = 1 + rng() % 3;
      std::set<std::string> used_vars;
      for (size_t i = 0; i < num_patterns; ++i) {
        auto term = [&](bool predicate_pos) {
          if (rng() % 2) {
            const char* v = vars[rng() % 3];
            used_vars.insert(v);
            return QueryTerm::Var(v);
          }
          return QueryTerm::Bound(predicate_pos ? pick(predicates)
                                                : pick(entities));
        };
        q.where.push_back({term(false), term(true), term(false)});
      }
      if (used_vars.empty()) continue;  // no aggregate over zero vars
      std::vector<std::string> pool(used_vars.begin(), used_vars.end());
      q.agg.func = (rng() % 2) ? AggFunc::kCount : AggFunc::kCountDistinct;
      q.agg.var = pool[rng() % pool.size()];
      q.agg.out_name = "agg_count";
      size_t num_groups = rng() % pool.size();
      for (size_t g = 0; g < num_groups; ++g) {
        q.agg.group_by.push_back(pool[g]);
      }
      bool top_k = (rng() % 3) == 0;
      if (top_k) q.agg.top_k = 1 + rng() % 3;

      auto expected = BruteForceAgg(store, q);
      auto check = [&](QueryEngine& engine, size_t batch_size,
                       const char* label) {
        ExecutionOptions opts;
        opts.batch_size = batch_size;
        auto got = AggRows(engine.Execute(q, opts), q);
        if (q.agg.top_k == 0) std::sort(got.begin(), got.end());
        std::vector<std::vector<TermId>> want = expected;
        if (q.agg.top_k == 0) std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << label << " seed=" << seed
                             << " trial=" << trial;
      };
      check(store_engine, 0, "store/row");
      check(store_engine, 3, "store/batch");
      check(frame_engine, 0, "frame/row");
      check(frame_engine, 7, "frame/batch");
    }
  }
}

}  // namespace
}  // namespace query
}  // namespace kb
