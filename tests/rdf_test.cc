#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/frame_store.h"
#include "rdf/namespaces.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/random.h"

namespace kb {
namespace rdf {
namespace {

// ---------------------------------------------------------------- Term

TEST(TermTest, IriRoundTrip) {
  Term t = Term::Iri("http://kbforge.org/entity/Steve_Jobs");
  EXPECT_EQ(t.ToString(), "<http://kbforge.org/entity/Steve_Jobs>");
  auto parsed = Term::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TermTest, PlainLiteralRoundTrip) {
  Term t = Term::Literal("hello \"world\"\nnext");
  auto parsed = Term::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TermTest, LangLiteralRoundTrip) {
  Term t = Term::LangLiteral("Vienne", "fr");
  EXPECT_EQ(t.ToString(), "\"Vienne\"@fr");
  auto parsed = Term::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->language(), "fr");
}

TEST(TermTest, TypedLiteralRoundTrip) {
  Term t = Term::IntLiteral(42);
  auto parsed = Term::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->value(), "42");
  EXPECT_EQ(parsed->datatype(), "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(TermTest, BlankRoundTrip) {
  Term t = Term::Blank("b42");
  EXPECT_EQ(t.ToString(), "_:b42");
  auto parsed = Term::Parse("_:b42");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TermTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Term::Parse("").ok());
  EXPECT_FALSE(Term::Parse("<unterminated").ok());
  EXPECT_FALSE(Term::Parse("\"unterminated").ok());
  EXPECT_FALSE(Term::Parse("plainword").ok());
}

TEST(NamespacesTest, AbbreviateKnownPrefixes) {
  EXPECT_EQ(Abbreviate(EntityIri("Steve_Jobs")), "kb:Steve_Jobs");
  EXPECT_EQ(Abbreviate(std::string(kRdfType)), "rdf:type");
  EXPECT_EQ(Abbreviate("http://example.org/x"), "http://example.org/x");
}

// ---------------------------------------------------------------- Dictionary

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("x"));
  TermId b = dict.Intern(Term::Iri("x"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.term(a).value(), "x");
}

TEST(DictionaryTest, DistinctTermsDistinctIds) {
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri("x"));
  TermId lit = dict.Intern(Term::Literal("x"));
  EXPECT_NE(iri, lit);
}

TEST(DictionaryTest, LookupMissReturnsInvalid) {
  Dictionary dict;
  EXPECT_EQ(dict.Lookup(Term::Iri("nope")), kInvalidTermId);
}

// ---------------------------------------------------------------- Store

class TripleStoreTest : public ::testing::Test {
 protected:
  TermId Iri(const std::string& s) {
    return store_.dict().Intern(Term::Iri(s));
  }
  TripleStore store_;
};

TEST_F(TripleStoreTest, AddAndContains) {
  Triple t(Iri("s"), Iri("p"), Iri("o"));
  EXPECT_TRUE(store_.Add(t));
  EXPECT_FALSE(store_.Add(t));  // duplicate
  EXPECT_TRUE(store_.Contains(t));
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(TripleStoreTest, PatternShapesAllWork) {
  TermId s1 = Iri("s1"), s2 = Iri("s2");
  TermId p1 = Iri("p1"), p2 = Iri("p2");
  TermId o1 = Iri("o1"), o2 = Iri("o2");
  for (TermId s : {s1, s2})
    for (TermId p : {p1, p2})
      for (TermId o : {o1, o2}) store_.Add(Triple(s, p, o));
  EXPECT_EQ(store_.size(), 8u);

  TriplePattern all;
  EXPECT_EQ(store_.Match(all).size(), 8u);
  TriplePattern sp;
  sp.s = s1;
  sp.p = p2;
  EXPECT_EQ(store_.Match(sp).size(), 2u);
  TriplePattern po;
  po.p = p1;
  po.o = o2;
  EXPECT_EQ(store_.Match(po).size(), 2u);
  TriplePattern so;
  so.s = s2;
  so.o = o1;
  EXPECT_EQ(store_.Match(so).size(), 2u);
  TriplePattern exact;
  exact.s = s1;
  exact.p = p1;
  exact.o = o1;
  EXPECT_EQ(store_.Match(exact).size(), 1u);
}

TEST_F(TripleStoreTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    store_.Add(Triple(Iri("s"), Iri("p"), Iri("o" + std::to_string(i))));
  }
  int seen = 0;
  TriplePattern pat;
  pat.s = store_.dict().Lookup(Term::Iri("s"));
  store_.Scan(pat, [&seen](const Triple&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST_F(TripleStoreTest, ObjectsAndSubjectsHelpers) {
  TermId s = Iri("s"), p = Iri("p");
  TermId o1 = Iri("o1"), o2 = Iri("o2");
  store_.Add(Triple(s, p, o1));
  store_.Add(Triple(s, p, o2));
  auto objects = store_.Objects(s, p);
  EXPECT_EQ(objects.size(), 2u);
  auto subjects = store_.Subjects(p, o1);
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0], s);
  EXPECT_NE(store_.FirstObject(s, p), kInvalidTermId);
  EXPECT_EQ(store_.FirstObject(p, s), kInvalidTermId);
}

TEST_F(TripleStoreTest, InterleavedAddAndQuery) {
  TermId p = Iri("p");
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      store_.Add(Triple(Iri("s" + std::to_string(round * 100 + i)), p,
                        Iri("o")));
    }
    TriplePattern pat;
    pat.p = p;
    EXPECT_EQ(store_.CountMatches(pat), (round + 1) * 100u);
  }
}

// Property test: the indexed matcher must agree with a full scan on
// randomly generated stores and patterns.
class TripleStorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleStorePropertyTest, IndexAgreesWithFullScan) {
  Rng rng(GetParam());
  TripleStore store;
  std::vector<TermId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(store.dict().Intern(Term::Iri("t" + std::to_string(i))));
  }
  for (int i = 0; i < 500; ++i) {
    store.Add(Triple(rng.Choice(ids), rng.Choice(ids), rng.Choice(ids)));
  }
  for (int q = 0; q < 100; ++q) {
    TriplePattern pat;
    if (rng.Bernoulli(0.5)) pat.s = rng.Choice(ids);
    if (rng.Bernoulli(0.5)) pat.p = rng.Choice(ids);
    if (rng.Bernoulli(0.5)) pat.o = rng.Choice(ids);
    auto indexed = store.Match(pat);
    auto scanned = store.MatchFullScan(pat);
    auto key = [](const Triple& t) {
      return std::tuple(t.s, t.p, t.o);
    };
    std::sort(indexed.begin(), indexed.end());
    std::sort(scanned.begin(), scanned.end());
    ASSERT_EQ(indexed.size(), scanned.size());
    for (size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(key(indexed[i]), key(scanned[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- N-Triples

TEST(NTriplesTest, RoundTripPreservesTriples) {
  TripleStore store;
  store.AddTerms(Term::Iri("http://kb/s"), Term::Iri("http://kb/p"),
                 Term::LangLiteral("wert", "de"));
  store.AddTerms(Term::Iri("http://kb/s"), Term::Iri("http://kb/p2"),
                 Term::IntLiteral(7));
  store.AddTerms(Term::Blank("b1"), Term::Iri("http://kb/p"),
                 Term::Literal("x y z"));
  std::string text = WriteNTriples(store);

  TripleStore restored;
  ASSERT_TRUE(ReadNTriples(text, &restored).ok());
  EXPECT_EQ(restored.size(), store.size());
  EXPECT_EQ(WriteNTriples(restored), text);
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  TripleStore store;
  std::string text =
      "# a comment\n\n<http://a> <http://b> \"lit\" .\n   \n";
  ASSERT_TRUE(ReadNTriples(text, &store).ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(NTriplesTest, RejectsMalformedLine) {
  TripleStore store;
  EXPECT_FALSE(ReadNTriples("<http://a> <http://b> .\n", &store).ok());
  EXPECT_FALSE(
      ReadNTriples("<http://a> <http://b> \"x\" extra .\n", &store).ok());
  EXPECT_FALSE(ReadNTriples("<a> \"notiri\" <c> .\n", &store).ok());
}

TEST(NTriplesTest, LiteralWithDotAndSpaces) {
  TripleStore store;
  std::string line =
      "<http://a> <http://b> \"ends with . dot \\\" q\" .\n";
  ASSERT_TRUE(ReadNTriples(line, &store).ok());
  EXPECT_EQ(store.size(), 1u);
}

// ------------------------------------- Term round-trip property test

/// Random literal value stressing every escape ToString knows about
/// (backslash, quote, newline, tab, carriage return) plus plain text.
std::string RandomLiteralValue(Rng* rng) {
  static const char* kPieces[] = {"a", "Z", " ", "0", "é", "界",
                                  "\\", "\"", "\n", "\t", "\r",
                                  ".", ">", "@", "^^"};
  size_t len = rng->Uniform(12);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kPieces[rng->Uniform(sizeof(kPieces) / sizeof(kPieces[0]))];
  }
  return out;
}

/// Random IRI body: IRIs are not escaped in ToString, so the value must
/// avoid the delimiters themselves.
std::string RandomIriValue(Rng* rng) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      "/_-.#?&=%:~";
  std::string out = "http://kbforge.org/";
  size_t len = 1 + rng->Uniform(24);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

std::string RandomLangTag(Rng* rng) {
  static const char* kTags[] = {"en",      "fr", "de", "zh",
                                "en-US",   "pt-BR"};
  return kTags[rng->Uniform(sizeof(kTags) / sizeof(kTags[0]))];
}

Term RandomTerm(Rng* rng) {
  switch (rng->Uniform(6)) {
    case 0: return Term::Iri(RandomIriValue(rng));
    case 1: return Term::Literal(RandomLiteralValue(rng));
    case 2: return Term::LangLiteral(RandomLiteralValue(rng),
                                     RandomLangTag(rng));
    case 3: return Term::TypedLiteral(RandomLiteralValue(rng),
                                      RandomIriValue(rng));
    case 4: return Term::IntLiteral(static_cast<int64_t>(rng->Uniform(1u << 30)) -
                                    (1 << 29));
    default: return Term::Blank("b" + std::to_string(rng->Uniform(1000)));
  }
}

TEST(TermTest, ParseToStringRoundTripProperty) {
  Rng rng(0xE17);
  for (int i = 0; i < 2000; ++i) {
    Term t = RandomTerm(&rng);
    std::string text = t.ToString();
    auto parsed = Term::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, t) << text;
    // ToString is canonical: re-rendering the parse is byte-identical.
    EXPECT_EQ(parsed->ToString(), text);
  }
}

// ------------------------------- dictionary persistence + concurrency

TEST(DictionaryTest, FrameStorePersistenceKeepsIdsStable) {
  // Intern a corpus, persist through a FrameStore, re-layer a
  // Dictionary on top: every pre-snapshot id must resolve to the same
  // term, and re-interning the same term must return the same id.
  Rng rng(99);
  Dictionary dict;
  std::vector<Term> corpus;
  for (int i = 0; i < 300; ++i) {
    Term t = RandomTerm(&rng);
    TermId id = dict.Intern(t);
    if (id == corpus.size() + 1) corpus.push_back(t);  // first sighting
  }
  FrameStoreBuilder builder;
  for (TermId id = 1; id <= dict.size(); ++id) {
    ASSERT_EQ(builder.AddTerm(dict.term(id)), id);
  }
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto owner = std::make_shared<std::string>(std::move(*bytes));
  auto store = FrameStore::Attach(owner->data(), owner->size(), owner);
  ASSERT_TRUE(store.ok()) << store.status();

  Dictionary reopened(*store);
  ASSERT_EQ(reopened.size(), corpus.size());
  for (TermId id = 1; id <= corpus.size(); ++id) {
    EXPECT_EQ(reopened.term(id), corpus[id - 1]);
    EXPECT_EQ(reopened.Lookup(corpus[id - 1]), id);
    EXPECT_EQ(reopened.Intern(corpus[id - 1]), id);  // no re-assignment
  }
  // New terms go strictly above the persisted range.
  TermId fresh = reopened.InternIri("http://kbforge.org/entity/Fresh");
  EXPECT_EQ(fresh, corpus.size() + 1);
  EXPECT_EQ(reopened.base_size(), corpus.size());
}

TEST(DictionaryTest, ConcurrentLookupsDuringInterning) {
  // One writer interning a stream of new terms while readers hammer
  // Lookup/term on everything interned so far — the contract the KB
  // relies on (queries overlap in-flight asserts). Run under
  // TSan/ASan in CI.
  Dictionary dict;
  constexpr int kTerms = 4000;
  std::atomic<TermId> published{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int i = 0; i < kTerms; ++i) {
      TermId id = dict.InternIri(rdf::EntityIri("W" + std::to_string(i)));
      published.store(id, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      while (published.load(std::memory_order_acquire) <
             static_cast<TermId>(kTerms)) {
        TermId upto = published.load(std::memory_order_acquire);
        if (upto == 0) continue;
        TermId id = static_cast<TermId>(1 + rng.Uniform(upto));
        const Term& t = dict.term(id);
        if (t.kind() != TermKind::kIri ||
            dict.Lookup(t) != id) {
          failed.store(true);
          break;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(dict.size(), static_cast<size_t>(kTerms));
}

TEST(DictionaryTest, ConcurrentReadsOverCatalogBase) {
  // Same hammer, but layered over an immutable FrameStore catalog: the
  // readers exercise the lock-free CAS-published base-term cache while
  // the writer extends the overlay.
  FrameStoreBuilder builder;
  constexpr int kBase = 500;
  for (int i = 0; i < kBase; ++i) {
    builder.AddTerm(Term::Iri(rdf::EntityIri("B" + std::to_string(i))));
  }
  auto bytes = builder.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto owner = std::make_shared<std::string>(std::move(*bytes));
  auto store = FrameStore::Attach(owner->data(), owner->size(), owner);
  ASSERT_TRUE(store.ok()) << store.status();

  Dictionary dict(*store);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + r);
      while (!stop.load(std::memory_order_acquire)) {
        TermId id = static_cast<TermId>(1 + rng.Uniform(kBase));
        const Term& t = dict.term(id);
        if (t.value() != rdf::EntityIri("B" + std::to_string(id - 1)) ||
            dict.Lookup(t) != id) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    dict.InternIri(rdf::EntityIri("O" + std::to_string(i)));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(dict.size(), static_cast<size_t>(kBase + 2000));
}

}  // namespace
}  // namespace rdf
}  // namespace kb
