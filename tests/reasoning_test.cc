#include <gtest/gtest.h>

#include "reasoning/consistency.h"
#include "reasoning/factor_graph.h"
#include "reasoning/maxsat.h"
#include "util/random.h"

namespace kb {
namespace reasoning {
namespace {

using corpus::Relation;
using extraction::ExtractedFact;

// ---------------------------------------------------------------- MaxSat

TEST(MaxSatTest, UnitClausesDriveAssignment) {
  MaxSatSolver solver;
  uint32_t a = solver.AddVariable();
  uint32_t b = solver.AddVariable();
  solver.AddSoftUnit(Pos(a), 2.0);
  solver.AddSoftUnit(Neg(b), 1.0);
  MaxSatResult result = solver.Solve();
  EXPECT_TRUE(result.hard_satisfied);
  EXPECT_TRUE(result.assignment[a]);
  EXPECT_FALSE(result.assignment[b]);
  EXPECT_DOUBLE_EQ(result.satisfied_soft_weight, 3.0);
}

TEST(MaxSatTest, HardConflictPicksHeavierSide) {
  MaxSatSolver solver;
  uint32_t a = solver.AddVariable();
  uint32_t b = solver.AddVariable();
  solver.AddSoftUnit(Pos(a), 3.0);
  solver.AddSoftUnit(Pos(b), 1.0);
  solver.AddHardConflict(a, b);
  MaxSatResult result = solver.Solve();
  EXPECT_TRUE(result.hard_satisfied);
  EXPECT_TRUE(result.assignment[a]);
  EXPECT_FALSE(result.assignment[b]);
}

TEST(MaxSatTest, ChainOfConflicts) {
  // a-b, b-c conflicts; weights make {a, c} optimal.
  MaxSatSolver solver;
  uint32_t a = solver.AddVariable();
  uint32_t b = solver.AddVariable();
  uint32_t c = solver.AddVariable();
  solver.AddSoftUnit(Pos(a), 2.0);
  solver.AddSoftUnit(Pos(b), 2.5);
  solver.AddSoftUnit(Pos(c), 2.0);
  solver.AddHardConflict(a, b);
  solver.AddHardConflict(b, c);
  MaxSatResult result = solver.Solve();
  EXPECT_TRUE(result.hard_satisfied);
  EXPECT_TRUE(result.assignment[a]);
  EXPECT_FALSE(result.assignment[b]);
  EXPECT_TRUE(result.assignment[c]);
}

TEST(MaxSatTest, ExactSolverSmallInstance) {
  MaxSatSolver solver;
  uint32_t a = solver.AddVariable();
  uint32_t b = solver.AddVariable();
  solver.AddSoftUnit(Pos(a), 1.0);
  solver.AddSoftUnit(Pos(b), 1.0);
  solver.AddHardConflict(a, b);
  MaxSatResult exact = solver.SolveExact();
  EXPECT_TRUE(exact.hard_satisfied);
  EXPECT_DOUBLE_EQ(exact.satisfied_soft_weight, 1.0);
}

// Property: local search must reach the exact optimum on random small
// instances (it has restarts and plenty of flips for ~12 vars).
class MaxSatPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxSatPropertyTest, LocalSearchMatchesExactOptimum) {
  Rng rng(GetParam() * 7919);
  MaxSatSolver solver;
  const int kVars = 10;
  std::vector<uint32_t> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(solver.AddVariable());
  // Random soft units.
  for (uint32_t v : vars) {
    solver.AddSoftUnit(rng.Bernoulli(0.7) ? Pos(v) : Neg(v),
                       0.5 + rng.UniformDouble() * 2.0);
  }
  // Random conflicts (hard) and soft binary clauses.
  for (int i = 0; i < 8; ++i) {
    uint32_t a = vars[rng.Uniform(kVars)];
    uint32_t b = vars[rng.Uniform(kVars)];
    if (a == b) continue;
    if (rng.Bernoulli(0.6)) {
      solver.AddHardConflict(a, b);
    } else {
      Clause c;
      c.literals = {Pos(a), Pos(b)};
      c.weight = 0.5 + rng.UniformDouble();
      solver.AddClause(c);
    }
  }
  MaxSatResult exact = solver.SolveExact();
  MaxSatResult search = solver.Solve();
  ASSERT_TRUE(search.hard_satisfied);
  EXPECT_NEAR(search.satisfied_soft_weight, exact.satisfied_soft_weight,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxSatPropertyTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------- Pipeline

ExtractedFact MakeFact(uint32_t subject, Relation relation, uint32_t object,
                       double confidence) {
  ExtractedFact f;
  f.subject = subject;
  f.relation = relation;
  f.object = object;
  f.confidence = confidence;
  return f;
}

TEST(ConsistencyTest, MajoritySupportWinsFunctionalConflict) {
  // bornIn is functional: subject 1 is claimed born in city 100 (three
  // sources) and city 200 (one source).
  std::vector<ExtractedFact> facts;
  for (int i = 0; i < 3; ++i) {
    facts.push_back(MakeFact(1, Relation::kBornIn, 100, 0.8));
  }
  facts.push_back(MakeFact(1, Relation::kBornIn, 200, 0.8));
  ConsistencyResult result = ReasonOverFacts(facts);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].object, 100u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].object, 200u);
  EXPECT_GT(result.num_conflicts, 0u);
}

TEST(ConsistencyTest, NonFunctionalRelationsKeepMultipleObjects) {
  std::vector<ExtractedFact> facts;
  facts.push_back(MakeFact(1, Relation::kStudiedAt, 100, 0.8));
  facts.push_back(MakeFact(1, Relation::kStudiedAt, 200, 0.8));
  ConsistencyResult result = ReasonOverFacts(facts);
  EXPECT_EQ(result.accepted.size(), 2u);
  EXPECT_EQ(result.num_conflicts, 0u);
}

TEST(ConsistencyTest, InverseFunctionalCapitalConflict) {
  // capitalOf is inverse functional: two cities claiming the same
  // country conflict.
  std::vector<ExtractedFact> facts;
  facts.push_back(MakeFact(10, Relation::kCapitalOf, 500, 0.9));
  facts.push_back(MakeFact(10, Relation::kCapitalOf, 500, 0.9));
  facts.push_back(MakeFact(20, Relation::kCapitalOf, 500, 0.6));
  ConsistencyResult result = ReasonOverFacts(facts);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].subject, 10u);
}

TEST(ConsistencyTest, TemporalMayorOverlapConflict) {
  ExtractedFact a = MakeFact(1, Relation::kMayorOf, 100, 0.9);
  a.span.begin.year = 1990;
  a.span.end.year = 2000;
  ExtractedFact dup = a;  // second source for the same mayor
  ExtractedFact b = MakeFact(2, Relation::kMayorOf, 100, 0.8);
  b.span.begin.year = 1995;
  b.span.end.year = 1998;
  ConsistencyResult result = ReasonOverFacts({a, dup, b});
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].subject, 1u);
  // Non-overlapping spans coexist.
  ExtractedFact c = MakeFact(2, Relation::kMayorOf, 100, 0.8);
  c.span.begin.year = 2001;
  c.span.end.year = 2005;
  result = ReasonOverFacts({a, c});
  EXPECT_EQ(result.accepted.size(), 2u);
}

TEST(ConsistencyTest, ReasoningOffKeepsEverything) {
  std::vector<ExtractedFact> facts;
  facts.push_back(MakeFact(1, Relation::kBornIn, 100, 0.8));
  facts.push_back(MakeFact(1, Relation::kBornIn, 200, 0.8));
  ConsistencyOptions options;
  options.functionality = false;
  options.inverse_functionality = false;
  options.temporal_conflicts = false;
  ConsistencyResult result = ReasonOverFacts(facts, options);
  EXPECT_EQ(result.accepted.size(), 2u);
}

// ---------------------------------------------------------------- Factors

TEST(FactorGraphTest, UnaryFactorSetsMarginal) {
  FactorGraph graph;
  uint32_t x = graph.AddVariable();
  graph.AddUnary(x, 2.0);
  auto exact = graph.ExactMarginals();
  // P(x) = e^2 / (1 + e^2) ~ 0.88.
  EXPECT_NEAR(exact[x], std::exp(2.0) / (1 + std::exp(2.0)), 1e-9);
  auto gibbs = graph.Marginals(FactorGraph::GibbsOptions{5, 200, 2000});
  EXPECT_NEAR(gibbs[x], exact[x], 0.05);
}

TEST(FactorGraphTest, MutexSuppressesJointTruth) {
  FactorGraph graph;
  uint32_t a = graph.AddVariable();
  uint32_t b = graph.AddVariable();
  graph.AddUnary(a, 1.5);
  graph.AddUnary(b, 1.5);
  graph.AddMutex(a, b, 4.0);
  auto exact = graph.ExactMarginals();
  // Strong mutex: both can't be likely true together; marginals drop
  // below the unary-only value.
  double unary_only = std::exp(1.5) / (1 + std::exp(1.5));
  EXPECT_LT(exact[a], unary_only);
  auto gibbs = graph.Marginals(FactorGraph::GibbsOptions{7, 300, 3000});
  EXPECT_NEAR(gibbs[a], exact[a], 0.06);
  EXPECT_NEAR(gibbs[b], exact[b], 0.06);
}

TEST(FactorGraphTest, ImplicationRaisesConsequent) {
  FactorGraph graph;
  uint32_t a = graph.AddVariable();
  uint32_t b = graph.AddVariable();
  graph.AddUnary(a, 3.0);   // a almost surely true
  graph.AddImply(a, b, 2.0);
  auto exact = graph.ExactMarginals();
  EXPECT_GT(exact[b], 0.6);  // pulled up by the implication
}

class FactorGraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FactorGraphPropertyTest, GibbsApproximatesExact) {
  Rng rng(GetParam() * 104729);
  FactorGraph graph;
  const int kVars = 6;
  std::vector<uint32_t> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(graph.AddVariable());
  for (uint32_t v : vars) {
    graph.AddUnary(v, rng.Gaussian(0, 1.5));
  }
  for (int i = 0; i < 4; ++i) {
    uint32_t a = vars[rng.Uniform(kVars)];
    uint32_t b = vars[rng.Uniform(kVars)];
    if (a == b) continue;
    if (rng.Bernoulli(0.5)) {
      graph.AddMutex(a, b, rng.UniformDouble() * 2);
    } else {
      graph.AddImply(a, b, rng.UniformDouble() * 2);
    }
  }
  auto exact = graph.ExactMarginals();
  auto gibbs = graph.Marginals(
      FactorGraph::GibbsOptions{GetParam() * 31u, 500, 6000});
  for (int i = 0; i < kVars; ++i) {
    EXPECT_NEAR(gibbs[i], exact[i], 0.08) << "var " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorGraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4));


// ---------------------------------------------------------------- Gibbs

TEST(ProbabilisticConsistencyTest, MajorityWinsLikeMaxSat) {
  std::vector<ExtractedFact> facts;
  for (int i = 0; i < 3; ++i) {
    facts.push_back(MakeFact(1, Relation::kBornIn, 100, 0.8));
  }
  facts.push_back(MakeFact(1, Relation::kBornIn, 200, 0.8));
  ConsistencyResult result = ReasonOverFactsProbabilistic(facts);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0].object, 100u);
  // The output confidence is a calibrated marginal, not the input.
  EXPECT_GT(result.accepted[0].confidence, 0.5);
  EXPECT_LE(result.accepted[0].confidence, 1.0);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_LT(result.rejected[0].confidence, 0.5);
}

TEST(ProbabilisticConsistencyTest, UnconflictedFactsGetHighMarginals) {
  std::vector<ExtractedFact> facts;
  facts.push_back(MakeFact(1, Relation::kStudiedAt, 100, 0.9));
  facts.push_back(MakeFact(2, Relation::kStudiedAt, 100, 0.9));
  ConsistencyResult result = ReasonOverFactsProbabilistic(facts);
  ASSERT_EQ(result.accepted.size(), 2u);
  for (const auto& f : result.accepted) {
    EXPECT_GT(f.confidence, 0.8);
  }
}

TEST(ProbabilisticConsistencyTest, AgreesWithMaxSatOnCleanInput) {
  // Both engines should accept the same statements on an input whose
  // conflicts have clear majorities.
  std::vector<ExtractedFact> facts;
  for (uint32_t subject = 1; subject <= 10; ++subject) {
    for (int rep = 0; rep < 3; ++rep) {
      facts.push_back(
          MakeFact(subject, Relation::kBornIn, 100 + subject, 0.85));
    }
    facts.push_back(MakeFact(subject, Relation::kBornIn, 999, 0.6));
  }
  auto maxsat = ReasonOverFacts(facts);
  auto gibbs = ReasonOverFactsProbabilistic(facts);
  ASSERT_EQ(maxsat.accepted.size(), gibbs.accepted.size());
  auto key = [](const ExtractedFact& f) {
    return std::make_tuple(f.subject, f.object);
  };
  std::set<std::tuple<uint32_t, uint32_t>> a, b;
  for (const auto& f : maxsat.accepted) a.insert(key(f));
  for (const auto& f : gibbs.accepted) b.insert(key(f));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace reasoning
}  // namespace kb
