// Replicated-tier tests: repl protocol codecs, the consistent-hash
// ring, WAL shipping + follower catch-up, and the chaos suite —
// follower crash mid-replay with WAL-prefix recovery, torn shipped
// frames through a faulty TCP proxy, router failover with zero
// dropped in-flight queries, and read-your-writes under replica lag.
// Meant to also run under ASan (the `replication-chaos` CI job).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/kb_snapshot.h"
#include "core/knowledge_base.h"
#include "rdf/namespaces.h"
#include "replication/follower.h"
#include "replication/hash_ring.h"
#include "replication/repl_log.h"
#include "replication/repl_protocol.h"
#include "replication/router.h"
#include "replication/wal_shipper.h"
#include "server/kb_client.h"
#include "server/kb_server.h"
#include "storage/fault_injection_env.h"
#include "storage/wal.h"

namespace kb {
namespace replication {
namespace {

using server::KbClient;
using server::KbServer;
using server::WireFact;

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_repl_" + name))
          .string();
  std::filesystem::remove_all(path);
  return path;
}

/// Deterministic base KB — leader and followers build the same one,
/// replication ships only the delta.
core::KnowledgeBase MakeBaseKb() {
  core::KnowledgeBase kb;
  kb.AssertSubclass("company", "organization");
  kb.AssertType("Acme_Corp", "company");
  core::FactMeta meta;
  meta.confidence = 0.9;
  kb.AssertType("Ada_Smith", "person");
  kb.AssertFact("Ada_Smith", "worksFor", "Acme_Corp", meta);
  return kb;
}

std::string WorksForQuery(const std::string& company) {
  return "SELECT ?p WHERE { ?p <" + rdf::PropertyIri("worksFor") + "> <" +
         rdf::EntityIri(company) + "> . }";
}

WireFact MakeFact(int i) {
  WireFact fact;
  fact.s = "Person_" + std::to_string(i);
  fact.p = "worksFor";
  fact.o = "Globex";
  fact.confidence = 0.8;
  return fact;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Leader harness: KB + serving endpoint (with the replication
/// pre-insert hook) + log + shipper.
struct Leader {
  explicit Leader(const std::string& dir, double poll_interval_ms = 5) {
    kb = MakeBaseKb();
    ReplicationLog::Options log_options;
    log_options.num_shards = 2;
    auto opened = ReplicationLog::Open(log_options, dir);
    EXPECT_TRUE(opened.ok()) << opened.status();
    log = std::move(*opened);

    KbServer::Options server_options;
    // Router workers cache one connection each + the health checker
    // holds one: the pool must exceed that or new connections starve.
    server_options.num_workers = 8;
    server_options.pre_insert_hook =
        [this](const std::vector<WireFact>& batch) {
          return log->Append(batch);
        };
    server = std::make_unique<KbServer>(&kb, server_options);
    Status status = server->Start();
    EXPECT_TRUE(status.ok()) << status;

    WalShipper::Options ship_options;
    ship_options.poll_interval_ms = poll_interval_ms;
    shipper = std::make_unique<WalShipper>(
        log.get(), [this] { return kb.epoch(); }, ship_options);
    status = shipper->Start();
    EXPECT_TRUE(status.ok()) << status;
  }
  ~Leader() {
    shipper->Stop();
    server->Stop();
  }

  int64_t Insert(int begin, int end) {
    KbClient client;
    EXPECT_TRUE(client.Connect(server->port()).ok());
    std::vector<WireFact> facts;
    for (int i = begin; i < end; ++i) facts.push_back(MakeFact(i));
    auto inserted = client.InsertFacts(facts);
    EXPECT_TRUE(inserted.ok()) << inserted.status();
    return inserted.ok() ? *inserted : -1;
  }

  core::KnowledgeBase kb;
  std::unique_ptr<ReplicationLog> log;
  std::unique_ptr<KbServer> server;
  std::unique_ptr<WalShipper> shipper;
};

/// Follower harness: base KB + read-only serving endpoint wired to the
/// replica's applied epoch.
struct Follower {
  Follower(int leader_repl_port, const std::string& dir,
           storage::Env* env = nullptr, int port = 0,
           bool start_replication = true,
           const std::string& snapshot_path = std::string()) {
    if (!snapshot_path.empty()) {
      // Instant-start bootstrap: map the leader's shipped snapshot
      // instead of re-deriving the base KB. Term ids line up with the
      // leader's, so WAL application proceeds unchanged.
      auto snap = core::OpenKbSnapshot(env, snapshot_path);
      EXPECT_TRUE(snap.ok()) << snap.status();
      kb = std::move(*core::KnowledgeBase::FromSnapshot(std::move(*snap)));
    } else {
      kb = MakeBaseKb();
    }
    KbServer::Options server_options;
    server_options.port = port;
    server_options.num_workers = 8;  // router workers + health + direct
    server_options.read_only = true;
    server_options.applied_epoch_fn = [this]() -> uint64_t {
      return replica != nullptr ? replica->applied_epoch() : 0;
    };
    server = std::make_unique<KbServer>(&kb, server_options);

    FollowerReplica::Options replica_options;
    replica_options.leader_repl_port = leader_repl_port;
    replica_options.data_dir = dir;
    replica_options.num_shards = 2;
    replica_options.reconnect_backoff_ms = 10;
    replica_options.env = env;
    auto opened = FollowerReplica::Open(replica_options, &kb, server.get());
    EXPECT_TRUE(opened.ok()) << opened.status();
    replica = std::move(*opened);

    Status status = server->Start();
    EXPECT_TRUE(status.ok()) << status;
    if (start_replication) {
      status = replica->Start();
      EXPECT_TRUE(status.ok()) << status;
    }
  }
  ~Follower() { StopAll(); }

  void StopAll() {
    if (replica != nullptr) replica->Stop();
    if (server != nullptr) server->Stop();
  }

  core::KnowledgeBase kb;
  std::unique_ptr<KbServer> server;
  std::unique_ptr<FollowerReplica> replica;
};

size_t CountRows(KbClient* client, const std::string& sparql) {
  auto result = client->Query(sparql, /*deadline_ms=*/-1, /*max_rows=*/-1,
                              /*no_cache=*/true);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result->rows.size() : 0;
}

// ----------------------------------------------------------- protocol

TEST(ReplProtocolTest, HandshakeRoundTrip) {
  Handshake in;
  in.applied_epoch = 42;
  in.positions = {{0, 3, 128}, {1, 7, 0}};
  Handshake out;
  ASSERT_TRUE(DecodeHandshake(Slice(EncodeHandshake(in)), &out).ok());
  EXPECT_EQ(out.applied_epoch, 42u);
  ASSERT_EQ(out.positions.size(), 2u);
  EXPECT_EQ(out.positions[0].gen, 3u);
  EXPECT_EQ(out.positions[0].offset, 128u);
  EXPECT_EQ(out.positions[1].shard, 1u);
}

TEST(ReplProtocolTest, DataRoundRoundTrip) {
  DataRound in;
  in.epoch = 9;
  in.complete = true;
  WalChunk chunk;
  chunk.shard = 1;
  chunk.gen = 4;
  chunk.offset = 77;
  chunk.data = std::string("raw\0wal\xff bytes", 13);
  in.chunks.push_back(chunk);
  DataRound out;
  ASSERT_TRUE(DecodeDataRound(Slice(EncodeDataRound(in)), &out).ok());
  EXPECT_EQ(out.epoch, 9u);
  EXPECT_TRUE(out.complete);
  ASSERT_EQ(out.chunks.size(), 1u);
  EXPECT_EQ(out.chunks[0].offset, 77u);
  EXPECT_EQ(out.chunks[0].data, chunk.data);
}

TEST(ReplProtocolTest, DecodersRejectTruncatedPayloads) {
  std::string frame = EncodeDataRound(DataRound{5, true, {}});
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    DataRound out;
    // Any strict prefix must fail cleanly, never crash or mis-decode.
    Status s = DecodeDataRound(Slice(frame.data(), cut), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes decoded";
  }
  Manifest manifest;
  EXPECT_FALSE(DecodeManifest(Slice(frame), &manifest).ok());  // wrong tag
}

TEST(ReplProtocolTest, FactRecordRoundTrip) {
  WireFact in;
  in.s = "Ada";
  in.p = "worksFor";
  in.o = "Acme";
  in.confidence = 0.625;
  in.support = 3;
  WireFact out;
  ASSERT_TRUE(DecodeFactRecord(Slice(EncodeFactRecord(in)), &out).ok());
  EXPECT_EQ(out.s, "Ada");
  EXPECT_EQ(out.o, "Acme");
  EXPECT_EQ(out.confidence, 0.625);
  EXPECT_EQ(out.support, 3u);

  WireFact year;
  year.s = "Acme";
  year.p = "foundedIn";
  year.has_year = true;
  year.year = -44;  // negative years survive the fixed32 cast
  ASSERT_TRUE(DecodeFactRecord(Slice(EncodeFactRecord(year)), &out).ok());
  EXPECT_TRUE(out.has_year);
  EXPECT_EQ(out.year, -44);
}

TEST(ReplProtocolTest, FactKeysSortInSequenceOrder) {
  uint64_t seq = 0;
  EXPECT_LT(FactKey(9), FactKey(10));  // fixed width beats "9" > "10"
  EXPECT_LT(FactKey(999), FactKey(1000));
  ASSERT_TRUE(ParseFactKey(Slice(FactKey(123456789)), &seq));
  EXPECT_EQ(seq, 123456789u);
  EXPECT_FALSE(ParseFactKey(Slice("!repl.epoch"), &seq));
  EXPECT_FALSE(ParseFactKey(Slice("f:123"), &seq));  // wrong width
}

// ----------------------------------------------------------- hash ring

TEST(HashRingTest, AffinityIsStableUnderDeparture) {
  HashRing ring(64);
  ring.Add("a");
  ring.Add("b");
  ring.Add("c");
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.push_back("key" + std::to_string(i));
  std::vector<std::string> before;
  for (const std::string& key : keys) before.push_back(ring.NodeFor(key));
  ring.Remove("b");
  int moved = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string after = ring.NodeFor(keys[i]);
    EXPECT_NE(after, "b");
    if (before[i] != "b" && after != before[i]) ++moved;
  }
  // Only b's arc may move; keys owned by a or c keep their owner.
  EXPECT_EQ(moved, 0);
}

TEST(HashRingTest, OrderForYieldsDistinctFailoverTargets) {
  HashRing ring(32);
  ring.Add("a");
  ring.Add("b");
  ring.Add("c");
  std::vector<std::string> order = ring.OrderFor("some-query", 3);
  ASSERT_EQ(order.size(), 3u);
  std::set<std::string> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(order[0], ring.NodeFor("some-query"));
}

// ------------------------------------------------------------- log

TEST(ReplicationLogTest, SequenceResumesAcrossReopen) {
  std::string dir = TempDir("log_resume");
  ReplicationLog::Options options;
  options.num_shards = 2;
  {
    auto log = ReplicationLog::Open(options, dir);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_EQ((*log)->next_seq(), 0u);
    std::vector<WireFact> batch = {MakeFact(0), MakeFact(1), MakeFact(2)};
    ASSERT_TRUE((*log)->Append(batch).ok());
    EXPECT_EQ((*log)->next_seq(), 3u);
  }
  auto log = ReplicationLog::Open(options, dir);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ((*log)->next_seq(), 3u);  // no seq reuse after restart
}

// -------------------------------------------- shipping and catch-up

TEST(ReplicationTest, FollowerCatchesUpAndServesReads) {
  Leader leader(TempDir("catchup_leader"));
  Follower follower(leader.shipper->port(), TempDir("catchup_follower"));

  leader.Insert(0, 50);
  const uint64_t leader_epoch = leader.kb.epoch();
  ASSERT_TRUE(WaitFor(
      [&] { return follower.replica->applied_epoch() >= leader_epoch; },
      5000))
      << "follower stuck at epoch " << follower.replica->applied_epoch()
      << " < " << leader_epoch;

  KbClient client;
  ASSERT_TRUE(client.Connect(follower.server->port()).ok());
  EXPECT_EQ(CountRows(&client, WorksForQuery("Globex")), 50u);

  // Writes to a follower bounce with not_leader -> Unavailable.
  auto rejected = client.InsertFacts({MakeFact(999)});
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status();

  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->GetString("role"), "follower");
  EXPECT_GE(static_cast<uint64_t>(health->GetNumber("applied_epoch")),
            leader_epoch);
}

TEST(ReplicationTest, FollowerBootstrapsFromShippedSnapshot) {
  // Ship the leader's base KB as a FrameStore snapshot; the follower
  // maps it instead of re-harvesting, then catches up from the WAL
  // tail. Term ids come straight from the snapshot, so the shipped
  // facts land on the same ids as on the leader.
  Leader leader(TempDir("snap_leader"));
  std::string snap_dir = TempDir("snap_artifact");
  ASSERT_TRUE(storage::Env::Default()->CreateDirIfMissing(snap_dir).ok());
  std::string snap_path = snap_dir + "/base.kbsnap";
  ASSERT_TRUE(core::WriteKbSnapshot(nullptr, snap_path, leader.kb).ok());

  leader.Insert(0, 60);
  Follower follower(leader.shipper->port(), TempDir("snap_follower"),
                    /*env=*/nullptr, /*port=*/0, /*start_replication=*/true,
                    snap_path);
  ASSERT_NE(follower.kb.store().base(), nullptr) << "not snapshot-backed";
  const uint64_t leader_epoch = leader.kb.epoch();
  ASSERT_TRUE(WaitFor(
      [&] { return follower.replica->applied_epoch() >= leader_epoch; },
      5000))
      << "follower stuck at epoch " << follower.replica->applied_epoch();

  KbClient client;
  ASSERT_TRUE(client.Connect(follower.server->port()).ok());
  EXPECT_EQ(CountRows(&client, WorksForQuery("Globex")), 60u);
  EXPECT_EQ(CountRows(&client, WorksForQuery("Acme_Corp")), 1u);

  // Byte-for-byte convergence with the leader, snapshot base included.
  std::set<std::string> leader_lines, follower_lines;
  {
    std::istringstream in(leader.kb.ExportNTriples());
    std::string line;
    while (std::getline(in, line)) leader_lines.insert(line);
  }
  {
    std::istringstream in(follower.kb.ExportNTriples());
    std::string line;
    while (std::getline(in, line)) follower_lines.insert(line);
  }
  EXPECT_EQ(follower_lines, leader_lines);
}

TEST(ReplicationTest, LateJoinerBootstrapsFromRetainedGenerations) {
  Leader leader(TempDir("late_leader"));
  // Everything is written (and some WAL generations flushed + closed)
  // before the follower first connects: bootstrap must come entirely
  // from retained generations, no snapshot.
  leader.Insert(0, 120);
  ASSERT_TRUE(leader.log->store()->Flush().ok());
  leader.Insert(120, 150);
  const uint64_t leader_epoch = leader.kb.epoch();

  Follower follower(leader.shipper->port(), TempDir("late_follower"));
  ASSERT_TRUE(WaitFor(
      [&] { return follower.replica->applied_epoch() >= leader_epoch; },
      5000));
  KbClient client;
  ASSERT_TRUE(client.Connect(follower.server->port()).ok());
  EXPECT_EQ(CountRows(&client, WorksForQuery("Globex")), 150u);
}

TEST(ReplicationTest, FollowerRestartResumesFromPersistedPositions) {
  Leader leader(TempDir("resume_leader"));
  std::string follower_dir = TempDir("resume_follower");
  leader.Insert(0, 40);
  {
    Follower follower(leader.shipper->port(), follower_dir);
    uint64_t epoch = leader.kb.epoch();
    ASSERT_TRUE(WaitFor(
        [&] { return follower.replica->applied_epoch() >= epoch; }, 5000));
  }  // clean shutdown
  leader.Insert(40, 70);
  Follower follower(leader.shipper->port(), follower_dir);
  uint64_t epoch = leader.kb.epoch();
  ASSERT_TRUE(WaitFor(
      [&] { return follower.replica->applied_epoch() >= epoch; }, 5000));
  KbClient client;
  ASSERT_TRUE(client.Connect(follower.server->port()).ok());
  EXPECT_EQ(CountRows(&client, WorksForQuery("Globex")), 70u);
}

// --------------------------------------------------- chaos: crashes

TEST(ReplicationChaosTest, FollowerCrashMidReplayRecoversAndCatchesUp) {
  Leader leader(TempDir("crash_leader"));
  std::string follower_dir = TempDir("crash_follower");
  leader.Insert(0, 200);

  storage::FaultInjectionEnv env(storage::Env::Default());
  {
    Follower follower(leader.shipper->port(), follower_dir, &env);
    // Arm the crash point once replay is moving: some store write a
    // few ops from now fails and every later one errors too, exactly
    // like the process dying mid-replay.
    ASSERT_TRUE(WaitFor(
        [&] { return follower.replica->applied_records() > 10; }, 5000));
    storage::FaultInjectionEnv::Options fault;
    fault.fail_at_op = 5;
    env.Reset(fault);
    WaitFor([&] { return env.crashed(); }, 5000);
    EXPECT_TRUE(env.crashed());
    follower.StopAll();
  }
  // "Reboot": unsynced bytes are gone, the env works again, and the
  // replica recovers from whatever WAL prefix survived.
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  env.Reset(storage::FaultInjectionEnv::Options());

  Follower follower(leader.shipper->port(), follower_dir, &env);
  const uint64_t leader_epoch = leader.kb.epoch();
  ASSERT_TRUE(WaitFor(
      [&] { return follower.replica->applied_epoch() >= leader_epoch; },
      10000))
      << "recovered follower stuck at "
      << follower.replica->applied_epoch();
  KbClient client;
  ASSERT_TRUE(client.Connect(follower.server->port()).ok());
  // Idempotent re-apply: exactly the leader's rows, no duplicates.
  EXPECT_EQ(CountRows(&client, WorksForQuery("Globex")), 200u);
}

// ------------------------------------------- chaos: torn shipped frames

/// A deliberately faulty TCP proxy: the first `faulty_connections`
/// sessions are cut after forwarding `cut_after_bytes` of leader ->
/// follower traffic (tearing a frame mid-flight); later sessions pass
/// through cleanly.
class FaultyProxy {
 public:
  FaultyProxy(int target_port, int faulty_connections,
              size_t cut_after_bytes)
      : target_port_(target_port),
        faulty_left_(faulty_connections),
        cut_after_bytes_(cut_after_bytes) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Run(); });
  }
  ~FaultyProxy() {
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return port_; }
  int sessions() const { return sessions_.load(); }

 private:
  void Run() {
    while (!stopping_.load()) {
      int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) return;
      sessions_.fetch_add(1);
      int upstream = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<uint16_t>(target_port_));
      if (::connect(upstream, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) < 0) {
        ::close(client);
        ::close(upstream);
        continue;
      }
      bool faulty = faulty_left_.fetch_sub(1) > 0;
      Pump(client, upstream, faulty);
      ::close(client);
      ::close(upstream);
    }
  }

  /// Forwards both directions until EOF/stop; in faulty mode, hard-
  /// closes after cut_after_bytes of upstream->client (leader ->
  /// follower) traffic — mid-frame, from the follower's perspective.
  void Pump(int client, int upstream, bool faulty) {
    size_t shipped = 0;
    char buf[4096];
    while (!stopping_.load()) {
      pollfd fds[2] = {{client, POLLIN, 0}, {upstream, POLLIN, 0}};
      if (::poll(fds, 2, 100) < 0) return;
      for (int i = 0; i < 2; ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
        int from = fds[i].fd;
        int to = from == client ? upstream : client;
        ssize_t n = ::read(from, buf, sizeof(buf));
        if (n <= 0) return;  // EOF either side ends the session
        size_t limit = static_cast<size_t>(n);
        if (faulty && from == upstream) {
          if (shipped + limit > cut_after_bytes_) {
            // Forward the torn prefix, then kill the session.
            limit = cut_after_bytes_ > shipped ? cut_after_bytes_ - shipped
                                               : 0;
            if (limit > 0) {
              [[maybe_unused]] ssize_t w = ::write(to, buf, limit);
            }
            return;
          }
          shipped += limit;
        }
        ssize_t w = ::write(to, buf, limit);
        if (w < static_cast<ssize_t>(limit)) return;
      }
    }
  }

  int target_port_;
  std::atomic<int> faulty_left_;
  size_t cut_after_bytes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> sessions_{0};
  std::thread thread_;
};

TEST(ReplicationChaosTest, TornShippedFramesForceCleanResync) {
  Leader leader(TempDir("torn_leader"));
  leader.Insert(0, 150);
  // The first three sessions die mid-frame at different offsets worth
  // of shipped bytes; the follower must discard the torn tail,
  // reconnect, and converge with no duplicates or gaps.
  FaultyProxy proxy(leader.shipper->port(), /*faulty_connections=*/3,
                    /*cut_after_bytes=*/700);
  Follower follower(proxy.port(), TempDir("torn_follower"));
  const uint64_t leader_epoch = leader.kb.epoch();
  ASSERT_TRUE(WaitFor(
      [&] { return follower.replica->applied_epoch() >= leader_epoch; },
      10000))
      << "follower stuck at " << follower.replica->applied_epoch()
      << " after " << proxy.sessions() << " proxy sessions";
  EXPECT_GE(proxy.sessions(), 4);  // the faulty ones + the good one
  KbClient client;
  ASSERT_TRUE(client.Connect(follower.server->port()).ok());
  EXPECT_EQ(CountRows(&client, WorksForQuery("Globex")), 150u);
}

// ----------------------------------------------- chaos: router failover

TEST(ReplicationChaosTest, RouterFailoverDropsNoInFlightQueries) {
  Leader leader(TempDir("router_leader"));
  leader.Insert(0, 30);
  const uint64_t epoch0 = leader.kb.epoch();

  Follower f1(leader.shipper->port(), TempDir("router_f1"));
  Follower f2(leader.shipper->port(), TempDir("router_f2"));
  ASSERT_TRUE(WaitFor(
      [&] {
        return f1.replica->applied_epoch() >= epoch0 &&
               f2.replica->applied_epoch() >= epoch0;
      },
      5000));

  Router::Options router_options;
  router_options.leader_port = leader.server->port();
  router_options.replica_ports = {f1.server->port(), f2.server->port()};
  router_options.health_interval_ms = 10;
  router_options.probe_interval_ms = 20;
  router_options.fail_threshold = 2;
  // Generous: under a parallel ctest run this machine is saturated and
  // a tight timeout makes the health checker eject healthy backends.
  router_options.backend_timeout_ms = 3000;
  router_options.failover.max_attempts = 6;
  router_options.failover.base_backoff_ms = 5;
  router_options.failover.max_backoff_ms = 40;
  Router router(router_options);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.healthy_replicas().size() == 2; },
                      2000));

  // Four client threads hammer reads through the router while one
  // replica is killed and later restarted. Every single query must
  // succeed with the full answer: errors would mean failover dropped
  // an in-flight query, short answers would mean the router readmitted
  // the restarted (still backfilling) replica before it caught up.
  std::atomic<int> errors{0};
  std::atomic<int> stale{0};
  std::atomic<int> successes{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      KbClient client;
      if (!client.Connect(router.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      int i = 0;
      while (!done.load()) {
        auto result = client.Query(WorksForQuery("Globex"),
                                   /*deadline_ms=*/-1, /*max_rows=*/-1,
                                   /*no_cache=*/(i++ % 2 == t % 2));
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (result->rows.size() != 30u) {
          stale.fetch_add(1);
        } else {
          successes.fetch_add(1);
        }
        if (!result.ok() && !client.connected()) {
          if (!client.Connect(router.port()).ok()) break;
        }
      }
    });
  }

  // EXPECT (never ASSERT) from here down: an early return with the
  // client threads still joinable would terminate the process.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int f1_port = f1.server->port();
  f1.StopAll();  // kill one replica mid-stream
  EXPECT_TRUE(WaitFor([&] { return router.healthy_replicas().size() == 1; },
                      5000));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Restart the replica's serving endpoint on the same port; the
  // router's probe should readmit it.
  Follower f1b(leader.shipper->port(), TempDir("router_f1b"), nullptr,
               f1_port);
  EXPECT_TRUE(WaitFor(
      [&] { return f1b.replica->applied_epoch() >= epoch0; }, 10000));
  EXPECT_TRUE(WaitFor([&] { return router.healthy_replicas().size() == 2; },
                      10000));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  done.store(true);
  for (std::thread& thread : clients) thread.join();
  const int total = errors.load() + stale.load() + successes.load();
  EXPECT_EQ(errors.load(), 0)
      << "dropped " << errors.load() << " of " << total
      << " in-flight queries";
  EXPECT_EQ(stale.load(), 0)
      << stale.load() << " of " << total
      << " reads served by the backfilling replica";
  EXPECT_GT(successes.load(), 100);
  router.Stop();
}

// --------------------------------------- chaos: read-your-writes on lag

TEST(ReplicationChaosTest, ReadYourWritesHoldsUnderReplicaLag) {
  Leader leader(TempDir("ryw_leader"));
  // This follower never starts its replication session: it is frozen
  // at applied epoch 0, maximally stale.
  Follower lagging(leader.shipper->port(), TempDir("ryw_follower"), nullptr,
                   /*port=*/0, /*start_replication=*/false);

  Router::Options router_options;
  router_options.leader_port = leader.server->port();
  router_options.replica_ports = {lagging.server->port()};
  router_options.health_interval_ms = 10;
  router_options.failover.max_attempts = 4;
  Router router(router_options);
  ASSERT_TRUE(router.Start().ok());

  server::ClientOptions client_options;
  client_options.read_your_writes = true;
  KbClient client(client_options);
  ASSERT_TRUE(client.Connect(router.port()).ok());
  ASSERT_TRUE(client.InsertFacts({MakeFact(7000)}).ok());
  EXPECT_GT(client.last_write_epoch(), 0u);

  // Without the epoch guard this query could land on the frozen
  // replica and miss our own write; with it, every read sees the
  // inserted fact, every time.
  for (int i = 0; i < 10; ++i) {
    auto result = client.Query(WorksForQuery("Globex"), -1, -1,
                               /*no_cache=*/true);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.size(), 1u) << "stale read on iteration " << i;
  }

  // Directly against the lagging follower, min_epoch is answered with
  // stale_replica (surfaced as Unavailable).
  KbClient direct;
  ASSERT_TRUE(direct.Connect(lagging.server->port()).ok());
  server::Json request = server::Json::Object();
  request.Set("op", server::Json::Str("query"));
  request.Set("sparql", server::Json::Str(WorksForQuery("Globex")));
  request.Set("min_epoch",
              server::Json::Number(
                  static_cast<double>(client.last_write_epoch())));
  auto stale = direct.Call(request);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsUnavailable()) << stale.status();
  EXPECT_NE(stale.status().message().find("stale_replica"),
            std::string::npos);
  router.Stop();
}

// --------------------------------------------- property: prefix closure

TEST(ReplicationPropertyTest, AnyShippedWalPrefixIsAConsistentSnapshot) {
  std::string dir = TempDir("prefix_property");
  ReplicationLog::Options options;
  options.num_shards = 2;
  options.memtable_bytes = 4 << 10;  // force several generations
  auto opened = ReplicationLog::Open(options, dir);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<ReplicationLog> log = std::move(*opened);
  for (int i = 0; i < 300; i += 3) {
    ASSERT_TRUE(
        log->Append({MakeFact(i), MakeFact(i + 1), MakeFact(i + 2)}).ok());
  }
  ASSERT_TRUE(log->store()->Flush().ok());

  for (int shard = 0; shard < 2; ++shard) {
    auto gens = log->store()->WalGenerations(shard);
    ASSERT_TRUE(gens.ok());
    ASSERT_GT(gens->size(), 1u) << "wanted multiple generations";

    // Full replay order of this shard: concatenate all generations.
    std::vector<uint64_t> full_order;
    std::string all_bytes;
    for (const auto& gen : *gens) {
      auto contents = storage::Env::Default()->ReadFileToString(gen.path);
      ASSERT_TRUE(contents.ok());
      all_bytes += *contents;
    }
    uint64_t consumed = 0;
    ASSERT_TRUE(storage::ParseWalChunk(
                    Slice(all_bytes), &consumed,
                    [&](storage::EntryType, const Slice& key, const Slice&) {
                      uint64_t seq = 0;
                      if (ParseFactKey(key, &seq)) full_order.push_back(seq);
                    })
                    .ok());
    ASSERT_EQ(consumed, all_bytes.size()) << "torn bytes in a closed wal";

    // Property: replaying ANY byte prefix yields exactly a prefix of
    // the full record sequence — never a reordering, never a hole.
    // (Sampled stride keeps the quadratic scan cheap.)
    for (size_t cut = 0; cut <= all_bytes.size();
         cut += 97) {  // prime stride hits records mid-field
      std::vector<uint64_t> prefix_order;
      uint64_t prefix_consumed = 0;
      ASSERT_TRUE(
          storage::ParseWalChunk(
              Slice(all_bytes.data(), cut), &prefix_consumed,
              [&](storage::EntryType, const Slice& key, const Slice&) {
                uint64_t seq = 0;
                if (ParseFactKey(key, &seq)) prefix_order.push_back(seq);
              })
              .ok());
      ASSERT_LE(prefix_order.size(), full_order.size());
      for (size_t i = 0; i < prefix_order.size(); ++i) {
        ASSERT_EQ(prefix_order[i], full_order[i])
            << "divergence at record " << i << " for byte prefix " << cut;
      }
    }
  }
}

}  // namespace
}  // namespace replication
}  // namespace kb
