// Serving-layer tests: protocol framing, endpoint semantics, the
// result cache's epoch invalidation, admission control, deadlines, and
// a malformed-input fuzz pass. The concurrency tests drive one server
// from many client threads and are meant to run under TSan/ASan (the
// `serving` CI job), where the sanitizer is the oracle.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/kb_snapshot.h"
#include "core/knowledge_base.h"
#include "server/json.h"
#include "server/kb_client.h"
#include "server/kb_server.h"
#include "server/protocol.h"
#include "util/metrics_registry.h"

namespace kb {
namespace server {
namespace {

/// A small deterministic KB: three people at two companies, typed and
/// labeled, plus founding years.
core::KnowledgeBase MakeKb() {
  core::KnowledgeBase kb;
  kb.AssertSubclass("company", "organization");
  kb.AssertSubclass("person", "agent");
  for (const char* company : {"Acme_Corp", "Globex"}) {
    kb.AssertType(company, "company");
  }
  kb.AssertLabel("Acme_Corp", "Acme Corp", "en");
  kb.AssertYearFact("Acme_Corp", "foundedIn", 1947, {});
  core::FactMeta meta;
  meta.confidence = 0.9;
  kb.AssertType("Ada_Smith", "person");
  kb.AssertFact("Ada_Smith", "worksFor", "Acme_Corp", meta);
  kb.AssertType("Ben_Jones", "person");
  kb.AssertFact("Ben_Jones", "worksFor", "Acme_Corp", meta);
  kb.AssertType("Cleo_Ray", "person");
  kb.AssertFact("Cleo_Ray", "worksFor", "Globex", meta);
  return kb;
}

std::string WorksForQuery(const std::string& company) {
  return "SELECT ?p WHERE { ?p <" + rdf::PropertyIri("worksFor") + "> <" +
         rdf::EntityIri(company) + "> . }";
}

/// Server + KB bundle with ephemeral port.
struct TestServer {
  explicit TestServer(KbServer::Options options = {})
      : kb(MakeKb()), server(&kb, options) {
    Status status = server.Start();
    EXPECT_TRUE(status.ok()) << status;
  }
  ~TestServer() { server.Stop(); }

  KbClient Connect() {
    KbClient client;
    Status status = client.Connect(server.port());
    EXPECT_TRUE(status.ok()) << status;
    return client;
  }

  core::KnowledgeBase kb;
  KbServer server;
};

/// Raw connected socket for speaking deliberately broken protocol.
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// ------------------------------------------------------------ endpoints

TEST(KbServerTest, HealthReportsKbShape) {
  TestServer ts;
  KbClient client = ts.Connect();
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->GetBool("healthy"));
  EXPECT_EQ(health->GetNumber("triples"), ts.kb.NumTriples());
  EXPECT_GT(health->GetNumber("epoch"), 0);
}

TEST(KbServerTest, QueryReturnsBoundRows) {
  TestServer ts;
  KbClient client = ts.Connect();
  auto result = client.Query(WorksForQuery("Acme_Corp"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->cached);
  ASSERT_EQ(result->columns, std::vector<std::string>{"p"});
  ASSERT_EQ(result->rows.size(), 2u);
  std::vector<std::string> people;
  for (const auto& row : result->rows) people.push_back(row[0]);
  EXPECT_NE(std::find(people.begin(), people.end(), "kb:Ada_Smith"),
            people.end());
  EXPECT_NE(std::find(people.begin(), people.end(), "kb:Ben_Jones"),
            people.end());
}

TEST(KbServerTest, RepeatedQueryHitsCacheWithIdenticalRows) {
  TestServer ts;
  KbClient client = ts.Connect();
  auto cold = client.Query(WorksForQuery("Acme_Corp"));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cached);
  auto warm = client.Query(WorksForQuery("Acme_Corp"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cached);
  // The spliced cached envelope must decode to the same result.
  EXPECT_EQ(warm->columns, cold->columns);
  EXPECT_EQ(warm->rows, cold->rows);
}

TEST(KbServerTest, NoCacheFlagBypassesCache) {
  TestServer ts;
  KbClient client = ts.Connect();
  ASSERT_TRUE(client.Query(WorksForQuery("Acme_Corp")).ok());
  auto again = client.Query(WorksForQuery("Acme_Corp"), -1, -1,
                            /*no_cache=*/true);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cached);
}

TEST(KbServerTest, EntityCardRendersFacts) {
  TestServer ts;
  KbClient client = ts.Connect();
  auto card = client.EntityCard("Acme_Corp");
  ASSERT_TRUE(card.ok()) << card.status();
  EXPECT_EQ(card->GetString("canonical"), "Acme_Corp");
  EXPECT_EQ(card->GetString("display_name"), "Acme Corp");
  EXPECT_FALSE((*card)["facts"].items().empty());
  auto missing = client.EntityCard("Nobody_Here");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(KbServerTest, MetricsEndpointExposesRegistrySnapshot) {
  TestServer ts;
  KbClient client = ts.Connect();
  ASSERT_TRUE(client.Health().ok());
  auto text = client.MetricsText();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("server.requests"), std::string::npos);
}

// ------------------------------------------- write path + invalidation

TEST(KbServerTest, ReadAfterWriteSeesNewFactDespiteCache) {
  TestServer ts;
  KbClient client = ts.Connect();
  // Warm the cache with the pre-write result.
  auto cold = client.Query(WorksForQuery("Globex"));
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->rows.size(), 1u);
  ASSERT_TRUE(client.Query(WorksForQuery("Globex"))->cached);

  WireFact fact;
  fact.s = "Dee_Flynn";
  fact.p = "worksFor";
  fact.o = "Globex";
  auto inserted = client.InsertFacts({fact});
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_EQ(*inserted, 1);

  // The write bumped the epoch, so the cached pre-write entry must not
  // be served: the very next read sees the new fact.
  auto fresh = client.Query(WorksForQuery("Globex"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cached);
  ASSERT_EQ(fresh->rows.size(), 2u);
  std::vector<std::string> people;
  for (const auto& row : fresh->rows) people.push_back(row[0]);
  EXPECT_NE(std::find(people.begin(), people.end(), "kb:Dee_Flynn"),
            people.end());
  // And the post-write result is cacheable under the new epoch.
  EXPECT_TRUE(client.Query(WorksForQuery("Globex"))->cached);
}

TEST(KbServerTest, InsertFactsSkipsMalformedEntries) {
  TestServer ts;
  KbClient client = ts.Connect();
  Json request = Json::Object();
  request.Set("op", Json::Str("insert_facts"));
  Json facts = Json::Array();
  Json good = Json::Object();
  good.Set("s", Json::Str("Eve_Gray"));
  good.Set("p", Json::Str("worksFor"));
  good.Set("o", Json::Str("Acme_Corp"));
  facts.Append(std::move(good));
  Json bad = Json::Object();
  bad.Set("s", Json::Str("NoPredicate"));
  facts.Append(std::move(bad));
  facts.Append(Json::Str("not even an object"));
  request.Set("facts", std::move(facts));
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->GetNumber("inserted"), 1);
  EXPECT_EQ(response->GetNumber("skipped"), 2);
}

// --------------------------------------------------- deadlines + caps

TEST(KbServerTest, ExpiredDeadlineReturnsPartialFreeError) {
  TestServer ts;
  KbClient client = ts.Connect();
  // deadline_ms = 0 expires before the first row is pulled, so this is
  // deterministic however fast the query is.
  auto result = client.Query(WorksForQuery("Acme_Corp"), /*deadline_ms=*/0);
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  // The error is partial-free: a retry without deadline sees full rows.
  auto retry = client.Query(WorksForQuery("Acme_Corp"));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->rows.size(), 2u);
}

TEST(KbServerTest, DeadlineErrorIsNeverCached) {
  TestServer ts;
  KbClient client = ts.Connect();
  ASSERT_TRUE(client.Query(WorksForQuery("Acme_Corp"), 0).status()
                  .IsDeadlineExceeded());
  auto after = client.Query(WorksForQuery("Acme_Corp"));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cached);  // the failed attempt cached nothing
  EXPECT_EQ(after->rows.size(), 2u);
}

TEST(KbServerTest, MaxRowsTruncatesWithoutPoisoningCache) {
  TestServer ts;
  KbClient client = ts.Connect();
  auto capped = client.Query(WorksForQuery("Acme_Corp"), -1, /*max_rows=*/1);
  ASSERT_TRUE(capped.ok()) << capped.status();
  EXPECT_TRUE(capped->truncated);
  EXPECT_EQ(capped->rows.size(), 1u);
  // A different row cap is a different cache key, and truncated
  // results are never cached, so the full query still sees all rows.
  auto full = client.Query(WorksForQuery("Acme_Corp"));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_EQ(full->rows.size(), 2u);
}

// ---------------------------------------------------- admission control

TEST(KbServerTest, QueueFullConnectionsAreShedWithRetryHint) {
  KbServer::Options options;
  options.num_workers = 1;
  options.queue_depth = 1;
  options.retry_after_ms = 7;
  TestServer ts(options);

  // Occupy the single worker: one full round-trip guarantees the
  // worker has dequeued this connection and is parked reading it.
  KbClient busy = ts.Connect();
  ASSERT_TRUE(busy.Health().ok());
  // Fill the queue with an admitted-but-unserved connection.
  KbClient queued;
  ASSERT_TRUE(queued.Connect(ts.server.port()).ok());
  // Give the acceptor a moment to enqueue it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Now the queue is full: further connections must be rejected
  // promptly with the overload envelope, not left hanging.
  uint64_t rejected_before =
      MetricsRegistry::Default().Snapshot().counter("server.rejected");
  KbClient shed;
  ASSERT_TRUE(shed.Connect(ts.server.port()).ok());
  auto result = shed.Health();
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status();
  EXPECT_EQ(shed.retry_after_ms(), 7);
  EXPECT_FALSE(shed.connected());  // shed connections are closed
  EXPECT_GT(MetricsRegistry::Default().Snapshot().counter("server.rejected"),
            rejected_before);

  // The admitted clients still work once the worker frees up.
  EXPECT_TRUE(busy.Health().ok());
}

// -------------------------------------------------------- malformed input

TEST(KbServerFuzzTest, OversizedLengthPrefixIsRejectedNotTrusted) {
  TestServer ts;
  int fd = RawConnect(ts.server.port());
  // Claim a 4 GiB frame; the server must refuse to allocate it.
  unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fd, header, 4, 0), 4);
  std::string response;
  Status status = ReadFrame(fd, &response);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(response.find("bad_frame"), std::string::npos);
  ::close(fd);
  // Server survives.
  EXPECT_TRUE(ts.Connect().Health().ok());
}

TEST(KbServerFuzzTest, TruncatedJsonGetsErrorAndConnectionSurvives) {
  TestServer ts;
  int fd = RawConnect(ts.server.port());
  ASSERT_TRUE(WriteFrame(fd, "{\"op\":\"health\",").ok());
  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("bad_request"), std::string::npos);
  // Framing was intact, so the connection stays usable.
  ASSERT_TRUE(WriteFrame(fd, "{\"op\":\"health\"}").ok());
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("\"healthy\":true"), std::string::npos);
  ::close(fd);
}

TEST(KbServerFuzzTest, UnknownEndpointIsAnErrorNotACrash) {
  TestServer ts;
  int fd = RawConnect(ts.server.port());
  ASSERT_TRUE(WriteFrame(fd, "{\"op\":\"drop_all_tables\"}").ok());
  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("unknown_endpoint"), std::string::npos);
  ::close(fd);
}

TEST(KbServerFuzzTest, GarbageAndTornFramesNeverKillTheServer) {
  TestServer ts;
  const std::vector<std::string> raw_payloads = {
      std::string("\x00\x00\x00\x05nope", 9),     // frame, garbage JSON
      std::string("\x00\x00\x00\x10{\"op\":", 11),  // torn frame, then close
      std::string("\x00\x00\x00\x00", 4),          // zero-length frame
      std::string("junkjunkjunkjunk"),              // huge bogus prefix
      std::string("\x7f", 1),                      // torn header
  };
  for (const std::string& raw : raw_payloads) {
    int fd = RawConnect(ts.server.port());
    ASSERT_EQ(::send(fd, raw.data(), raw.size(), 0),
              static_cast<ssize_t>(raw.size()));
    ::close(fd);  // hang up however the server was mid-parse
  }
  // Deep JSON nesting must hit the parser's depth limit, not the stack.
  std::string deep(2000, '[');
  deep += std::string(2000, ']');
  int fd = RawConnect(ts.server.port());
  ASSERT_TRUE(WriteFrame(fd, deep).ok());
  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("bad_request"), std::string::npos);
  ::close(fd);
  EXPECT_TRUE(ts.Connect().Health().ok());
}

// ------------------------------------------------------------ concurrency

TEST(KbServerConcurrencyTest, EightClientThreadsMixedWorkload) {
  KbServer::Options options;
  options.num_workers = 8;
  options.queue_depth = 64;
  TestServer ts(options);
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 40;
  std::atomic<int> ok_count{0};
  std::atomic<int> unavailable{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KbClient client;
      if (!client.Connect(ts.server.port()).ok()) return;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        Status status;
        switch ((t + i) % 4) {
          case 0:
            status = client.Query(WorksForQuery("Acme_Corp")).status();
            break;
          case 1:
            status = client.EntityCard("Acme_Corp").status();
            break;
          case 2: {
            WireFact fact;
            fact.s = "Writer_" + std::to_string(t);
            fact.p = "worksFor";
            fact.o = (i % 2) == 0 ? "Acme_Corp" : "Globex";
            fact.support = 1;
            status = client.InsertFacts({fact}).status();
            break;
          }
          default:
            status = client.Health().status();
        }
        if (status.ok()) {
          ok_count.fetch_add(1);
        } else if (status.IsUnavailable()) {
          // Admission control may shed under this burst; back off and
          // reconnect as the protocol intends.
          unavailable.fetch_add(1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(client.retry_after_ms()));
          if (!client.Connect(ts.server.port()).ok()) return;
        } else {
          ADD_FAILURE() << "unexpected status: " << status;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(ok_count.load(), kThreads * kRequestsPerThread / 2);
  // Every writer thread's facts are queryable afterwards.
  KbClient client = ts.Connect();
  auto result = client.Query(WorksForQuery("Acme_Corp"), -1, -1,
                             /*no_cache=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rows.size(), 2u);
}

TEST(KbServerConcurrencyTest, StopWhileClientsAreConnectedIsClean) {
  auto ts = std::make_unique<TestServer>();
  std::vector<KbClient> clients(4);
  for (auto& client : clients) {
    ASSERT_TRUE(client.Connect(ts->server.port()).ok());
    ASSERT_TRUE(client.Health().ok());
  }
  // Destroys the server with workers parked mid-read on live
  // connections; Stop() must unblock and join them all.
  ts.reset();
  for (auto& client : clients) {
    EXPECT_FALSE(client.Health().ok());  // connection was shut down
  }
}


// --------------------------------------------------- client-side retry

TEST(KbClientRetryTest, RetryAbsorbsOverloadShedsHonoringHint) {
  // A raw fake server: shed the first two connections with an
  // overloaded envelope carrying a retry_after_ms hint, then serve a
  // real health response — fully deterministic overload.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);

  constexpr int kHintMs = 40;
  std::thread fake([listen_fd] {
    for (int conn = 0; conn < 3; ++conn) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      std::string payload;
      if (!ReadFrame(fd, &payload).ok()) {
        ::close(fd);
        continue;
      }
      Json response = Json::Object();
      if (conn < 2) {
        response.Set("status", Json::Str("overloaded"));
        response.Set("error", Json::Str("overloaded"));
        response.Set("retry_after_ms", Json::Number(kHintMs));
        WriteFrame(fd, response.Dump());
        ::close(fd);  // sheds drop the connection, like the real server
      } else {
        response.Set("status", Json::Str("ok"));
        response.Set("healthy", Json::Bool(true));
        WriteFrame(fd, response.Dump());
        ::close(fd);
      }
    }
  });

  ClientOptions options;
  options.retry_unavailable = true;
  options.retry.max_attempts = 4;
  options.retry.base_backoff_ms = 1;  // the hint must dominate
  KbClient client(options);
  ASSERT_TRUE(client.Connect(port).ok());
  auto start = std::chrono::steady_clock::now();
  auto health = client.Health();
  auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(health.ok()) << health.status();
  // Two sheds, each with a kHintMs hint the sleep must not undercut.
  EXPECT_GE(elapsed.count(), 2.0 * kHintMs);

  fake.join();
  ::close(listen_fd);
}

TEST(KbClientRetryTest, WithoutOptInShedsSurfaceImmediately) {
  KbServer::Options options;
  options.num_workers = 1;
  options.queue_depth = 1;
  options.retry_after_ms = 9;
  TestServer ts(options);
  KbClient busy = ts.Connect();
  ASSERT_TRUE(busy.Health().ok());
  KbClient queued;
  ASSERT_TRUE(queued.Connect(ts.server.port()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  KbClient plain;  // default options: no retry
  ASSERT_TRUE(plain.Connect(ts.server.port()).ok());
  auto result = plain.Health();
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status();
  EXPECT_EQ(plain.retry_after_ms(), 9);
}

// ------------------------------------------------------- graceful drain

TEST(KbServerDrainTest, DrainStopsAcceptingAndFinishesInFlight) {
  auto ts = std::make_unique<TestServer>();
  const int port = ts->server.port();
  KbClient client = ts->Connect();
  ASSERT_TRUE(client.Health().ok());
  client.Close();  // no connections left: drain should be instant

  auto start = std::chrono::steady_clock::now();
  ts->server.Drain(/*timeout_ms=*/2000);
  auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 1000.0) << "drain of an idle server dawdled";

  // Fully stopped: new connections are refused outright.
  KbClient late;
  EXPECT_FALSE(late.Connect(port).ok());
}

TEST(KbServerDrainTest, DrainTimeoutBoundsIdleConnections) {
  auto ts = std::make_unique<TestServer>();
  // An idle persistent connection holds no in-flight request; drain
  // waits for it only up to the timeout, then force-stops.
  KbClient idle = ts->Connect();
  ASSERT_TRUE(idle.Health().ok());
  // Let the worker re-enter its blocking read: if drain flips the flag
  // while the worker is still between response and read, it closes the
  // connection at the loop-top check and drain returns instantly.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto start = std::chrono::steady_clock::now();
  ts->server.Drain(/*timeout_ms=*/100);
  auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 90.0);
  EXPECT_LT(elapsed.count(), 2000.0);
  EXPECT_FALSE(idle.Health().ok());  // connection was shut down
}

// ------------------------------------------------ event core / pipelining

/// Wire framing for raw-socket tests: 4-byte big-endian length prefix.
std::string Framed(const std::string& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::string out;
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out += payload;
  return out;
}

TEST(KbServerPipelineTest, ByteDribbledFramesParseAcrossArbitrarySplits) {
  TestServer ts;
  int fd = RawConnect(ts.server.port());
  // Two pipelined requests delivered one byte at a time: the server's
  // incremental parser must reassemble frames across every possible
  // read boundary, including headers torn mid-length.
  std::string stream =
      Framed("{\"op\":\"health\"}") + Framed("{\"op\":\"metrics\"}");
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(::send(fd, stream.data() + i, 1, 0), 1);
    if (i % 7 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("\"healthy\":true"), std::string::npos);
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("server.requests"), std::string::npos);
  ::close(fd);
}

TEST(KbServerPipelineTest, PipelinedFramesAnswerStrictlyInOrder) {
  KbServer::Options options;
  options.num_workers = 4;  // workers race; the flush order must not
  options.queue_depth = 64;  // hold the whole burst without shedding
  TestServer ts(options);
  const auto before = MetricsRegistry::Default().Snapshot();
  int fd = RawConnect(ts.server.port());
  // Each request's op name is its schedule position, and the error
  // response echoes it back — so response order proves sequencing.
  constexpr int kFrames = 32;
  std::string stream;
  for (int i = 0; i < kFrames; ++i) {
    stream += Framed("{\"op\":\"probe_" + std::to_string(i) + "\"}");
  }
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));
  for (int i = 0; i < kFrames; ++i) {
    std::string response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok()) << "frame " << i;
    EXPECT_NE(response.find("no such op: probe_" + std::to_string(i)),
              std::string::npos)
        << "out-of-order response at " << i << ": " << response;
  }
  const auto after = MetricsRegistry::Default().Snapshot();
  EXPECT_GT(after.counter("server.pipelined_frames"),
            before.counter("server.pipelined_frames"));
  EXPECT_GT(after.counter("server.epoll_wakeups"),
            before.counter("server.epoll_wakeups"));
  EXPECT_GE(after.gauge("server.open_connections"), 1);
  ::close(fd);
}

TEST(KbServerEventCoreTest, RequestShedWhenQueueFullClosesAfterHint) {
  KbServer::Options options;
  options.queue_depth = 0;  // every request sheds at admission
  options.retry_after_ms = 7;
  TestServer ts(options);
  int fd = RawConnect(ts.server.port());
  // Pipeline three requests: the first one's shed response carries the
  // hint and closes the connection, dropping the two behind it.
  std::string stream;
  for (int i = 0; i < 3; ++i) stream += Framed("{\"op\":\"health\"}");
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));
  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_NE(response.find("\"status\":\"overloaded\""), std::string::npos);
  EXPECT_NE(response.find("\"retry_after_ms\":7"), std::string::npos);
  Status eof = ReadFrame(fd, &response);
  EXPECT_TRUE(eof.IsAborted()) << eof;  // clean close, no more frames
  ::close(fd);
}

TEST(KbServerEventCoreTest, ConnectionCapShedsExcessAccepts) {
  KbServer::Options options;
  options.max_connections = 2;
  options.retry_after_ms = 9;
  TestServer ts(options);
  KbClient a = ts.Connect();
  ASSERT_TRUE(a.Health().ok());
  KbClient b = ts.Connect();
  ASSERT_TRUE(b.Health().ok());

  KbClient c;
  ASSERT_TRUE(c.Connect(ts.server.port()).ok());  // TCP-level accept
  auto shed = c.Health();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status();
  EXPECT_EQ(c.retry_after_ms(), 9);

  // Capacity frees once an admitted connection goes away.
  a.Close();
  bool readmitted = false;
  for (int i = 0; i < 200 && !readmitted; ++i) {
    KbClient d;
    readmitted = d.Connect(ts.server.port()).ok() && d.Health().ok();
    if (!readmitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(readmitted);
}

TEST(KbServerEventCoreTest, IdleConnectionsAreReapedAndKeepAliveRecovers) {
  KbServer::Options options;
  options.idle_timeout_ms = 60;
  TestServer ts(options);
  const uint64_t reaped_before =
      MetricsRegistry::Default().Snapshot().counter("server.idle_closed");

  // Without the opt-in, the reap surfaces as a typed ConnectionClosed —
  // not IOError — so callers can tell "reconnect" from "torn read".
  KbClient bare;
  ASSERT_TRUE(bare.Connect(ts.server.port()).ok());
  ASSERT_TRUE(bare.Health().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto closed = bare.Health();
  ASSERT_FALSE(closed.ok());
  EXPECT_TRUE(closed.status().IsConnectionClosed()) << closed.status();
  EXPECT_GT(MetricsRegistry::Default().Snapshot().counter(
                "server.idle_closed"),
            reaped_before);

  // With reconnect_on_close the same sequence just works.
  ClientOptions keep_alive;
  keep_alive.reconnect_on_close = true;
  KbClient client(keep_alive);
  ASSERT_TRUE(client.Connect(ts.server.port()).ok());
  ASSERT_TRUE(client.Health().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(client.Health().ok());
}

// ------------------------------------------------------------ analytics

TEST(KbServerAnalyticsTest, PageRankAndClassStatsRunOverTheWire) {
  TestServer ts;
  KbClient client = ts.Connect();

  auto pagerank = client.Analytics("pagerank");
  ASSERT_TRUE(pagerank.ok()) << pagerank.status();
  EXPECT_FALSE(pagerank->GetBool("cached"));
  // worksFor contributes the only entity->entity edges (type/subclass/
  // label are excluded, foundedIn's literal object is filtered).
  EXPECT_EQ(pagerank->GetNumber("edges"), 3);
  EXPECT_GT(pagerank->GetNumber("nodes"), 0);
  ASSERT_GT((*pagerank)["top"].items().size(), 0u);
  // Acme has two in-links, every other node at most one.
  EXPECT_EQ((*pagerank)["top"].items()[0].GetString("entity"),
            "kb:Acme_Corp");

  auto stats = client.Analytics("class_stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->GetNumber("entities"), 5);  // 3 people + 2 companies
  // person, company, and their superclasses agent, organization.
  EXPECT_EQ(stats->GetNumber("classes"), 4);
  bool agent_rolled_up = false;
  for (const Json& entry : (*stats)["top"].items()) {
    if (entry.GetString("class") == "kbc:agent") {
      agent_rolled_up = entry.GetNumber("count") == 3;
    }
  }
  EXPECT_TRUE(agent_rolled_up);

  auto bad = client.Analytics("centrality");
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(KbServerAnalyticsTest, ResultIsCachedUntilAWriteLands) {
  TestServer ts;
  KbClient client = ts.Connect();
  ASSERT_TRUE(client.Analytics("pagerank").ok());
  auto warm = client.Analytics("pagerank");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->GetBool("cached"));
  // Different job shape: separate entry, not a collision.
  auto other_k = client.Analytics("pagerank", /*top_k=*/3);
  ASSERT_TRUE(other_k.ok());
  EXPECT_FALSE(other_k->GetBool("cached"));
  // no_cache bypasses.
  auto bypass = client.Analytics("pagerank", 0, false, /*no_cache=*/true);
  ASSERT_TRUE(bypass.ok());
  EXPECT_FALSE(bypass->GetBool("cached"));

  WireFact fact;
  fact.s = "Dee_Flynn";
  fact.p = "worksFor";
  fact.o = "Globex";
  ASSERT_TRUE(client.InsertFacts({fact}).ok());

  // Read-after-write: the insert bumped the epoch, so the pre-write
  // analytics entry must not be served — and the fresh run sees the
  // new edge.
  auto fresh = client.Analytics("pagerank");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->GetBool("cached"));
  EXPECT_EQ(fresh->GetNumber("edges"), 4);
}

TEST(KbServerAnalyticsTest, InsertBackMakesScoresQueryable) {
  TestServer ts;
  KbClient client = ts.Connect();
  uint64_t epoch_before = ts.kb.epoch();
  auto run = client.Analytics("pagerank", /*top_k=*/2, /*insert=*/true);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->GetNumber("inserted"), 2);
  EXPECT_GT(ts.kb.epoch(), epoch_before);

  // The materialized scores are ordinary facts: SPARQL finds them.
  auto rows = client.Query("SELECT ?e WHERE { ?e <" +
                           rdf::PropertyIri("pagerankScore") + "> ?s . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows.size(), 2u);

  // An inserting run mutates the KB, so it must never be served from
  // the cache even when repeated back-to-back.
  auto again = client.Analytics("pagerank", 2, true);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->GetBool("cached"));

  // read_only followers reject the mutation.
  KbServer::Options follower_options;
  follower_options.read_only = true;
  TestServer follower(follower_options);
  KbClient fclient = follower.Connect();
  auto denied = fclient.Analytics("pagerank", 2, true);
  EXPECT_TRUE(denied.status().IsUnavailable());
  EXPECT_TRUE(fclient.Analytics("pagerank").ok());
}

TEST(KbServerAnalyticsTest, AggregateQueriesFlowThroughCacheAndEpochs) {
  TestServer ts;
  KbClient client = ts.Connect();
  const std::string agg_sparql =
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <" +
      rdf::PropertyIri("worksFor") + "> ?c . } GROUP BY ?c";

  auto cold = client.Query(agg_sparql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->columns, (std::vector<std::string>{"c", "n"}));
  ASSERT_EQ(cold->rows.size(), 2u);
  std::map<std::string, std::string> counts;
  for (const auto& row : cold->rows) counts[row[0]] = row[1];
  EXPECT_EQ(counts["kb:Acme_Corp"], "2");
  EXPECT_EQ(counts["kb:Globex"], "1");
  EXPECT_TRUE(client.Query(agg_sparql)->cached);

  // Insert invalidates the cached aggregate; the next read recounts.
  WireFact fact;
  fact.s = "Dee_Flynn";
  fact.p = "worksFor";
  fact.o = "Globex";
  ASSERT_TRUE(client.InsertFacts({fact}).ok());
  auto fresh = client.Query(agg_sparql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cached);
  counts.clear();
  for (const auto& row : fresh->rows) counts[row[0]] = row[1];
  EXPECT_EQ(counts["kb:Globex"], "2");
}

TEST(KbServerAnalyticsTest, AggregateShapesGetDistinctCacheEntries) {
  // Regression: a plain query, its aggregate, and two top-k variants
  // share a WHERE clause — none may collide in the result cache.
  TestServer ts;
  KbClient client = ts.Connect();
  const std::string where =
      " WHERE { ?p <" + rdf::PropertyIri("worksFor") + "> ?c . }";
  const std::string plain = "SELECT ?c" + where;
  const std::string agg =
      "SELECT ?c (COUNT(?p) AS ?n)" + where + " GROUP BY ?c";
  const std::string top1 = agg + " ORDER BY DESC(?n) LIMIT 1";
  const std::string top2 = agg + " ORDER BY DESC(?n) LIMIT 2";

  ASSERT_TRUE(client.Query(plain).ok());
  auto agg_cold = client.Query(agg);
  ASSERT_TRUE(agg_cold.ok());
  EXPECT_FALSE(agg_cold->cached);  // plain's entry must not be served
  EXPECT_EQ(agg_cold->rows.size(), 2u);

  auto top1_cold = client.Query(top1);
  ASSERT_TRUE(top1_cold.ok());
  EXPECT_FALSE(top1_cold->cached);  // differs from the un-k'd aggregate
  ASSERT_EQ(top1_cold->rows.size(), 1u);
  EXPECT_EQ(top1_cold->rows[0][0], "kb:Acme_Corp");

  auto top2_cold = client.Query(top2);
  ASSERT_TRUE(top2_cold.ok());
  EXPECT_FALSE(top2_cold->cached);  // k is part of the key
  EXPECT_EQ(top2_cold->rows.size(), 2u);

  // Each shape is individually cached under its own key.
  EXPECT_TRUE(client.Query(plain)->cached);
  EXPECT_TRUE(client.Query(agg)->cached);
  EXPECT_TRUE(client.Query(top1)->cached);
  EXPECT_TRUE(client.Query(top2)->cached);
}

// ----------------------------------------------------------- checkpoint

TEST(KbServerCheckpointTest, CheckpointUnderConcurrentReadsIsSafe) {
  // The serve_main background checkpointer in miniature: queries and
  // inserts in flight while WithWriteLock + KbVolume::Checkpoint
  // move-assigns the KB. The shared lock held across the whole read
  // path is what makes this safe; TSan is the oracle for the rest.
  std::string dir = (std::filesystem::temp_directory_path() /
                     "kbforge_server_ckpt")
                        .string();
  std::filesystem::remove_all(dir);
  auto volume = core::KbVolume::Open(nullptr, dir);
  ASSERT_TRUE(volume.ok()) << volume.status();

  TestServer ts;
  ASSERT_TRUE((*volume)->SaveDelta(ts.kb).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&, i] {
      KbClient client = ts.Connect();
      int n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        bool no_cache = (++n + i) % 2 == 0;
        auto result =
            client.Query(WorksForQuery("Acme_Corp"), -1, -1, no_cache);
        if (!result.ok() || result->rows.size() < 2) {
          failures.fetch_add(1);
        }
      }
    });
  }

  KbClient writer = ts.Connect();
  uint64_t last_generation = 0;
  for (int round = 0; round < 3; ++round) {
    WireFact fact;
    fact.s = "Churner_" + std::to_string(round);
    fact.p = "worksFor";
    fact.o = "Acme_Corp";
    ASSERT_TRUE(writer.InsertFacts({fact}).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ts.server.WithWriteLock([&] {
      auto generation = (*volume)->Checkpoint(&ts.kb);
      ASSERT_TRUE(generation.ok()) << generation.status();
      EXPECT_GT(*generation, last_generation);
      last_generation = *generation;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The checkpointed volume reboots to the post-insert state.
  auto loaded = (*volume)->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->generation, last_generation);
  EXPECT_EQ(loaded->kb->NumTriples(), ts.kb.NumTriples());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace server
}  // namespace kb
