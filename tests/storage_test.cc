#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "storage/block.h"
#include "storage/env.h"
#include "storage/kv_store.h"
#include "storage/memtable.h"
#include "storage/sharded_kv_store.h"
#include "storage/sstable.h"
#include "storage/stored_triple_source.h"
#include "storage/triple_codec.h"
#include "storage/wal.h"
#include "util/random.h"

namespace kb {
namespace storage {
namespace {

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_" + name)).string();
  std::filesystem::remove_all(path);
  return path;
}

// ---------------------------------------------------------------- Block

TEST(BlockTest, RoundTripInOrder) {
  BlockBuilder builder(4);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    entries[key] = "value" + std::to_string(i);
  }
  for (const auto& [k, v] : entries) builder.Add(Slice(k), Slice(v));
  std::string block = builder.Finish();

  BlockIterator it((Slice(block)));
  auto expected = entries.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(it.key().ToString(), expected->first);
    EXPECT_EQ(it.value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_FALSE(it.corrupted());
}

TEST(BlockTest, SeekFindsLowerBound) {
  BlockBuilder builder(3);
  for (int i = 0; i < 50; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    builder.Add(Slice(key), Slice("v"));
  }
  std::string block = builder.Finish();
  BlockIterator it((Slice(block)));
  it.Seek(Slice("k0013"));  // absent; next is k0014
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k0014");
  it.Seek(Slice("k0048"));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k0048");
  it.Seek(Slice("k9999"));
  EXPECT_FALSE(it.Valid());
}

TEST(BlockTest, CorruptFooterDetected) {
  BlockIterator it(Slice("ab"));
  EXPECT_TRUE(it.corrupted());
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
}

TEST(BlockTest, PrefixCompressionSavesSpace) {
  BlockBuilder compressed(16);
  BlockBuilder uncompressed(1);  // restart at every key = no sharing
  for (int i = 0; i < 1000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "common/long/prefix/%06d", i);
    compressed.Add(Slice(key), Slice("v"));
    uncompressed.Add(Slice(key), Slice("v"));
  }
  EXPECT_LT(compressed.Finish().size(), uncompressed.Finish().size());
}

// ---------------------------------------------------------------- SSTable

TEST(SSTableTest, BuildAndGet) {
  TableBuilder builder;
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 5000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i * 7);
  }
  for (const auto& [k, v] : entries) builder.Add(Slice(k), Slice(v));
  auto table = TableReader::Open(builder.Finish());
  ASSERT_TRUE(table.ok());
  EXPECT_GT((*table)->num_blocks(), 1u);

  std::string value;
  ASSERT_TRUE((*table)->Get(Slice("key000123"), &value).ok());
  EXPECT_EQ(value, entries["key000123"]);
  EXPECT_TRUE((*table)->Get(Slice("key999999"), &value).IsNotFound());
  EXPECT_TRUE((*table)->Get(Slice("aaa"), &value).IsNotFound());
  EXPECT_TRUE((*table)->Get(Slice("zzz"), &value).IsNotFound());
}

TEST(SSTableTest, IteratorCoversEverything) {
  TableBuilder builder;
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    builder.Add(Slice(key), Slice(std::to_string(i)));
  }
  auto table = TableReader::Open(builder.Finish());
  ASSERT_TRUE(table.ok());
  auto it = (*table)->NewIterator();
  int count = 0;
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    EXPECT_LT(prev, it.key().ToString());
    prev = it.key().ToString();
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(SSTableTest, IteratorSeekAcrossBlocks) {
  TableBuilder builder;
  for (int i = 0; i < 2000; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    builder.Add(Slice(key), Slice("v"));
  }
  auto table = TableReader::Open(builder.Finish());
  ASSERT_TRUE(table.ok());
  auto it = (*table)->NewIterator();
  it.Seek(Slice("key000999"));  // odd: absent
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "key001000");
}

TEST(SSTableTest, CorruptContentsRejected) {
  EXPECT_FALSE(TableReader::Open("too short").ok());
  TableBuilder builder;
  builder.Add(Slice("k"), Slice("v"));
  std::string contents = builder.Finish();
  contents[contents.size() - 1] ^= 0x5a;  // clobber magic
  EXPECT_FALSE(TableReader::Open(contents).ok());
}

TEST(SSTableTest, BloomFilterScreensAbsentKeys) {
  // TableBuilder requires sorted keys (asserted in Debug builds).
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("present" + std::string(1, 'a' + i % 26) +
                   std::to_string(i));
  }
  std::sort(keys.begin(), keys.end());
  TableBuilder builder;
  for (const std::string& key : keys) builder.Add(Slice(key), Slice("v"));
  auto table_or = TableReader::Open(builder.Finish());
  ASSERT_TRUE(table_or.ok());
  const auto& table = *table_or;
  int passed = 0;
  for (int i = 0; i < 1000; ++i) {
    if (table->MayContain(Slice("absent" + std::to_string(i)))) ++passed;
  }
  EXPECT_LT(passed, 100);  // ~1% expected
}

// ---------------------------------------------------------------- MemTable

TEST(MemTableTest, PutGetOverwrite) {
  MemTable mem;
  mem.Put(Slice("a"), Slice("1"));
  mem.Put(Slice("b"), Slice("2"));
  mem.Put(Slice("a"), Slice("updated"));
  std::string value;
  EntryType type;
  ASSERT_TRUE(mem.Get(Slice("a"), &value, &type));
  EXPECT_EQ(value, "updated");
  EXPECT_EQ(type, EntryType::kPut);
  EXPECT_FALSE(mem.Get(Slice("zz"), &value, &type));
}

TEST(MemTableTest, OverwriteWithLongerValue) {
  MemTable mem;
  mem.Put(Slice("k"), Slice("ab"));
  mem.Put(Slice("k"), Slice("a much longer value than before"));
  std::string value;
  EntryType type;
  ASSERT_TRUE(mem.Get(Slice("k"), &value, &type));
  EXPECT_EQ(value, "a much longer value than before");
}

TEST(MemTableTest, DeleteLeavesTombstone) {
  MemTable mem;
  mem.Put(Slice("k"), Slice("v"));
  mem.Delete(Slice("k"));
  std::string value;
  EntryType type;
  ASSERT_TRUE(mem.Get(Slice("k"), &value, &type));
  EXPECT_EQ(type, EntryType::kDelete);
}

TEST(MemTableTest, IterationIsSorted) {
  MemTable mem;
  Rng rng(3);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(500));
    std::string value = "v" + std::to_string(i);
    mem.Put(Slice(key), Slice(value));
    model[key] = value;
  }
  auto it = mem.NewIterator();
  auto expected = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(it.key().ToString(), expected->first);
    EXPECT_EQ(it.value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
}

TEST(MemTableTest, SeekPositionsAtLowerBound) {
  MemTable mem;
  mem.Put(Slice("b"), Slice("1"));
  mem.Put(Slice("d"), Slice("2"));
  auto it = mem.NewIterator();
  it.Seek(Slice("c"));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "d");
  it.Seek(Slice("e"));
  EXPECT_FALSE(it.Valid());
}

// ---------------------------------------------------------------- WAL

TEST(WalTest, AppendAndReplay) {
  std::string dir = TempDir("wal");
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  std::string path = dir + "/test.log";
  {
    WalWriter writer;
    ASSERT_TRUE(WalWriter::Open(path, &writer).ok());
    ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("k1"), Slice("v1")).ok());
    ASSERT_TRUE(writer.Append(EntryType::kDelete, Slice("k2"), Slice()).ok());
    writer.Close();
  }
  std::vector<std::tuple<EntryType, std::string, std::string>> seen;
  ASSERT_TRUE(ReplayWal(path, [&seen](EntryType t, const Slice& k,
                                      const Slice& v) {
                seen.emplace_back(t, k.ToString(), v.ToString());
              }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(std::get<1>(seen[0]), "k1");
  EXPECT_EQ(std::get<0>(seen[1]), EntryType::kDelete);
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  std::string dir = TempDir("wal_torn");
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  std::string path = dir + "/test.log";
  {
    WalWriter writer;
    ASSERT_TRUE(WalWriter::Open(path, &writer).ok());
    ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("k1"), Slice("v1")).ok());
    ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("k2"), Slice("v2")).ok());
    writer.Close();
  }
  // Tear the last record.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(
      WriteStringToFile(path, contents->substr(0, contents->size() - 3)).ok());
  int count = 0;
  ASSERT_TRUE(ReplayWal(path, [&count](EntryType, const Slice&,
                                       const Slice&) { ++count; }).ok());
  EXPECT_EQ(count, 1);  // only the intact record
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  std::string dir = TempDir("wal_crc");
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  std::string path = dir + "/test.log";
  {
    WalWriter writer;
    ASSERT_TRUE(WalWriter::Open(path, &writer).ok());
    ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("k1"), Slice("v1")).ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string mutated = *contents;
  mutated[mutated.size() - 1] ^= 0xff;  // flip a payload byte
  ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
  int count = 0;
  ASSERT_TRUE(ReplayWal(path, [&count](EntryType, const Slice&,
                                       const Slice&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

// ---------------------------------------------------------------- KVStore

TEST(KVStoreTest, BasicCrud) {
  std::string dir = TempDir("kv_basic");
  StoreOptions options;
  auto store_or = KVStore::Open(options, dir);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or;
  ASSERT_TRUE(store->Put(Slice("alpha"), Slice("1")).ok());
  ASSERT_TRUE(store->Put(Slice("beta"), Slice("2")).ok());
  std::string value;
  ASSERT_TRUE(store->Get(Slice("alpha"), &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(store->Delete(Slice("alpha")).ok());
  EXPECT_TRUE(store->Get(Slice("alpha"), &value).IsNotFound());
  ASSERT_TRUE(store->Get(Slice("beta"), &value).ok());
}

TEST(KVStoreTest, FlushAndReadBack) {
  std::string dir = TempDir("kv_flush");
  StoreOptions options;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*store)
                    ->Put(Slice("key" + std::to_string(i)),
                          Slice("value" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_GE((*store)->num_tables(), 1u);
  std::string value;
  ASSERT_TRUE((*store)->Get(Slice("key500"), &value).ok());
  EXPECT_EQ(value, "value500");
}

TEST(KVStoreTest, RecoversFromWalAfterReopen) {
  std::string dir = TempDir("kv_recover");
  StoreOptions options;
  {
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put(Slice("persisted"), Slice("yes")).ok());
    ASSERT_TRUE((*store)->Put(Slice("gone"), Slice("x")).ok());
    ASSERT_TRUE((*store)->Delete(Slice("gone")).ok());
    // No flush: data lives only in WAL + memtable.
  }
  auto reopened = KVStore::Open(options, dir);
  ASSERT_TRUE(reopened.ok());
  std::string value;
  ASSERT_TRUE((*reopened)->Get(Slice("persisted"), &value).ok());
  EXPECT_EQ(value, "yes");
  EXPECT_TRUE((*reopened)->Get(Slice("gone"), &value).IsNotFound());
}

TEST(KVStoreTest, RecoversTablesAfterReopen) {
  std::string dir = TempDir("kv_tables");
  StoreOptions options;
  {
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*store)->Put(Slice("k" + std::to_string(i)), Slice("v")).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put(Slice("late"), Slice("wal-only")).ok());
  }
  auto reopened = KVStore::Open(options, dir);
  ASSERT_TRUE(reopened.ok());
  std::string value;
  ASSERT_TRUE((*reopened)->Get(Slice("k42"), &value).ok());
  ASSERT_TRUE((*reopened)->Get(Slice("late"), &value).ok());
  EXPECT_EQ(value, "wal-only");
}

TEST(KVStoreTest, NewerVersionsShadowOlderAcrossTables) {
  std::string dir = TempDir("kv_shadow");
  StoreOptions options;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(Slice("k"), Slice("old")).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put(Slice("k"), Slice("new")).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  std::string value;
  ASSERT_TRUE((*store)->Get(Slice("k"), &value).ok());
  EXPECT_EQ(value, "new");
}

TEST(KVStoreTest, CompactionMergesAndDropsTombstones) {
  std::string dir = TempDir("kv_compact");
  StoreOptions options;
  options.l0_compaction_trigger = 100;  // manual compaction only
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*store)
                      ->Put(Slice("k" + std::to_string(i)),
                            Slice("r" + std::to_string(round)))
                      .ok());
    }
    ASSERT_TRUE((*store)->Delete(Slice("k" + std::to_string(round))).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  ASSERT_TRUE((*store)->CompactAll().ok());
  EXPECT_EQ((*store)->num_tables(), 1u);
  std::string value;
  ASSERT_TRUE((*store)->Get(Slice("k10"), &value).ok());
  EXPECT_EQ(value, "r2");
  EXPECT_TRUE((*store)->Get(Slice("k2"), &value).IsNotFound());
}

TEST(KVStoreTest, ScanMergesAllSourcesNewestWins) {
  std::string dir = TempDir("kv_scan");
  StoreOptions options;
  options.l0_compaction_trigger = 100;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(Slice("a"), Slice("old-a")).ok());
  ASSERT_TRUE((*store)->Put(Slice("b"), Slice("b")).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put(Slice("a"), Slice("new-a")).ok());
  ASSERT_TRUE((*store)->Put(Slice("c"), Slice("c")).ok());
  ASSERT_TRUE((*store)->Delete(Slice("b")).ok());

  std::vector<std::pair<std::string, std::string>> seen;
  (*store)->Scan(Slice(), Slice(), [&seen](const Slice& k, const Slice& v) {
    seen.emplace_back(k.ToString(), v.ToString());
    return true;
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "a");
  EXPECT_EQ(seen[0].second, "new-a");
  EXPECT_EQ(seen[1].first, "c");
}

TEST(KVStoreTest, ScanRespectsBounds) {
  std::string dir = TempDir("kv_bounds");
  StoreOptions options;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE((*store)->Put(Slice(std::string(1, c)), Slice("v")).ok());
  }
  std::vector<std::string> seen;
  (*store)->Scan(Slice("b"), Slice("e"), [&seen](const Slice& k,
                                                 const Slice&) {
    seen.push_back(k.ToString());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "c", "d"}));
}

// Property test: KVStore must agree with a std::map model under random
// interleavings of put/delete/flush/compact/reopen.
class KVStoreModelTest : public ::testing::TestWithParam<int> {};

TEST_P(KVStoreModelTest, AgreesWithMapModel) {
  std::string dir = TempDir("kv_model" + std::to_string(GetParam()));
  StoreOptions options;
  options.l0_compaction_trigger = 3;
  options.memtable_flush_bytes = 1 << 14;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> model;
  Rng rng(GetParam() * 1000 + 17);
  for (int op = 0; op < 3000; ++op) {
    int action = static_cast<int>(rng.Uniform(100));
    std::string key = "k" + std::to_string(rng.Uniform(200));
    if (action < 55) {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE((*store)->Put(Slice(key), Slice(value)).ok());
      model[key] = value;
    } else if (action < 80) {
      ASSERT_TRUE((*store)->Delete(Slice(key)).ok());
      model.erase(key);
    } else if (action < 90) {
      std::string value;
      Status s = (*store)->Get(Slice(key), &value);
      if (model.count(key)) {
        ASSERT_TRUE(s.ok()) << key << ": " << s;
        EXPECT_EQ(value, model[key]);
      } else {
        EXPECT_TRUE(s.IsNotFound()) << key;
      }
    } else if (action < 95) {
      ASSERT_TRUE((*store)->Flush().ok());
    } else if (action < 98) {
      ASSERT_TRUE((*store)->CompactAll().ok());
    } else {
      // Reopen: everything must survive. Destroy the old instance
      // first so its background flushes drain before the new one
      // scans the directory.
      store->reset();
      store = KVStore::Open(options, dir);
      ASSERT_TRUE(store.ok());
    }
  }
  // Final full comparison via Scan.
  std::map<std::string, std::string> scanned;
  (*store)->Scan(Slice(), Slice(),
                 [&scanned](const Slice& k, const Slice& v) {
                   scanned[k.ToString()] = v.ToString();
                   return true;
                 });
  EXPECT_EQ(scanned, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KVStoreModelTest,
                         ::testing::Values(1, 2, 3));


TEST(KVStoreTest, CorruptSstableDetectedOnReopen) {
  std::string dir = TempDir("kv_corrupt_sst");
  StoreOptions options;
  {
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*store)->Put(Slice("k" + std::to_string(i)), Slice("v")).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Flip a byte in the table footer region on disk.
  std::string sst;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sst") sst = entry.path().string();
  }
  ASSERT_FALSE(sst.empty());
  auto contents = ReadFileToString(sst);
  ASSERT_TRUE(contents.ok());
  std::string mutated = *contents;
  mutated[mutated.size() - 1] ^= 0xff;
  ASSERT_TRUE(WriteStringToFile(sst, mutated).ok());
  auto reopened = KVStore::Open(options, dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST(KVStoreTest, WalOffLosesUnflushedDataOnReopen) {
  std::string dir = TempDir("kv_nowal");
  StoreOptions options;
  options.use_wal = false;
  {
    auto store = KVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put(Slice("durable"), Slice("1")).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put(Slice("volatile"), Slice("2")).ok());
    // No flush: with WAL disabled this write must not survive.
  }
  auto reopened = KVStore::Open(options, dir);
  ASSERT_TRUE(reopened.ok());
  std::string value;
  EXPECT_TRUE((*reopened)->Get(Slice("durable"), &value).ok());
  EXPECT_TRUE((*reopened)->Get(Slice("volatile"), &value).IsNotFound());
}

TEST(KVStoreTest, StatsTrackBloomEffect) {
  std::string dir = TempDir("kv_stats");
  StoreOptions options;
  options.l0_compaction_trigger = 100;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*store)
                      ->Put(Slice("t" + std::to_string(t) + "_" +
                                  std::to_string(i)),
                            Slice("v"))
                      .ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  (*store)->ResetStats();
  std::string value;
  for (int i = 0; i < 500; ++i) {
    (*store)->Get(Slice("absent" + std::to_string(i)), &value).ok();
  }
  const StoreStats& stats = (*store)->stats();
  EXPECT_EQ(stats.gets, 500u);
  // With 3 tables and ~1% fp rate, almost every probe is bloom-skipped.
  EXPECT_GT(stats.bloom_skips, stats.table_probes * 10);
}


// ---------------------------------------------------------------- Env

TEST(EnvTest, ReadMissingFileFails) {
  auto contents = ReadFileToString("/nonexistent/kbforge/file");
  EXPECT_FALSE(contents.ok());
  EXPECT_TRUE(contents.status().IsIOError());
}

TEST(EnvTest, WriteAndReadRoundTrip) {
  std::string dir = TempDir("env");
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  std::string path = dir + "/file.bin";
  std::string payload("binary\0data", 11);
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, payload);
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(EnvTest, ListDirSeesCreatedFiles) {
  std::string dir = TempDir("env_list");
  ASSERT_TRUE(CreateDirIfMissing(dir).ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/a.txt", "x").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/b.txt", "y").ok());
  auto names = ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

// ---------------------------------------------------------------- Codec

TEST(TripleCodecTest, RoundTripAllOrders) {
  rdf::Triple t(123456, 789, 42);
  for (TripleOrder order :
       {TripleOrder::kSpo, TripleOrder::kPos, TripleOrder::kOsp}) {
    std::string key = EncodeTripleKey(order, t);
    TripleOrder got_order;
    rdf::Triple got;
    ASSERT_TRUE(DecodeTripleKey(Slice(key), &got_order, &got));
    EXPECT_EQ(got_order, order);
    EXPECT_EQ(got, t);
  }
}

TEST(TripleCodecTest, KeyOrderMatchesTripleOrder) {
  rdf::Triple a(1, 5, 9), b(1, 6, 0), c(2, 0, 0);
  std::string ka = EncodeTripleKey(TripleOrder::kSpo, a);
  std::string kb = EncodeTripleKey(TripleOrder::kSpo, b);
  std::string kc = EncodeTripleKey(TripleOrder::kSpo, c);
  EXPECT_LT(ka, kb);
  EXPECT_LT(kb, kc);
}

TEST(TripleCodecTest, PrefixSelectsSubject) {
  rdf::Triple t(7, 8, 9);
  std::string key = EncodeTripleKey(TripleOrder::kSpo, t);
  std::string prefix = EncodeTriplePrefix(TripleOrder::kSpo, 7);
  EXPECT_TRUE(Slice(key).starts_with(Slice(prefix)));
  std::string upper = PrefixUpperBound(prefix);
  EXPECT_LT(key, upper);
  std::string other = EncodeTripleKey(TripleOrder::kSpo, rdf::Triple(8, 0, 0));
  EXPECT_GE(other, upper);
}

TEST(TripleCodecTest, RejectsMalformedKeys) {
  TripleOrder order;
  rdf::Triple t;
  EXPECT_FALSE(DecodeTripleKey(Slice("short"), &order, &t));
  std::string key = EncodeTripleKey(TripleOrder::kSpo, rdf::Triple(1, 2, 3));
  key[0] = 'X';
  EXPECT_FALSE(DecodeTripleKey(Slice(key), &order, &t));
}

TEST(TripleCodecTest, TwoComponentPrefixSelectsSubjectPredicate) {
  rdf::Triple in(7, 8, 9), out_p(7, 9, 1), out_s(8, 8, 9);
  std::string prefix = EncodeTriplePrefix(TripleOrder::kSpo, 7, 8);
  std::string upper = PrefixUpperBound(prefix);
  std::string key = EncodeTripleKey(TripleOrder::kSpo, in);
  EXPECT_TRUE(Slice(key).starts_with(Slice(prefix)));
  EXPECT_LT(key, upper);
  EXPECT_GE(EncodeTripleKey(TripleOrder::kSpo, out_p), upper);
  EXPECT_GE(EncodeTripleKey(TripleOrder::kSpo, out_s), upper);
  // In POS order the two components are (p, o).
  std::string pos_prefix = EncodeTriplePrefix(TripleOrder::kPos, 8, 9);
  EXPECT_TRUE(Slice(EncodeTripleKey(TripleOrder::kPos, in))
                  .starts_with(Slice(pos_prefix)));
}

// -------------------------------------------------- StoredTripleSource

class StoredTripleSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "kbforge_stored_src")
               .string();
    std::filesystem::remove_all(dir_);
    StoreOptions options;
    options.sync_wal = false;
    auto store = KVStore::Open(options, dir_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    // 40 triples over small id spaces, in all three collation orders
    // (mirrors core::KbStorage::Save's layout).
    for (rdf::TermId s = 1; s <= 5; ++s) {
      for (rdf::TermId o = 1; o <= 4; ++o) {
        rdf::Triple t(s, 1 + (s + o) % 2, 100 + o);
        if (!triples_.insert(t).second) continue;
        for (TripleOrder order :
             {TripleOrder::kSpo, TripleOrder::kPos, TripleOrder::kOsp}) {
          ASSERT_TRUE(store_->Put(EncodeTripleKey(order, t), "").ok());
        }
      }
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  size_t CountMatching(const rdf::TriplePattern& pattern) const {
    size_t n = 0;
    for (const rdf::Triple& t : triples_) {
      if (pattern.Matches(t)) ++n;
    }
    return n;
  }

  std::string dir_;
  std::unique_ptr<KVStore> store_;
  std::set<rdf::Triple> triples_;
};

TEST_F(StoredTripleSourceTest, ScansEveryPatternShape) {
  // Tiny batches force many refills mid-scan.
  StoredTripleSource source(store_.get(), /*batch_size=*/3);
  std::vector<rdf::TriplePattern> patterns;
  patterns.push_back({});                                 // (?,?,?)
  patterns.push_back({3, rdf::kAnyTerm, rdf::kAnyTerm});  // (s,?,?)
  patterns.push_back({rdf::kAnyTerm, 1, rdf::kAnyTerm});  // (?,p,?)
  patterns.push_back({rdf::kAnyTerm, rdf::kAnyTerm, 102});
  patterns.push_back({3, 1, rdf::kAnyTerm});
  patterns.push_back({3, rdf::kAnyTerm, 102});
  patterns.push_back({rdf::kAnyTerm, 1, 102});
  patterns.push_back({3, 1, 102});
  patterns.push_back({99, rdf::kAnyTerm, rdf::kAnyTerm});  // no match
  for (const rdf::TriplePattern& pattern : patterns) {
    std::set<rdf::Triple> got;
    for (auto it = source.NewScan(pattern); it->Valid(); it->Next()) {
      EXPECT_TRUE(pattern.Matches(it->Value()));
      EXPECT_TRUE(got.insert(it->Value()).second) << "duplicate triple";
      EXPECT_TRUE(it->status().ok());
    }
    EXPECT_EQ(got.size(), CountMatching(pattern));
  }
}

TEST_F(StoredTripleSourceTest, IteratorSeekSkipsForward) {
  StoredTripleSource source(store_.get(), /*batch_size=*/4);
  rdf::TriplePattern all;
  auto it = source.NewScan(all);
  ASSERT_TRUE(it->Valid());
  ASSERT_EQ(it->order(), rdf::ScanOrder::kSpo);
  // Seek to subject 4: lands on the first triple with s >= 4.
  it->Seek(rdf::Triple(4, 0, 0));
  ASSERT_TRUE(it->Valid());
  EXPECT_GE(it->Value().s, 4u);
  size_t rest = 0;
  for (; it->Valid(); it->Next()) ++rest;
  EXPECT_EQ(rest, CountMatching({4, rdf::kAnyTerm, rdf::kAnyTerm}) +
                      CountMatching({5, rdf::kAnyTerm, rdf::kAnyTerm}));
}

TEST_F(StoredTripleSourceTest, EstimateCountMatchesExactOnSmallStore) {
  StoredTripleSource source(store_.get());
  EXPECT_EQ(source.EstimateCount({}), triples_.size());
  EXPECT_EQ(source.EstimateCount({3, rdf::kAnyTerm, rdf::kAnyTerm}),
            CountMatching({3, rdf::kAnyTerm, rdf::kAnyTerm}));
  EXPECT_EQ(source.EstimateCount({99, rdf::kAnyTerm, rdf::kAnyTerm}), 0u);
}

// ---------------------------------------------------------- Block cache

TEST(KVStoreCacheTest, RepeatedGetsHitTheBlockCache) {
  std::string dir = TempDir("kv_cache_hits");
  StoreOptions options;
  options.sync_wal = false;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  ASSERT_NE((*store)->block_cache(), nullptr);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        (*store)->Put(Slice("k" + std::to_string(i)), Slice("v")).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  std::string value;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*store)->Get(Slice("k" + std::to_string(i)), &value).ok());
    }
  }
  LruCacheStats stats = (*store)->block_cache()->stats();
  EXPECT_GT(stats.hits, 0u);
  // The whole working set fits: later rounds should be nearly all hits.
  EXPECT_GT(stats.hits, stats.misses);
}

TEST(KVStoreCacheTest, ZeroCapacityDisablesCaching) {
  std::string dir = TempDir("kv_cache_off");
  StoreOptions options;
  options.sync_wal = false;
  options.block_cache_bytes = 0;  // the ablation baseline
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->block_cache(), nullptr);
  ASSERT_TRUE((*store)->Put(Slice("k"), Slice("v")).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  std::string value;
  ASSERT_TRUE((*store)->Get(Slice("k"), &value).ok());
  EXPECT_EQ(value, "v");
}

TEST(KVStoreCacheTest, SharedCacheServesSeveralStores) {
  auto cache = std::make_shared<ShardedLruCache>(1 << 20, 4);
  StoreOptions options;
  options.sync_wal = false;
  options.block_cache = cache;
  std::string dir_a = TempDir("kv_cache_shared_a");
  std::string dir_b = TempDir("kv_cache_shared_b");
  auto a = KVStore::Open(options, dir_a);
  auto b = KVStore::Open(options, dir_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Put(Slice("k"), Slice("from-a")).ok());
  ASSERT_TRUE((*b)->Put(Slice("k"), Slice("from-b")).ok());
  ASSERT_TRUE((*a)->Flush().ok());
  ASSERT_TRUE((*b)->Flush().ok());
  // Same key, same block index, different tables: ids keep the cached
  // blocks apart.
  std::string value;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*a)->Get(Slice("k"), &value).ok());
    EXPECT_EQ(value, "from-a");
    ASSERT_TRUE((*b)->Get(Slice("k"), &value).ok());
    EXPECT_EQ(value, "from-b");
  }
  EXPECT_GT(cache->stats().hits, 0u);
}

// ------------------------------------------------------- Reentrant scan

TEST(KVStoreTest, ScanVisitorMayReenterGet) {
  std::string dir = TempDir("kv_reentrant");
  StoreOptions options;
  options.sync_wal = false;
  auto store = KVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    std::string k = "k" + std::to_string(i);
    ASSERT_TRUE((*store)->Put(Slice(k), Slice("v" + std::to_string(i))).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  // The visitor runs with no store lock held, so calling back into the
  // store (even writes) must not deadlock.
  size_t visited = 0;
  Status s = (*store)->Scan(Slice(), Slice(),
                            [&](const Slice& key, const Slice& value) {
                              std::string got;
                              Status g = (*store)->Get(key, &got);
                              EXPECT_TRUE(g.ok());
                              EXPECT_EQ(got, value.ToString());
                              if (visited == 0) {
                                EXPECT_TRUE(
                                    (*store)->Put(Slice("zz-new"), Slice("w"))
                                        .ok());
                              }
                              ++visited;
                              return true;
                            });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(visited, 50u);  // snapshot: the mid-scan Put is not seen
  std::string got;
  EXPECT_TRUE((*store)->Get(Slice("zz-new"), &got).ok());
}

// -------------------------------------------------------- ShardedKVStore

TEST(ShardedKVStoreTest, RoundTripAcrossShards) {
  std::string dir = TempDir("sharded_roundtrip");
  ShardedStoreOptions options;
  options.num_shards = 4;
  options.store.sync_wal = false;
  auto store = ShardedKVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_shards(), 4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*store)
                    ->Put(Slice("key" + std::to_string(i)),
                          Slice("value" + std::to_string(i)))
                    .ok());
  }
  std::string value;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*store)->Get(Slice("key" + std::to_string(i)), &value).ok());
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
  ASSERT_TRUE((*store)->Delete(Slice("key7")).ok());
  EXPECT_TRUE((*store)->Get(Slice("key7"), &value).IsNotFound());
}

TEST(ShardedKVStoreTest, ScanMergesShardsInKeyOrder) {
  std::string dir = TempDir("sharded_scan");
  ShardedStoreOptions options;
  options.num_shards = 8;
  options.store.sync_wal = false;
  auto store = ShardedKVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> model;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(100000));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE((*store)->Put(Slice(key), Slice(value)).ok());
    model[key] = value;
  }
  ASSERT_TRUE((*store)->Flush().ok());
  std::vector<std::string> keys;
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE((*store)
                  ->Scan(Slice(), Slice(),
                         [&](const Slice& k, const Slice& v) {
                           keys.push_back(k.ToString());
                           scanned[k.ToString()] = v.ToString();
                           return true;
                         })
                  .ok());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(scanned, model);
  // Bounded sub-range, early stop.
  size_t seen = 0;
  ASSERT_TRUE((*store)
                  ->Scan(Slice("k2"), Slice("k5"),
                         [&](const Slice& k, const Slice&) {
                           EXPECT_GE(k.ToString(), std::string("k2"));
                           EXPECT_LT(k.ToString(), std::string("k5"));
                           ++seen;
                           return seen < 10;
                         })
                  .ok());
  EXPECT_EQ(seen, 10u);
}

TEST(ShardedKVStoreTest, PersistedShardCountWinsOnReopen) {
  std::string dir = TempDir("sharded_marker");
  {
    ShardedStoreOptions options;
    options.num_shards = 4;
    options.store.sync_wal = false;
    auto store = ShardedKVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*store)->Put(Slice("k" + std::to_string(i)), Slice("v")).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Reopen asking for a different count: routing must follow the disk.
  ShardedStoreOptions options;
  options.num_shards = 16;
  options.store.sync_wal = false;
  auto reopened = ShardedKVStore::Open(options, dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_shards(), 4);
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*reopened)->Get(Slice("k" + std::to_string(i)), &value).ok());
  }
}

TEST(ShardedKVStoreTest, RecoverMergesPerShardReports) {
  std::string dir = TempDir("sharded_recover");
  ShardedStoreOptions options;
  options.num_shards = 4;
  options.store.sync_wal = false;
  {
    auto store = ShardedKVStore::Open(options, dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          (*store)->Put(Slice("k" + std::to_string(i)), Slice("v")).ok());
    }
    // No flush: every record stays WAL-resident across shards.
  }
  RecoveryReport report;
  auto recovered = ShardedKVStore::Recover(options, dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.wal_records_replayed, 200u);
  EXPECT_EQ(report.tables_quarantined, 0u);
  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        (*recovered)->Get(Slice("k" + std::to_string(i)), &value).ok());
  }
}

TEST(ShardedKVStoreTest, CompactAllCompactsEveryShard) {
  std::string dir = TempDir("sharded_compact");
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.store.sync_wal = false;
  options.store.l0_compaction_trigger = 100;  // keep compaction manual
  auto store = ShardedKVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)
                      ->Put(Slice("k" + std::to_string(i)),
                            Slice("r" + std::to_string(round)))
                      .ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  EXPECT_GT((*store)->num_tables(), 2u);
  ASSERT_TRUE((*store)->CompactAll().ok());
  EXPECT_LE((*store)->num_tables(), 2u);  // <= 1 table per shard
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Get(Slice("k" + std::to_string(i)), &value).ok());
    EXPECT_EQ(value, "r2");
  }
}

TEST(ShardedKVStoreTest, WorksThroughStoredTripleSource) {
  std::string dir = TempDir("sharded_source");
  ShardedStoreOptions options;
  options.num_shards = 4;
  options.store.sync_wal = false;
  auto store = ShardedKVStore::Open(options, dir);
  ASSERT_TRUE(store.ok());
  std::set<rdf::Triple> triples;
  for (rdf::TermId s = 1; s <= 5; ++s) {
    for (rdf::TermId o = 1; o <= 4; ++o) {
      rdf::Triple t(s, 1 + (s + o) % 2, 100 + o);
      if (!triples.insert(t).second) continue;
      for (TripleOrder order :
           {TripleOrder::kSpo, TripleOrder::kPos, TripleOrder::kOsp}) {
        ASSERT_TRUE((*store)->Put(EncodeTripleKey(order, t), "").ok());
      }
    }
  }
  StoredTripleSource source(store->get(), /*batch_size=*/4);
  rdf::TriplePattern all;
  std::set<rdf::Triple> got;
  for (auto it = source.NewScan(all); it->Valid(); it->Next()) {
    EXPECT_TRUE(got.insert(it->Value()).second);
  }
  EXPECT_EQ(got, triples);
}


// ------------------------------------------------- WAL generations

TEST(WalGenerationTest, RetainedGenerationsFormPrefixClosedLog) {
  StoreOptions options;
  options.retain_wals = true;
  options.memtable_flush_bytes = 2 << 10;  // roll generations quickly
  auto store = KVStore::Open(options, TempDir("wal_gens"));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 300; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE((*store)->Put(key, std::string(32, 'v')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  auto gens = (*store)->ListWalGenerations();
  ASSERT_TRUE(gens.ok());
  ASSERT_GT(gens->size(), 1u) << "flushes should have rolled the wal";
  // Numbers strictly increase, every retained file exists with the
  // reported size, and replaying the concatenation yields every key
  // exactly once in append order.
  std::vector<std::string> replayed;
  for (size_t i = 0; i < gens->size(); ++i) {
    if (i > 0) EXPECT_GT((*gens)[i].number, (*gens)[i - 1].number);
    auto contents = Env::Default()->ReadFileToString((*gens)[i].path);
    ASSERT_TRUE(contents.ok()) << (*gens)[i].path;
    EXPECT_EQ(contents->size(), (*gens)[i].size);
    uint64_t offset = 0;
    ASSERT_TRUE(ParseWalChunk(Slice(*contents), &offset,
                              [&](EntryType type, const Slice& key,
                                  const Slice&) {
                                if (type == EntryType::kPut) {
                                  replayed.push_back(key.ToString());
                                }
                              })
                    .ok());
    EXPECT_EQ(offset, contents->size()) << "torn tail in a closed wal";
  }
  ASSERT_EQ(replayed.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    EXPECT_EQ(replayed[static_cast<size_t>(i)], key);
  }
}

TEST(WalGenerationTest, WithoutRetainWalsFlushedGenerationsAreDeleted) {
  StoreOptions options;
  options.memtable_flush_bytes = 2 << 10;
  auto store = KVStore::Open(options, TempDir("wal_unretained"));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        (*store)->Put("key" + std::to_string(i), std::string(32, 'v')).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  auto gens = (*store)->ListWalGenerations();
  ASSERT_TRUE(gens.ok());
  // Only the live tail remains; flushed history is reclaimed.
  EXPECT_LE(gens->size(), 1u);
}

TEST(WalChunkTest, IncrementalParseStopsAtTornTailAndResumes) {
  std::string dir = TempDir("wal_chunk");
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  std::string path = dir + "/chunk.log";
  WalWriter writer;
  ASSERT_TRUE(WalWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("alpha"), Slice("1")).ok());
  ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("beta"), Slice("2")).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());

  // Feed the bytes in two arbitrary pieces: the parser must stop at
  // the torn boundary with corrupt=false, then finish once the rest
  // arrives, never re-delivering a record.
  const size_t cut = contents->size() / 2;
  std::vector<std::string> keys;
  auto collect = [&](EntryType, const Slice& key, const Slice&) {
    keys.push_back(key.ToString());
  };
  uint64_t offset = 0;
  bool corrupt = true;
  ASSERT_TRUE(ParseWalChunk(Slice(contents->data(), cut), &offset, collect,
                            nullptr, &corrupt)
                  .ok());
  EXPECT_FALSE(corrupt);
  EXPECT_LE(offset, cut);
  ASSERT_TRUE(ParseWalChunk(Slice(*contents), &offset, collect, nullptr,
                            &corrupt)
                  .ok());
  EXPECT_FALSE(corrupt);
  EXPECT_EQ(offset, contents->size());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "beta");
}

TEST(WalChunkTest, ByteCompleteRecordWithBadChecksumReportsCorrupt) {
  std::string dir = TempDir("wal_corrupt_chunk");
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  std::string path = dir + "/chunk.log";
  WalWriter writer;
  ASSERT_TRUE(WalWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("alpha"), Slice("1")).ok());
  ASSERT_TRUE(writer.Append(EntryType::kPut, Slice("beta"), Slice("2")).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string damaged = *contents;
  damaged.back() ^= 0x40;  // flip a bit inside the second record

  uint64_t offset = 0;
  uint64_t records = 0;
  bool corrupt = false;
  ASSERT_TRUE(
      ParseWalChunk(Slice(damaged), &offset, [](EntryType, const Slice&,
                                                const Slice&) {},
                    &records, &corrupt)
          .ok());
  // The intact first record parses; the damaged one is flagged as
  // corruption (more bytes will never fix it), not a torn tail.
  EXPECT_EQ(records, 1u);
  EXPECT_TRUE(corrupt);
  EXPECT_LT(offset, damaged.size());
}

}  // namespace
}  // namespace storage
}  // namespace kb
