#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "taxonomy/category_induction.h"
#include "taxonomy/set_expansion.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/type_inference.h"

namespace kb {
namespace taxonomy {
namespace {

// ---------------------------------------------------------------- DAG

TEST(TaxonomyTest, InternAndLookup) {
  Taxonomy t;
  ClassId singer = t.Intern("singer");
  EXPECT_EQ(t.Intern("singer"), singer);
  EXPECT_EQ(t.Lookup("singer"), singer);
  EXPECT_EQ(t.Lookup("absent"), kInvalidClassId);
  EXPECT_EQ(t.name(singer), "singer");
}

TEST(TaxonomyTest, TransitiveSubsumption) {
  Taxonomy t;
  ClassId singer = t.Intern("singer");
  ClassId person = t.Intern("person");
  ClassId entity = t.Intern("entity");
  EXPECT_TRUE(t.AddSubclass(singer, person));
  EXPECT_TRUE(t.AddSubclass(person, entity));
  EXPECT_TRUE(t.IsSubclassOf(singer, entity));
  EXPECT_TRUE(t.IsSubclassOf(singer, singer));
  EXPECT_FALSE(t.IsSubclassOf(entity, singer));
}

TEST(TaxonomyTest, RejectsCycles) {
  Taxonomy t;
  ClassId a = t.Intern("a");
  ClassId b = t.Intern("b");
  ClassId c = t.Intern("c");
  EXPECT_TRUE(t.AddSubclass(a, b));
  EXPECT_TRUE(t.AddSubclass(b, c));
  EXPECT_FALSE(t.AddSubclass(c, a));  // would close a cycle
  EXPECT_FALSE(t.AddSubclass(a, a));
  EXPECT_FALSE(t.AddSubclass(a, b));  // duplicate
  EXPECT_EQ(t.num_edges(), 2u);
}

TEST(TaxonomyTest, AncestorsAndRoots) {
  Taxonomy t = MakeBackboneTaxonomy();
  ClassId singer = t.Lookup("singer");
  ASSERT_NE(singer, kInvalidClassId);
  auto ancestors = t.Ancestors(singer);
  bool found_entity = false;
  for (ClassId a : ancestors) {
    if (t.name(a) == "entity") found_entity = true;
  }
  EXPECT_TRUE(found_entity);
  auto roots = t.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(t.name(roots[0]), "entity");
}

// ---------------------------------------------------------------- Categories

TEST(CategoryClassifierTest, ConceptualPluralHead) {
  InductionOptions options;
  std::string head;
  EXPECT_EQ(ClassifyCategory("Freedonian singers", options, &head),
            CategoryDecision::kConceptual);
  EXPECT_EQ(head, "singer");
  EXPECT_EQ(ClassifyCategory("Cities in Freedonia", options, &head),
            CategoryDecision::kConceptual);
  EXPECT_EQ(head, "city");
}

TEST(CategoryClassifierTest, RelationalYearCategories) {
  InductionOptions options;
  std::string head;
  EXPECT_EQ(ClassifyCategory("1955 births", options, &head),
            CategoryDecision::kRelational);
  options.relational_categories = false;
  EXPECT_EQ(ClassifyCategory("1955 births", options, &head),
            CategoryDecision::kConceptual);  // the precision mistake
}

TEST(CategoryClassifierTest, AdministrativeFiltered) {
  InductionOptions options;
  EXPECT_EQ(ClassifyCategory("Articles needing cleanup", options, nullptr),
            CategoryDecision::kAdministrative);
  options.admin_filter = false;
  EXPECT_EQ(ClassifyCategory("Articles needing cleanup", options, nullptr),
            CategoryDecision::kConceptual);  // heuristic misfires
}

TEST(CategoryClassifierTest, TopicalSingularHead) {
  InductionOptions options;
  EXPECT_EQ(ClassifyCategory("Music", options, nullptr),
            CategoryDecision::kTopical);
}

class InductionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 21;
    wopts.num_persons = 80;
    wopts.num_cities = 20;
    wopts.num_companies = 25;
    corpus::CorpusOptions copts;
    copts.seed = 22;
    copts.news_docs = 10;
    copts.web_docs = 60;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static corpus::Corpus* corpus_;
};

corpus::Corpus* InductionFixture::corpus_ = nullptr;

TEST_F(InductionFixture, InducesGoldClasses) {
  InducedTaxonomy induced =
      InduceFromCategories(corpus_->docs, InductionOptions());
  // Every gold class with a category form should appear.
  for (const char* cls : {"singer", "city", "company", "university"}) {
    EXPECT_NE(induced.taxonomy.Lookup(cls), kInvalidClassId) << cls;
  }
  // Specific classes subsume into general ones.
  ClassId specific = induced.taxonomy.Lookup("freedonian singer");
  ClassId general = induced.taxonomy.Lookup("singer");
  if (specific != kInvalidClassId) {
    EXPECT_TRUE(induced.taxonomy.IsSubclassOf(specific, general));
  }
  // Induced singer class subsumes into the backbone person class.
  ClassId person = induced.taxonomy.Lookup("person");
  ASSERT_NE(person, kInvalidClassId);
  EXPECT_TRUE(induced.taxonomy.IsSubclassOf(general, person));
}

TEST_F(InductionFixture, BirthYearsHarvestedFromRelationalCategories) {
  InducedTaxonomy induced =
      InduceFromCategories(corpus_->docs, InductionOptions());
  EXPECT_GT(induced.birth_years.size(),
            corpus_->world.ByKind(corpus::EntityKind::kPerson).size() / 2);
  for (const auto& [entity, year] : induced.birth_years) {
    EXPECT_EQ(year, corpus_->world.entity(entity).birth_date.year);
  }
}

TEST_F(InductionFixture, EntityTypingPrecision) {
  InducedTaxonomy induced =
      InduceFromCategories(corpus_->docs, InductionOptions());
  size_t correct = 0, total = 0;
  for (const auto& [entity, classes] : induced.entity_classes) {
    const corpus::Entity& e = corpus_->world.entity(entity);
    for (const std::string& cls : classes) {
      // Only check the single-word general classes.
      if (cls.find(' ') != std::string::npos) continue;
      ++total;
      bool ok = cls == corpus::EntityKindName(e.kind) ||
                (e.kind == corpus::EntityKind::kBand && cls == "group");
      for (const std::string& occ : e.occupations) ok = ok || cls == occ;
      if (ok) ++correct;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST_F(InductionFixture, LeadSentenceTypesFound) {
  nlp::PosTagger tagger;
  size_t with_types = 0, persons = 0;
  for (const corpus::Document& doc : corpus_->docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    if (corpus_->world.entity(doc.subject).kind !=
        corpus::EntityKind::kPerson) {
      continue;
    }
    ++persons;
    auto types = LeadSentenceTypes(doc, tagger);
    if (!types.empty()) {
      ++with_types;
      // The first type must be a gold occupation.
      const auto& occupations =
          corpus_->world.entity(doc.subject).occupations;
      EXPECT_NE(std::find(occupations.begin(), occupations.end(), types[0]),
                occupations.end())
          << doc.title << " got " << types[0];
    }
  }
  EXPECT_GT(with_types, persons * 3 / 4);
}

TEST_F(InductionFixture, InferTypesCombinesSources) {
  InducedTaxonomy induced =
      InduceFromCategories(corpus_->docs, InductionOptions());
  nlp::PosTagger tagger;
  EntityTypes types = InferTypes(corpus_->docs, induced, tagger);
  EXPECT_GT(types.from_categories, 0u);
  EXPECT_GT(types.from_lead_sentences, 0u);
  EXPECT_EQ(types.types.size(), corpus_->world.entities().size());
}

// ---------------------------------------------------------------- Expansion

TEST_F(InductionFixture, SetExpansionFindsClassMembers) {
  SetExpander expander(corpus_->docs);
  ASSERT_GT(expander.num_contexts(), 0u);
  // Seeds: first three gold singers that appear in some context.
  std::set<uint32_t> gold_singers;
  for (uint32_t id : corpus_->world.ByKind(corpus::EntityKind::kPerson)) {
    const auto& occ = corpus_->world.entity(id).occupations;
    if (std::find(occ.begin(), occ.end(), "singer") != occ.end()) {
      gold_singers.insert(id);
    }
  }
  std::set<uint32_t> seeds;
  for (uint32_t id : gold_singers) {
    if (seeds.size() >= 3) break;
    seeds.insert(id);
  }
  ASSERT_GE(seeds.size(), 3u);
  auto expanded = expander.Expand(seeds);
  if (expanded.empty()) GTEST_SKIP() << "no overlapping contexts drawn";
  size_t correct = 0;
  for (const auto& cand : expanded) {
    if (gold_singers.count(cand.entity) > 0) ++correct;
  }
  // Expansion from singer seeds should be dominated by singers:
  // contexts are class-pure by construction, so errors only come from
  // entities sharing a sentence.
  EXPECT_GT(static_cast<double>(correct) / expanded.size(), 0.6);
}

TEST(SetExpanderTest, EmptySeedsGiveNothing) {
  std::vector<corpus::Document> docs;
  SetExpander expander(docs);
  EXPECT_TRUE(expander.Expand({}).empty());
}

}  // namespace
}  // namespace taxonomy
}  // namespace kb
