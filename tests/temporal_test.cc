#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "extraction/annotation.h"
#include "nlp/tokenizer.h"
#include "temporal/scoping.h"
#include "temporal/timex.h"

namespace kb {
namespace temporal {
namespace {

nlp::Sentence MakeSentence(const std::string& text) {
  nlp::PosTagger tagger;
  auto sentences = nlp::SplitSentences(text);
  tagger.TagSentences(&sentences);
  return sentences.at(0);
}

// ---------------------------------------------------------------- Timex

TEST(TimexTest, FullDate) {
  auto sentence = MakeSentence("He was born on February 24, 1955.");
  auto timexes = sentence.tokens.empty() ? std::vector<Timex>{}
                                         : ExtractTimexes(sentence);
  ASSERT_EQ(timexes.size(), 1u);
  EXPECT_EQ(timexes[0].kind, TimexKind::kDate);
  EXPECT_EQ(timexes[0].date.ToString(), "1955-02-24");
}

TEST(TimexTest, MonthYear) {
  auto timexes = ExtractTimexes(MakeSentence("It happened in March 1999."));
  ASSERT_EQ(timexes.size(), 1u);
  EXPECT_EQ(timexes[0].date.ToString(), "1999-03");
}

TEST(TimexTest, BareYear) {
  auto timexes = ExtractTimexes(MakeSentence("The company grew in 1982."));
  ASSERT_EQ(timexes.size(), 1u);
  EXPECT_EQ(timexes[0].kind, TimexKind::kDate);
  EXPECT_EQ(timexes[0].date.year, 1982);
  EXPECT_EQ(timexes[0].date.month, 0);
}

TEST(TimexTest, Interval) {
  auto timexes =
      ExtractTimexes(MakeSentence("She led the city from 1976 to 1985."));
  ASSERT_EQ(timexes.size(), 1u);
  EXPECT_EQ(timexes[0].kind, TimexKind::kInterval);
  EXPECT_EQ(timexes[0].span.begin.year, 1976);
  EXPECT_EQ(timexes[0].span.end.year, 1985);
}

TEST(TimexTest, OpenBounds) {
  auto since = ExtractTimexes(MakeSentence("He has worked there since 1990."));
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].kind, TimexKind::kOpenBegin);
  EXPECT_EQ(since[0].span.begin.year, 1990);
  auto until = ExtractTimexes(MakeSentence("He stayed until 1985."));
  ASSERT_EQ(until.size(), 1u);
  EXPECT_EQ(until[0].kind, TimexKind::kOpenEnd);
  EXPECT_EQ(until[0].span.end.year, 1985);
}

TEST(TimexTest, NonYearsIgnored) {
  auto timexes =
      ExtractTimexes(MakeSentence("Chapter 7 covers 42 pages and 123 items."));
  EXPECT_TRUE(timexes.empty());
}

TEST(TimexTest, MultipleExpressions) {
  auto timexes = ExtractTimexes(
      MakeSentence("Born in 1950, he ruled from 1976 to 1985."));
  ASSERT_EQ(timexes.size(), 2u);
  EXPECT_EQ(timexes[0].kind, TimexKind::kDate);
  EXPECT_EQ(timexes[1].kind, TimexKind::kInterval);
}

// ---------------------------------------------------------------- Scoping

class ScopingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::WorldOptions wopts;
    wopts.seed = 41;
    wopts.num_persons = 120;
    corpus::CorpusOptions copts;
    copts.seed = 42;
    copts.news_docs = 100;
    copts.fact_error_rate = 0.0;
    corpus_ = new corpus::Corpus(corpus::BuildCorpus(wopts, copts));
    tagger_ = new nlp::PosTagger();
    sentences_ = new std::vector<extraction::AnnotatedSentence>(
        extraction::AnnotateDocuments(corpus_->world, corpus_->docs,
                                      *tagger_));
  }
  static void TearDownTestSuite() {
    delete sentences_;
    delete tagger_;
    delete corpus_;
  }
  static corpus::Corpus* corpus_;
  static nlp::PosTagger* tagger_;
  static std::vector<extraction::AnnotatedSentence>* sentences_;
};

corpus::Corpus* ScopingFixture::corpus_ = nullptr;
nlp::PosTagger* ScopingFixture::tagger_ = nullptr;
std::vector<extraction::AnnotatedSentence>* ScopingFixture::sentences_ =
    nullptr;

TEST_F(ScopingFixture, MayorSpansRecovered) {
  extraction::PatternExtractor patterns(extraction::DefaultPatterns());
  TemporalScoper scoper(&patterns);
  auto facts = scoper.ScopeSentences(*sentences_);
  size_t with_span = 0, correct_span = 0;
  for (const auto& f : facts) {
    if (f.relation != corpus::Relation::kMayorOf) continue;
    if (!f.span.begin.valid()) continue;
    ++with_span;
    // Find the gold fact.
    for (const corpus::GoldFact& gold : corpus_->world.facts()) {
      if (gold.relation == corpus::Relation::kMayorOf &&
          gold.subject == f.subject && gold.object == f.object) {
        if (gold.span.begin.year == f.span.begin.year) ++correct_span;
        break;
      }
    }
  }
  ASSERT_GT(with_span, 5u);
  EXPECT_GT(static_cast<double>(correct_span) / with_span, 0.8);
}

TEST_F(ScopingFixture, MarriageSpansRecovered) {
  extraction::PatternExtractor patterns(extraction::DefaultPatterns());
  TemporalScoper scoper(&patterns);
  auto facts = scoper.ScopeSentences(*sentences_);
  size_t spans = 0;
  for (const auto& f : facts) {
    if (f.relation == corpus::Relation::kMarriedTo && f.span.valid()) {
      ++spans;
    }
  }
  EXPECT_GT(spans, 5u);
}

TEST(AggregateSpansTest, MergesEndpointsAcrossObservations) {
  extraction::ExtractedFact a;
  a.subject = 1;
  a.relation = corpus::Relation::kWorksFor;
  a.object = 2;
  a.confidence = 0.6;
  a.span.begin.year = 1980;
  extraction::ExtractedFact b = a;
  b.confidence = 0.9;
  b.span.begin = Date{};
  b.span.end.year = 1990;
  auto merged = TemporalScoper::AggregateSpans({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].span.begin.year, 1980);
  EXPECT_EQ(merged[0].span.end.year, 1990);
  EXPECT_DOUBLE_EQ(merged[0].confidence, 0.9);
}

}  // namespace
}  // namespace temporal
}  // namespace kb
