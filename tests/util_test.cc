#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/bloom_filter.h"
#include "util/lru_cache.h"
#include "util/date.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/metrics_registry.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/slice.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/varint.h"
#include "util/io_util.h"

#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace kb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    KB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.value_or(7), 7);
  EXPECT_TRUE(v.status().IsInvalidArgument());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 5);
}

// ---------------------------------------------------------------- Slice

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("hello world");
  EXPECT_TRUE(s.starts_with(Slice("hello")));
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsRuns) {
  auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
}

TEST(StringUtilTest, ParseInt64RejectsGarbage) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("-123", &v));
  EXPECT_EQ(v, -123);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, NTriplesEscapeRoundTrip) {
  std::string nasty = "line\nwith \"quotes\" and \\slashes\\ and\ttabs";
  EXPECT_EQ(UnescapeNTriples(EscapeNTriples(nasty)), nasty);
}

TEST(StringUtilTest, SingularizeHandlesCommonShapes) {
  EXPECT_EQ(Singularize("singers"), "singer");
  EXPECT_EQ(Singularize("cities"), "city");
  EXPECT_EQ(Singularize("people"), "person");
  EXPECT_EQ(Singularize("companies"), "company");
  EXPECT_EQ(Singularize("glass"), "glass");  // not a plural
}

TEST(StringUtilTest, PluralizeInvertsSingularize) {
  for (const char* w : {"singer", "city", "person", "company", "film"}) {
    EXPECT_EQ(Singularize(Pluralize(w)), w) << w;
  }
}

TEST(StringUtilTest, LooksPlural) {
  EXPECT_TRUE(LooksPlural("singers"));
  EXPECT_TRUE(LooksPlural("people"));
  EXPECT_FALSE(LooksPlural("glass"));
  EXPECT_FALSE(LooksPlural("status"));
}

// ---------------------------------------------------------------- Varint

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1ULL << 32) - 1, 1ULL << 32,
                                  UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice input(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&input, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  Slice input(buf.data(), buf.size() - 1);
  uint64_t got;
  EXPECT_FALSE(GetVarint64(&input, &got));
}

TEST(VarintTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice input(buf);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(GetFixed32(&input, &a));
  ASSERT_TRUE(GetFixed64(&input, &b));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
}

TEST(VarintTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  Slice input(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

TEST(VarintTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ULL, 127ULL, 128ULL, 1ULL << 62}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(Hash64("knowledge"), Hash64("knowledge"));
  EXPECT_NE(Hash64("knowledge"), Hash64("knowledgf"));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t base = Mix64(0x1234);
  uint64_t flipped = Mix64(0x1235);
  int diff = __builtin_popcountll(base ^ flipped);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

// ---------------------------------------------------------------- Bloom

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) builder.AddKey(Slice(k));
  std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  for (const auto& k : keys) {
    EXPECT_TRUE(reader.MayContain(Slice(k))) << k;
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsLow) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 2000; ++i) {
    std::string k = "present" + std::to_string(i);
    builder.AddKey(Slice(k));
  }
  std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  int false_positives = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    std::string k = "absent" + std::to_string(i);
    if (reader.MayContain(Slice(k))) ++false_positives;
  }
  // 10 bits/key should be ~1%; allow generous slack.
  EXPECT_LT(false_positives, kProbes / 25);
}

TEST(BloomFilterTest, EmptyFilterIsSafe) {
  BloomFilterBuilder builder(10);
  std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  // No keys: any answer is allowed, but it must not crash.
  reader.MayContain(Slice("x"));
}

// ---------------------------------------------------------------- Arena

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  memset(a, 0xaa, 100);
  memset(b, 0xbb, 100);
  EXPECT_EQ(static_cast<unsigned char>(a[50]), 0xaa);
  EXPECT_EQ(static_cast<unsigned char>(b[50]), 0xbb);
}

TEST(ArenaTest, AlignedAllocationIsAligned) {
  Arena arena;
  arena.Allocate(1);  // misalign the bump pointer
  char* p = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
}

TEST(ArenaTest, LargeAllocationsWork) {
  Arena arena;
  char* p = arena.Allocate(1 << 20);
  memset(p, 1, 1 << 20);
  EXPECT_GE(arena.MemoryUsage(), 1u << 20);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
    int64_t w = rng.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(5);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (rng.Zipf(1000, 1.0) < 10) ++low;
  }
  // Under uniformity low ranks would get ~1%; Zipf gives far more.
  EXPECT_GT(low, total / 20);
}

TEST(RngTest, WeightedChoiceFollowsWeights) {
  Rng rng(7);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedChoice(weights)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_GT(counts[2], counts[0] * 5);
}

// ---------------------------------------------------------------- Dates

TEST(DateTest, ToStringRespectsGranularity) {
  EXPECT_EQ((Date{1955, 0, 0}).ToString(), "1955");
  EXPECT_EQ((Date{1955, 2, 0}).ToString(), "1955-02");
  EXPECT_EQ((Date{1955, 2, 24}).ToString(), "1955-02-24");
}

TEST(DateTest, Ordering) {
  EXPECT_LT((Date{1990, 1, 1}), (Date{1990, 1, 2}));
  EXPECT_LT((Date{1989, 12, 31}), (Date{1990, 1, 1}));
}

TEST(DateTest, MonthNames) {
  EXPECT_EQ(MonthName(2), "February");
  EXPECT_EQ(MonthByName("february"), 2);
  EXPECT_EQ(MonthByName("Smarch"), 0);
}

TEST(TimeSpanTest, OverlapLogic) {
  TimeSpan a{{1970, 0, 0}, {1980, 0, 0}};
  TimeSpan b{{1979, 0, 0}, {1990, 0, 0}};
  TimeSpan c{{1981, 0, 0}, {1990, 0, 0}};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(c));
  TimeSpan open{{1975, 0, 0}, {}};
  EXPECT_TRUE(open.Overlaps(c));
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, PrecisionRecallF1) {
  PrecisionRecall pr;
  pr.AddTP(8);
  pr.AddFP(2);
  pr.AddFN(8);
  EXPECT_DOUBLE_EQ(pr.precision(), 0.8);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.5);
  EXPECT_NEAR(pr.f1(), 2 * 0.8 * 0.5 / 1.3, 1e-12);
}

TEST(MetricsTest, EmptyIsZeroNotNan) {
  PrecisionRecall pr;
  EXPECT_EQ(pr.precision(), 0.0);
  EXPECT_EQ(pr.recall(), 0.0);
  EXPECT_EQ(pr.f1(), 0.0);
}


// ---------------------------------------------------------------- Checks

TEST(LoggingTest, CheckFailureAborts) {
  EXPECT_DEATH({ KB_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingTest, CheckOkPassesThrough) {
  KB_CHECK(true) << "never evaluated";
  KB_CHECK_OK(Status::OK());
}

TEST(LoggingTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(KB_CHECK_OK(Status::Corruption("boom")), "boom");
}

TEST(LoggingTest, LogLevelFiltering) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  KB_LOG(Info) << "suppressed";  // must not crash, just be filtered
  SetLogLevel(saved);
}

// ---------------------------------------------------------------- Pool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  pool.Wait();  // nothing queued
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.Wait();
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception slot is cleared: subsequent rounds work normally.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  pool.Wait();  // pool still usable
}

TEST(ThreadPoolTest, OversubscriptionCompletesAllTasks) {
  // Far more tasks than threads; every index must run exactly once.
  ThreadPool pool(2);
  constexpr size_t kTasks = 5000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

// ------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CounterIncrementsAndResets) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(9);
  EXPECT_EQ(c.value(), 10u);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.counter("test.counter"), &c);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.gauge");
  g.Set(100);
  g.Add(-30);
  EXPECT_EQ(g.value(), 70);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(MetricsRegistryTest, HistogramBasicStats) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.hist");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);  // empty histogram reports zeros, not inf
  EXPECT_EQ(h.max(), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(MetricsRegistryTest, HistogramQuantilesAreOrdered) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.quant");
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 0.1);  // 0.1 .. 100 ms
  double p50 = h.Quantile(0.5);
  double p90 = h.Quantile(0.9);
  double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Exponential buckets are coarse; just sanity-band the median.
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 110.0);
}

TEST(MetricsRegistryTest, HistogramP999CapturesExtremeTail) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.p999");
  // 995 fast ops and five 500ms stalls: p99 stays fast, p999 must see
  // the stalls (this is the whole point of tracking it).
  for (int i = 0; i < 995; ++i) h.Observe(0.5);
  for (int i = 0; i < 5; ++i) h.Observe(500.0);
  double p99 = h.Quantile(0.99);
  double p999 = h.Quantile(0.999);
  EXPECT_LT(p99, 10.0);
  EXPECT_GT(p999, 100.0);
  EXPECT_LE(p99, p999);
  // The snapshot carries it too (benches read it from there).
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* hs = snap.histogram("test.p999");
  ASSERT_NE(hs, nullptr);
  EXPECT_GT(hs->p999, 100.0);
  EXPECT_NE(snap.ToJson().find("\"p999\""), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramClampsNegativeAndNan) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.clamp");
  h.Observe(-5.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotContainsAllInstruments) {
  MetricsRegistry registry;
  registry.counter("zebra.count").Increment(3);
  registry.counter("apple.count").Increment(1);
  registry.gauge("mid.gauge").Set(42);
  registry.histogram("lat.ms").Observe(7.0);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(snap.counters[0].first, "apple.count");
  EXPECT_EQ(snap.counters[1].first, "zebra.count");
  EXPECT_EQ(snap.counter("zebra.count"), 3u);
  EXPECT_EQ(snap.gauge("mid.gauge"), 42);
  const HistogramSnapshot* h = snap.histogram("lat.ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 7.0);
  EXPECT_EQ(snap.histogram("no.such"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotToTextAndJson) {
  MetricsRegistry registry;
  registry.counter("requests").Increment(12);
  registry.histogram("latency.ms").Observe(3.5);
  MetricsSnapshot snap = registry.Snapshot();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("requests"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("latency.ms"), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"latency.ms\""), std::string::npos);
  // Crude structural sanity: balanced braces start/end.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, NamedRegistriesAreDistinctAndStable) {
  MetricsRegistry* a = &MetricsRegistry::Named("util_test.a");
  MetricsRegistry* b = &MetricsRegistry::Named("util_test.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(&MetricsRegistry::Named("util_test.a"), a);
  EXPECT_NE(&MetricsRegistry::Default(), a);
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST(MetricsRegistryTest, ResetClearsValuesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter& c = registry.counter("keep.me");
  c.Increment(5);
  registry.histogram("keep.hist").Observe(1.0);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);  // same instrument, zeroed
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("keep.me"), 0u);
  const HistogramSnapshot* h = snap.histogram("keep.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsOnDestruction) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("timer.ms");
  {
    ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
  // Stop() records once and disarms the destructor.
  double ms = 0;
  {
    ScopedTimer t(h);
    ms = t.Stop();
  }
  EXPECT_GE(ms, 0.0);
  EXPECT_EQ(h.count(), 2u);
}

// ---------------------------------------------------------------- Retry

TEST(RetryPolicyTest, SucceedsWithoutRetryOnFirstOk) {
  RetryPolicy policy;
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, RetriesTransientIOErrorUntilSuccess) {
  RetryOptions options;
  options.max_attempts = 5;
  options.base_backoff_ms = 0;  // no sleeping in tests
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return calls < 3 ? Status::IOError("transient") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, ExhaustsBoundedAttempts) {
  RetryOptions options;
  options.max_attempts = 4;
  options.base_backoff_ms = 0;
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::IOError("always failing");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 4);
}

TEST(RetryPolicyTest, NonTransientErrorsAreNotRetried) {
  RetryOptions options;
  options.max_attempts = 5;
  options.base_backoff_ms = 0;
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::Corruption("data is bad, retrying cannot help");
  });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, SingleAttemptDisablesRetry) {
  RetryOptions options;
  options.max_attempts = 1;
  RetryPolicy policy(options);
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::IOError("once");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("mt.counter");
  Histogram& h = registry.histogram("mt.hist");
  ThreadPool pool(8);
  constexpr int kPerTask = 1000;
  pool.ParallelFor(8, [&](size_t) {
    for (int i = 0; i < kPerTask; ++i) {
      c.Increment();
      h.Observe(1.0);
      // Instrument creation must also be safe under concurrency.
      registry.counter("mt.shared").Increment();
    }
  });
  pool.Wait();
  EXPECT_EQ(c.value(), 8u * kPerTask);
  EXPECT_EQ(h.count(), 8u * kPerTask);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0 * kPerTask);
  EXPECT_EQ(registry.counter("mt.shared").value(), 8u * kPerTask);
}

// ---------------------------------------------------------------- LruCache

std::shared_ptr<const std::string> CacheValue(size_t size, char fill = 'x') {
  return std::make_shared<const std::string>(size, fill);
}

TEST(LruCacheTest, HitAndMiss) {
  ShardedLruCache cache(1 << 20, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, CacheValue(100, 'a'));
  auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 'a');
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);  // same table, other block
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);  // other table, same block
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard, room for ~3 entries of 200B + overhead.
  ShardedLruCache cache(800, /*num_shards=*/1);
  cache.Insert(1, 0, CacheValue(200));
  cache.Insert(1, 1, CacheValue(200));
  cache.Insert(1, 2, CacheValue(200));
  // Touch block 0 so block 1 is now the LRU entry.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 3, CacheValue(200));  // must evict block 1
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
  EXPECT_NE(cache.Lookup(1, 3), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, CapacityAccountingStaysBounded) {
  constexpr size_t kCapacity = 4096;
  ShardedLruCache cache(kCapacity, /*num_shards=*/1);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(1, rng.Uniform(64), CacheValue(1 + rng.Uniform(300)));
    EXPECT_LE(cache.stats().bytes_used, kCapacity);
  }
  // Re-inserting an existing key must replace, not double-count.
  size_t entries_before = cache.stats().entries;
  cache.Insert(1, 0, CacheValue(10));
  cache.Insert(1, 0, CacheValue(10));
  EXPECT_LE(cache.stats().entries, entries_before + 1);
  EXPECT_LE(cache.stats().bytes_used, kCapacity);
}

TEST(LruCacheTest, OversizedEntryIsNotCached) {
  ShardedLruCache cache(1024, /*num_shards=*/4);  // 256B per shard
  cache.Insert(1, 0, CacheValue(5000));
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCacheTest, EvictedValueSurvivesWhilePinned) {
  ShardedLruCache cache(400, /*num_shards=*/1);
  cache.Insert(1, 0, CacheValue(200, 'p'));
  auto pinned = cache.Lookup(1, 0);
  ASSERT_NE(pinned, nullptr);
  cache.Insert(1, 1, CacheValue(200));  // evicts block 0
  cache.Insert(1, 2, CacheValue(200));
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  // The pinned copy is untouched by the eviction.
  EXPECT_EQ(pinned->size(), 200u);
  EXPECT_EQ((*pinned)[0], 'p');
}

TEST(LruCacheTest, InstrumentsCountHitsMissesEvictions) {
  MetricsRegistry registry;
  ShardedLruCache::Instruments instruments;
  instruments.hits = &registry.counter("c.hits");
  instruments.misses = &registry.counter("c.misses");
  instruments.evictions = &registry.counter("c.evictions");
  ShardedLruCache cache(400, /*num_shards=*/1, instruments);
  cache.Lookup(1, 0);                    // miss
  cache.Insert(1, 0, CacheValue(200));
  cache.Lookup(1, 0);                    // hit
  cache.Insert(1, 1, CacheValue(200));   // evicts block 0
  EXPECT_EQ(registry.counter("c.hits").value(), 1u);
  EXPECT_EQ(registry.counter("c.misses").value(), 1u);
  EXPECT_GE(registry.counter("c.evictions").value(), 1u);
}

TEST(LruCacheTest, ConcurrentHammerKeepsInvariants) {
  constexpr size_t kCapacity = 64 << 10;
  ShardedLruCache cache(kCapacity, /*num_shards=*/16);
  ThreadPool pool(8);
  pool.ParallelFor(8, [&](size_t t) {
    Rng rng(100 + t);
    for (int i = 0; i < 5000; ++i) {
      uint64_t id = rng.Uniform(4);
      uint64_t index = rng.Uniform(128);
      if (rng.Uniform(2) == 0) {
        auto v = cache.Lookup(id, index);
        if (v != nullptr) {
          // Values are immutable; a hit must be fully readable.
          volatile char c = (*v)[v->size() - 1];
          (void)c;
        }
      } else {
        cache.Insert(id, index, CacheValue(1 + rng.Uniform(512)));
      }
    }
  });
  pool.Wait();
  LruCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes_used, kCapacity);
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.inserts, 0u);
}


// --------------------------------------------------------------- io_util

TEST(IoUtilTest, ReadFullyReassemblesChunkedWrites) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "length-prefixed frames survive short reads";
  std::thread writer([&] {
    // Dribble the payload a few bytes at a time so the reader sees
    // short reads and must loop.
    for (size_t i = 0; i < payload.size(); i += 3) {
      size_t n = std::min<size_t>(3, payload.size() - i);
      ASSERT_EQ(::write(fds[1], payload.data() + i, n),
                static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(fds[1]);
  });
  std::string buf(payload.size(), '\0');
  EXPECT_EQ(ReadFully(fds[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  EXPECT_EQ(buf, payload);
  writer.join();
  ::close(fds[0]);
}

TEST(IoUtilTest, ReadFullyReportsCleanEofShort) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);  // peer goes away mid-frame
  char buf[10];
  // A torn frame comes back as a short count, not an error: the caller
  // distinguishes "peer hung up" from "syscall failed".
  EXPECT_EQ(ReadFully(fds[0], buf, sizeof(buf)), 3);
  ::close(fds[0]);
}

TEST(IoUtilTest, ReadFullyErrorsOnBadFd) {
  char buf[4];
  EXPECT_EQ(ReadFully(-1, buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST(IoUtilTest, WriteFullyCompletesAcrossFullPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Much larger than the default pipe buffer, so write() must block
  // and return short at least once while the reader drains.
  const size_t kBytes = 4u << 20;
  std::string received;
  std::thread reader([&] {
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fds[0], chunk, sizeof(chunk))) > 0) {
      received.append(chunk, static_cast<size_t>(n));
    }
  });
  std::string payload(kBytes, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }
  EXPECT_EQ(WriteFully(fds[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::close(fds[1]);
  reader.join();
  EXPECT_EQ(received, payload);
  ::close(fds[0]);
}

TEST(IoUtilTest, WriteFullyErrorsOnClosedPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  ::signal(SIGPIPE, SIG_IGN);
  char buf[16] = {0};
  EXPECT_EQ(WriteFully(fds[1], buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EPIPE);
  ::close(fds[1]);
}

TEST(IoUtilTest, SendFullyOnHungUpSocketIsEpipeNotSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);  // peer hangs up
  char buf[16] = {0};
  // First send may succeed into the buffer; keep sending until the
  // RST/EOF is observed. Without MSG_NOSIGNAL this would kill the
  // process with SIGPIPE instead of failing politely.
  ssize_t result = 0;
  for (int i = 0; i < 8 && result >= 0; ++i) {
    result = SendFully(fds[1], buf, sizeof(buf));
  }
  EXPECT_EQ(result, -1);
  EXPECT_EQ(errno, EPIPE);
  ::close(fds[1]);
}

namespace io_util_signal {
void NoopHandler(int) {}
}  // namespace io_util_signal

TEST(IoUtilTest, ReadFullyRetriesEintr) {
  // Install a no-op handler WITHOUT SA_RESTART so a signal delivered
  // while read() is blocked makes it fail with EINTR — which ReadFully
  // must swallow and retry.
  struct sigaction action {};
  action.sa_handler = io_util_signal::NoopHandler;
  action.sa_flags = 0;
  struct sigaction saved {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &saved), 0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<bool> reading{false};
  pthread_t reader_thread;
  std::string buf(8, '\0');
  ssize_t result = -2;
  std::thread reader([&] {
    reader_thread = pthread_self();
    reading.store(true);
    result = ReadFully(fds[0], buf.data(), buf.size());
  });
  while (!reading.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Interrupt the blocked read a few times, then satisfy it.
  for (int i = 0; i < 3; ++i) {
    pthread_kill(reader_thread, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(::write(fds[1], "12345678", 8), 8);
  reader.join();
  EXPECT_EQ(result, 8);
  EXPECT_EQ(buf, "12345678");
  ::close(fds[0]);
  ::close(fds[1]);
  ::sigaction(SIGUSR1, &saved, nullptr);
}


}  // namespace
}  // namespace kb
